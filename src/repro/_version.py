"""Single-source package version.

``pyproject.toml`` is the authority.  When the package is installed,
its metadata carries that version and :func:`importlib.metadata.version`
finds it; when running from a source checkout (``PYTHONPATH=src``, the
test/benchmark setup) there is no installed distribution, so we parse
the version straight out of the adjacent ``pyproject.toml``.  Either
way nothing needs bumping besides the one ``version = "…"`` line.
"""

from __future__ import annotations

import re
from pathlib import Path

_FALLBACK = "0.0.0+unknown"


def detect_version() -> str:
    """The package version from installed metadata or pyproject.toml."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        pass
    # Source checkout: src/repro/_version.py -> <root>/pyproject.toml.
    pyproject = Path(__file__).resolve().parent.parent.parent / "pyproject.toml"
    try:
        text = pyproject.read_text(encoding="utf-8")
    except OSError:
        return _FALLBACK
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
    if match:
        return match.group(1)
    return _FALLBACK


__version__ = detect_version()
