"""A seeded TPC-H workload with the real 8-table foreign-key graph.

Unlike the other bundled generators, the schema here is *cyclic*: the
standard TPC-H keys close one cycle
(lineitem–orders–customer–nation–supplier–partsupp — the "partsupp
diamond"), so the schema is declared with ``require_acyclic=False``
and the universal relation enforces the cycle-closing key as a
residual-edge filter (:mod:`repro.engine.universal`).  Semantically
the full natural join keeps exactly the lineitems whose supplier sits
in the ordering customer's nation — TPC-H Q5's "local supplier" join —
and every universal row is determined by its lineitem tuple, which is
what keeps Algorithm 1's additive cube exact on this schema (the
intervention over ``U`` removes whole lineitem rows, never partial
join combinations).

Scale factors are miniaturized: ``sf`` ∈ {0.01, 0.05, 0.1} give
roughly 1k / 5k / 10k total rows (the engine is pure Python; real
TPC-H row counts are out of scope).  Generation is *prefix-stable*:
every entity draws from its own ``sha256``-derived sub-RNG, so a
larger scale factor extends the smaller one's tables instead of
reshuffling them — row counts are monotone in ``sf`` by construction,
and ``generate(sf, seed)`` is bit-deterministic per ``(sf, seed)``.

Planted phenomena, each carrying a known top explanation:

* **Europe bump** — EUROPE order volume ramps up in 1996–1998, driven
  hardest by FRANCE (then GERMANY).  ``europe_bump_question`` /
  ``region_share_question`` rank ``Nation.name = FRANCE`` first.
* **Returned-item share** — BUILDING-segment customers return ~45% of
  their lineitems vs an 8% baseline; ``returned_share_question``
  ranks ``Customer.mktsegment = BUILDING`` first.
* **PROMO parts in ASIA** — CHINA (strongly) and JAPAN (mildly)
  prefer PROMO-type parts; ``promo_share_question`` (a 5+-table join
  through partsupp and part) ranks ``Nation.name = CHINA`` first.
* **Urgent air freight** — 1-URGENT orders ship AIR ~55% of the time
  vs a uniform baseline (``urgent_air_question``).
* **Brand#3 premium** — Brand#3 parts carry a 3× unit price
  (``brand_revenue_question``, a ``sum`` question).

The cyclic join graph is also why :func:`certified_convergence`
selects the Proposition 3.4 ``n − 1`` fallback: the sharp bounds
(3.5/3.10/3.11) assume a join tree, and the analyzer says so (RS009)
instead of special-casing the schema.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.numquery import (
    AggregateQuery,
    double_ratio_query,
    ratio_query,
)
from ..core.question import UserQuestion
from ..engine.aggregates import agg_sum, count_star
from ..engine.database import Database
from ..engine.expressions import Col, Comparison, Const, Expression, conj
from ..engine.schema import DatabaseSchema, ForeignKey, make_schema

#: The supported miniature scale factors (any positive sf works).
SCALE_FACTORS = (0.01, 0.05, 0.1)

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

#: The 25 standard TPC-H nations with their region assignment.
NATIONS: Tuple[Tuple[str, str], ...] = (
    ("ALGERIA", "AFRICA"),
    ("ARGENTINA", "AMERICA"),
    ("BRAZIL", "AMERICA"),
    ("CANADA", "AMERICA"),
    ("EGYPT", "MIDDLE EAST"),
    ("ETHIOPIA", "AFRICA"),
    ("FRANCE", "EUROPE"),
    ("GERMANY", "EUROPE"),
    ("INDIA", "ASIA"),
    ("INDONESIA", "ASIA"),
    ("IRAN", "MIDDLE EAST"),
    ("IRAQ", "MIDDLE EAST"),
    ("JAPAN", "ASIA"),
    ("JORDAN", "MIDDLE EAST"),
    ("KENYA", "AFRICA"),
    ("MOROCCO", "AFRICA"),
    ("MOZAMBIQUE", "AFRICA"),
    ("PERU", "AMERICA"),
    ("CHINA", "ASIA"),
    ("ROMANIA", "EUROPE"),
    ("SAUDI ARABIA", "MIDDLE EAST"),
    ("VIETNAM", "ASIA"),
    ("RUSSIA", "EUROPE"),
    ("UNITED KINGDOM", "EUROPE"),
    ("UNITED STATES", "AMERICA"),
)

SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
PART_TYPES = ("ECONOMY", "STANDARD", "PROMO")
BRANDS = ("Brand#1", "Brand#2", "Brand#3", "Brand#4", "Brand#5")
PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
SHIPMODES = ("AIR", "RAIL", "SHIP", "TRUCK")
YEARS = tuple(range(1992, 1999))
EARLY_WINDOW = (1992, 1995)
LATE_WINDOW = (1996, 1998)

#: Per-nation late-window ramp (orders per customer-year added per
#: year past 1995).  FRANCE is the planted top explanation; the gap to
#: GERMANY is deliberately wide so Poisson noise in the small
#: segment × window cells cannot outrank the planted driver.
_RAMP: Dict[str, float] = {"FRANCE": 3.0, "GERMANY": 0.8}
_EU_DEFAULT_RAMP = 0.2
_BASE_ORDER_RATE = 0.8

#: PROMO-part preference multiplier by customer nation.
_PROMO_WEIGHT: Dict[str, float] = {"CHINA": 8.0, "JAPAN": 3.0}

#: Probability a lineitem's supplier is local to the customer's
#: nation.  Only local lineitems appear in the universal relation (the
#: cycle-closing key), so this keeps U(D) well populated.
_LOCAL_SUPPLIER_P = 0.65

_RETURN_P_BUILDING = 0.45
_RETURN_P_BASE = 0.08
_URGENT_AIR_P = 0.55


def schema() -> DatabaseSchema:
    """The 8 TPC-H relations with the real (cyclic) foreign-key graph.

    Lineitem is declared first so the join tree roots there: every
    join step is then 1:1 from the lineitem side (fact-table-first)
    and the intermediate universal table never exceeds the lineitem
    count.  The BFS tree reaches nation through customer, leaving
    ``supplier.nationkey -> nation`` as the cycle-closing residual
    edge.
    """
    return DatabaseSchema(
        (
            make_schema(
                "Lineitem",
                [
                    "orderkey",
                    "linenumber",
                    "partkey",
                    "suppkey",
                    "quantity",
                    "extendedprice",
                    "returnflag",
                    "shipmode",
                ],
                ["orderkey", "linenumber"],
                dtypes={
                    "orderkey": "int",
                    "linenumber": "int",
                    "partkey": "int",
                    "suppkey": "int",
                    "quantity": "int",
                    "extendedprice": "float",
                    "returnflag": "str",
                    "shipmode": "str",
                },
            ),
            make_schema(
                "Orders",
                ["orderkey", "custkey", "status", "priority", "oyear"],
                ["orderkey"],
                dtypes={
                    "orderkey": "int",
                    "custkey": "int",
                    "status": "str",
                    "priority": "str",
                    "oyear": "int",
                },
            ),
            make_schema(
                "Customer",
                ["custkey", "name", "nationkey", "mktsegment"],
                ["custkey"],
                dtypes={
                    "custkey": "int",
                    "name": "str",
                    "nationkey": "int",
                    "mktsegment": "str",
                },
            ),
            make_schema(
                "Nation",
                ["nationkey", "name", "regionkey"],
                ["nationkey"],
                dtypes={"nationkey": "int", "name": "str", "regionkey": "int"},
            ),
            make_schema(
                "Region",
                ["regionkey", "name"],
                ["regionkey"],
                dtypes={"regionkey": "int", "name": "str"},
            ),
            make_schema(
                "Supplier",
                ["suppkey", "name", "nationkey"],
                ["suppkey"],
                dtypes={"suppkey": "int", "name": "str", "nationkey": "int"},
            ),
            make_schema(
                "Partsupp",
                ["partkey", "suppkey", "supplycost"],
                ["partkey", "suppkey"],
                dtypes={
                    "partkey": "int",
                    "suppkey": "int",
                    "supplycost": "float",
                },
            ),
            make_schema(
                "Part",
                ["partkey", "name", "brand", "type", "size"],
                ["partkey"],
                dtypes={
                    "partkey": "int",
                    "name": "str",
                    "brand": "str",
                    "type": "str",
                    "size": "int",
                },
            ),
        ),
        (
            ForeignKey("Lineitem", ("orderkey",), "Orders", ("orderkey",)),
            ForeignKey(
                "Lineitem",
                ("partkey", "suppkey"),
                "Partsupp",
                ("partkey", "suppkey"),
            ),
            ForeignKey("Orders", ("custkey",), "Customer", ("custkey",)),
            ForeignKey("Partsupp", ("partkey",), "Part", ("partkey",)),
            ForeignKey("Partsupp", ("suppkey",), "Supplier", ("suppkey",)),
            ForeignKey("Customer", ("nationkey",), "Nation", ("nationkey",)),
            ForeignKey("Supplier", ("nationkey",), "Nation", ("nationkey",)),
            ForeignKey("Nation", ("regionkey",), "Region", ("regionkey",)),
        ),
        require_acyclic=False,
    )


def certified_convergence():
    """The honest convergence verdict for the cyclic TPC-H graph.

    No back-and-forth keys, but the partsupp diamond makes the join
    graph cyclic, so Propositions 3.5/3.10/3.11 (whose proofs assume a
    join tree) do not apply and the certificate falls back to the
    unconditional Proposition 3.4 ``n − 1`` bound.
    """
    from ..analysis.fkgraph import RULE_PROP_34, RULE_PROP_35, certify_convergence

    certificate = certify_convergence(schema())
    assert not certificate.join_graph_is_tree
    assert not certificate.rule(RULE_PROP_35).applicable
    assert certificate.selected_rule == RULE_PROP_34
    assert certificate.bound_expression == "n - 1"
    return certificate


# -- generation ---------------------------------------------------------------


def _sub_rng(seed: int, *key: object) -> random.Random:
    """A deterministic per-entity RNG, independent of hash seeds.

    Seeding each entity separately makes generation prefix-stable: the
    rows of entity *i* never depend on how many entities exist, so a
    larger scale factor strictly extends a smaller one.
    """
    text = "%d|%s" % (seed, "|".join(str(k) for k in key))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's algorithm; fine for the small rates used here."""
    threshold = math.exp(-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


def _weighted_choice(
    rng: random.Random, items: Sequence[int], weights: Sequence[float]
) -> int:
    total = sum(weights)
    x = rng.random() * total
    for item, w in zip(items, weights):
        x -= w
        if x <= 0:
            return item
    return items[-1]


def table_counts(sf: float) -> Dict[str, int]:
    """Entity counts at scale factor *sf* (monotone in ``sf``).

    The floors keep every nation populated with several customers and
    suppliers even at sf 0.01 — with one customer per nation the
    planted nation-level signals would be confounded with that
    customer's segment draw.
    """
    return {
        "supplier": max(50, int(round(1500 * sf))),
        "part": max(40, int(round(1500 * sf))),
        "customer": max(100, int(round(3000 * sf))),
    }


def _nation_of_supplier(suppkey: int) -> int:
    return (suppkey - 1) % len(NATIONS)


def _nation_of_customer(custkey: int) -> int:
    return (custkey - 1) % len(NATIONS)


def _order_rate(nation: str, region: str, year: int) -> float:
    rate = _BASE_ORDER_RATE
    if region == "EUROPE" and year >= LATE_WINDOW[0]:
        ramp = _RAMP.get(nation, _EU_DEFAULT_RAMP)
        rate += ramp * (year - (LATE_WINDOW[0] - 1))
    return rate


def _unit_price(brand: str, size: int) -> float:
    price = 900.0 + 10.0 * size
    if brand == "Brand#3":
        price *= 3.0
    return price


def generate(sf: float = 0.01, seed: int = 2014) -> Database:
    """Generate the TPC-H instance at scale factor *sf*.

    Deterministic per ``(sf, seed)``; prefix-stable across scale
    factors (see module docstring).  The instance is *not*
    semijoin-reduced: non-local lineitems and never-ordered parts are
    deliberately dangling (program P's rule (i) absorbs them without
    affecting any aggregate over U).
    """
    counts = table_counts(sf)
    region_rows = [(i, name) for i, name in enumerate(REGIONS)]
    region_index = {name: i for i, name in enumerate(REGIONS)}
    nation_rows = [
        (i, name, region_index[region])
        for i, (name, region) in enumerate(NATIONS)
    ]

    supplier_rows = []
    for suppkey in range(1, counts["supplier"] + 1):
        supplier_rows.append(
            (suppkey, f"Supplier#{suppkey:05d}", _nation_of_supplier(suppkey))
        )
    suppliers_by_nation: Dict[int, List[int]] = {}
    for suppkey, _, nationkey in supplier_rows:
        suppliers_by_nation.setdefault(nationkey, []).append(suppkey)

    part_rows = []
    partsupp_rows = []
    parts_by_supplier: Dict[int, List[int]] = {}
    part_info: Dict[int, Tuple[str, str, int]] = {}  # brand, type, size
    for partkey in range(1, counts["part"] + 1):
        rng = _sub_rng(seed, "part", partkey)
        n_suppliers = 2 + rng.randrange(3)  # before any sf-dependent draw
        brand = BRANDS[rng.randrange(len(BRANDS))]
        ptype = PART_TYPES[
            _weighted_choice(rng, range(len(PART_TYPES)), (0.3, 0.45, 0.25))
        ]
        size = 1 + rng.randrange(50)
        part_rows.append(
            (partkey, f"Part#{partkey:05d}", brand, ptype, size)
        )
        part_info[partkey] = (brand, ptype, size)
        chosen = rng.sample(
            range(1, counts["supplier"] + 1),
            min(n_suppliers, counts["supplier"]),
        )
        for suppkey in sorted(chosen):
            partsupp_rows.append(
                (partkey, suppkey, round(rng.uniform(10.0, 1000.0), 2))
            )
            parts_by_supplier.setdefault(suppkey, []).append(partkey)

    customer_rows = []
    order_rows = []
    lineitem_rows = []
    for custkey in range(1, counts["customer"] + 1):
        rng = _sub_rng(seed, "customer", custkey)
        nationkey = _nation_of_customer(custkey)
        nation, region = NATIONS[nationkey]
        # Round-robin, not random: each nation's customers spread
        # evenly over the segments, so the planted nation-level order
        # surge cannot be soaked up by whatever segment the few heavy
        # customers happened to draw.
        segment = SEGMENTS[((custkey - 1) // len(NATIONS)) % len(SEGMENTS)]
        customer_rows.append(
            (custkey, f"Customer#{custkey:06d}", nationkey, segment)
        )
        sequence = 0
        for year in YEARS:
            for _ in range(_poisson(rng, _order_rate(nation, region, year))):
                sequence += 1
                orderkey = custkey * 1000 + sequence
                _make_order(
                    seed,
                    orderkey,
                    custkey,
                    nationkey,
                    segment,
                    year,
                    counts,
                    suppliers_by_nation,
                    parts_by_supplier,
                    partsupp_rows,
                    part_info,
                    order_rows,
                    lineitem_rows,
                )

    database = Database(schema())
    database.relation("Region").insert_many(region_rows)
    database.relation("Nation").insert_many(nation_rows)
    database.relation("Supplier").insert_many(supplier_rows)
    database.relation("Part").insert_many(part_rows)
    database.relation("Partsupp").insert_many(partsupp_rows)
    database.relation("Customer").insert_many(customer_rows)
    database.relation("Orders").insert_many(order_rows)
    database.relation("Lineitem").insert_many(lineitem_rows)
    return database


def _make_order(
    seed: int,
    orderkey: int,
    custkey: int,
    nationkey: int,
    segment: str,
    year: int,
    counts: Dict[str, int],
    suppliers_by_nation: Dict[int, List[int]],
    parts_by_supplier: Dict[int, List[int]],
    partsupp_rows: List[Tuple[int, int, float]],
    part_info: Dict[int, Tuple[str, str, int]],
    order_rows: List[Tuple[int, int, str, str, int]],
    lineitem_rows: List[Tuple[int, int, int, int, int, float, str, str]],
) -> None:
    rng = _sub_rng(seed, "order", orderkey)
    n_lines = 1 + rng.randrange(4)  # drawn first: count is sf-independent
    priority = PRIORITIES[rng.randrange(len(PRIORITIES))]
    status = "F" if year <= 1996 else "O"
    order_rows.append((orderkey, custkey, status, priority, year))
    nation = NATIONS[nationkey][0]
    promo_weight = _PROMO_WEIGHT.get(nation, 1.0)
    for linenumber in range(1, n_lines + 1):
        if rng.random() < _LOCAL_SUPPLIER_P:
            locals_ = suppliers_by_nation[nationkey]
            suppkey = locals_[rng.randrange(len(locals_))]
        else:
            suppkey = 1 + rng.randrange(counts["supplier"])
        catalogue = parts_by_supplier.get(suppkey)
        if catalogue:
            weights = [
                promo_weight if part_info[p][1] == "PROMO" else 1.0
                for p in catalogue
            ]
            partkey = catalogue[
                _weighted_choice(rng, range(len(catalogue)), weights)
            ]
        else:
            # Supplier without a catalogue: fall back to a uniform
            # partsupp entry (the supplier changes with it).
            partkey, suppkey, _ = partsupp_rows[
                rng.randrange(len(partsupp_rows))
            ]
        brand, _ptype, size = part_info[partkey]
        quantity = 1 + rng.randrange(50)
        extendedprice = round(quantity * _unit_price(brand, size), 2)
        return_p = (
            _RETURN_P_BUILDING if segment == "BUILDING" else _RETURN_P_BASE
        )
        if rng.random() < return_p:
            returnflag = "R"
        else:
            returnflag = "N" if rng.random() < 0.7 else "A"
        if priority == "1-URGENT" and rng.random() < _URGENT_AIR_P:
            shipmode = "AIR"
        else:
            shipmode = SHIPMODES[rng.randrange(len(SHIPMODES))]
        lineitem_rows.append(
            (
                orderkey,
                linenumber,
                partkey,
                suppkey,
                quantity,
                extendedprice,
                returnflag,
                shipmode,
            )
        )


# -- planted questions --------------------------------------------------------


def _count(name: str, where: Optional[Expression] = None) -> AggregateQuery:
    return AggregateQuery(name, count_star(name), where)


def _region_window(
    name: str, region: str, window: Tuple[int, int]
) -> AggregateQuery:
    lo, hi = window
    where = conj(
        Comparison("=", Col("Region.name"), Const(region)),
        Comparison(">=", Col("Orders.oyear"), Const(lo)),
        Comparison("<=", Col("Orders.oyear"), Const(hi)),
    )
    return _count(name, where)


def europe_bump_question(*, epsilon: float = 0.0001) -> UserQuestion:
    """Why did EUROPE's late/early order ratio outgrow AMERICA's?

    ``Q = (q1/q2)/(q3/q4)`` over lineitem counts; the planted ramp
    makes ``Nation.name = FRANCE`` the top intervention explanation.
    """
    q1 = _region_window("q1", "EUROPE", LATE_WINDOW)
    q2 = _region_window("q2", "EUROPE", EARLY_WINDOW)
    q3 = _region_window("q3", "AMERICA", LATE_WINDOW)
    q4 = _region_window("q4", "AMERICA", EARLY_WINDOW)
    return UserQuestion.high(
        double_ratio_query(q1, q2, q3, q4, epsilon=epsilon)
    )


def region_share_question(*, epsilon: float = 0.0001) -> UserQuestion:
    """Why is EUROPE's share of (local) lineitems so high?"""
    q1 = _count(
        "q1", Comparison("=", Col("Region.name"), Const("EUROPE"))
    )
    q2 = _count("q2")
    return UserQuestion.high(ratio_query(q1, q2, epsilon=epsilon))


def returned_share_question(*, epsilon: float = 0.0001) -> UserQuestion:
    """Why is the returned-item share so high?

    Planted: BUILDING-segment customers return at ~45% vs 8%, so
    ``Customer.mktsegment = BUILDING`` ranks first.
    """
    q1 = _count(
        "q1", Comparison("=", Col("Lineitem.returnflag"), Const("R"))
    )
    q2 = _count("q2")
    return UserQuestion.high(ratio_query(q1, q2, epsilon=epsilon))


def promo_share_question(*, epsilon: float = 0.0001) -> UserQuestion:
    """Why is ASIA's PROMO-part share above AMERICA's?

    The predicate spans region, nation, customer, orders, lineitem,
    partsupp, and part — the 5+-table join through the partsupp
    diamond.  Planted: CHINA prefers PROMO parts 8×, JAPAN 3×, so
    ``Nation.name = CHINA`` ranks first.

    The question is an odds ratio (PROMO vs non-PROMO per region),
    not a share ratio: removing a part-type-uniform row set scales
    both regions' odds by the same factor and cancels, so only the
    planted nation-level preference can move Q.
    """

    def promo_in(name: str, region: str, promo: bool) -> AggregateQuery:
        op = "=" if promo else "!="
        return _count(
            name,
            conj(
                Comparison("=", Col("Region.name"), Const(region)),
                Comparison(op, Col("Part.type"), Const("PROMO")),
            ),
        )

    q1 = promo_in("q1", "ASIA", True)
    q2 = promo_in("q2", "ASIA", False)
    q3 = promo_in("q3", "AMERICA", True)
    q4 = promo_in("q4", "AMERICA", False)
    return UserQuestion.high(
        double_ratio_query(q1, q2, q3, q4, epsilon=epsilon)
    )


def urgent_air_question(*, epsilon: float = 0.0001) -> UserQuestion:
    """Why do 1-URGENT orders ship AIR so often?"""
    urgent = Comparison("=", Col("Orders.priority"), Const("1-URGENT"))
    q1 = _count(
        "q1",
        conj(
            Comparison("=", Col("Lineitem.shipmode"), Const("AIR")), urgent
        ),
    )
    q2 = _count("q2", urgent)
    return UserQuestion.high(ratio_query(q1, q2, epsilon=epsilon))


def brand_revenue_question(*, epsilon: float = 0.0001) -> UserQuestion:
    """Why is Brand#3's revenue share so high?  (A ``sum`` question.)

    Planted: Brand#3 parts carry a 3× unit price.
    """
    q1 = AggregateQuery(
        "q1",
        agg_sum("Lineitem.extendedprice", "q1"),
        Comparison("=", Col("Part.brand"), Const("Brand#3")),
    )
    q2 = AggregateQuery("q2", agg_sum("Lineitem.extendedprice", "q2"))
    return UserQuestion.high(ratio_query(q1, q2, epsilon=epsilon))


def france_surge_question(*, epsilon: float = 0.0001) -> UserQuestion:
    """Why did FRANCE's late-window volume outgrow its early window?"""

    def window(name: str, window: Tuple[int, int]) -> AggregateQuery:
        lo, hi = window
        return _count(
            name,
            conj(
                Comparison("=", Col("Nation.name"), Const("FRANCE")),
                Comparison(">=", Col("Orders.oyear"), Const(lo)),
                Comparison("<=", Col("Orders.oyear"), Const(hi)),
            ),
        )

    q1 = window("q1", LATE_WINDOW)
    q2 = window("q2", EARLY_WINDOW)
    return UserQuestion.high(ratio_query(q1, q2, epsilon=epsilon))


#: question name -> (builder, explanation attributes, planted top).
#: The bench matrix and the golden tests iterate this registry.
QUESTIONS: Dict[
    str, Tuple[Callable[..., UserQuestion], Tuple[str, ...], str]
] = {
    "europe-bump": (
        europe_bump_question,
        ("Nation.name", "Customer.mktsegment"),
        "Nation.name = 'FRANCE'",
    ),
    "region-share": (
        region_share_question,
        ("Nation.name", "Customer.mktsegment"),
        "Nation.name = 'FRANCE'",
    ),
    "returned-share": (
        returned_share_question,
        ("Customer.mktsegment", "Lineitem.shipmode"),
        "Customer.mktsegment = 'BUILDING'",
    ),
    "promo-share": (
        promo_share_question,
        ("Nation.name", "Part.type"),
        "Nation.name = 'CHINA'",
    ),
    "urgent-air": (
        urgent_air_question,
        ("Lineitem.shipmode", "Orders.priority"),
        "Lineitem.shipmode = 'AIR'",
    ),
    "brand-revenue": (
        brand_revenue_question,
        ("Part.brand", "Part.type"),
        "Part.brand = 'Brand#3'",
    ),
    "france-surge": (
        france_surge_question,
        ("Customer.mktsegment", "Orders.priority"),
        "",  # no single planted driver; pinned by the golden snapshot
    ),
}


def question_names() -> Tuple[str, ...]:
    """The planted question identifiers, in registry order."""
    return tuple(QUESTIONS)


def question(name: str) -> UserQuestion:
    """Build one planted question by registry name."""
    builder, _, _ = QUESTIONS[name]
    return builder()


def question_attributes(name: str) -> List[str]:
    """The explanation attributes paired with one planted question."""
    _, attributes, _ = QUESTIONS[name]
    return list(attributes)


def default_attributes() -> List[str]:
    """Attributes of the default (europe-bump) question."""
    return question_attributes("europe-bump")


def default_question(*, epsilon: float = 0.0001) -> UserQuestion:
    """The registry/CLI default: the Europe bump."""
    return europe_bump_question(epsilon=epsilon)
