"""Synthetic DBLP workload with the planted industrial bump (Figures 1–2).

The paper integrates DBLP with an affiliation table and observes that
industrial SIGMOD publications decline after ~2004 while academic ones
keep rising.  This generator plants exactly that phenomenon:

* **industrial labs** (bell-labs.com, ibm.com, ms.com, hp.com) publish
  heavily through the 1990s and early 2000s, then decline;
* **established academic groups** (berkeley.edu, mit.edu, wisc.edu,
  ucla.edu) rise steadily;
* **new academic groups** (asu.edu, utah.edu, gwu.edu) appear around
  2003 and ramp up — the paper's Figure 2 explanations;
* **star authors** (RajeevR at bell-labs, HamidP and RakeshA at ibm)
  have elevated personal rates in the 90s, so they surface as
  author-level explanations.

Schema and foreign keys follow Example 2.2 / Eq. (2): the
``Authored.pubid ↔ Publication.pubid`` key is back-and-forth, and the
bump query uses ``count(distinct Publication.pubid)``, which is
intervention-additive here (footnote 11), so Algorithm 1 applies.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.numquery import AggregateQuery, double_ratio_query
from ..core.question import UserQuestion
from ..engine.aggregates import count_distinct
from ..engine.database import Database
from ..engine.expressions import Col, Comparison, Const, conj
from .running_example import schema as dblp_schema

YEARS = range(1988, 2012)
VENUES = ("SIGMOD", "VLDB")

#: Window used by the bump question (Example 2.2).
EARLY_WINDOW = (2000, 2004)
LATE_WINDOW = (2007, 2011)


@dataclass(frozen=True)
class Institution:
    """One affiliation with a publication-rate profile over years."""

    name: str
    dom: str
    profile: str  # 'industrial', 'established', 'new2000'
    size: int  # number of regular authors
    weight: float  # relative publication volume

    def rate(self, year: int) -> float:
        """Expected publications in *year*, before global scaling."""
        if self.profile == "industrial":
            # Ramp through the 90s, peak ~1996-2003, decline after 2004.
            if year <= 2003:
                level = 0.3 + 0.7 * min(1.0, (year - 1988) / 8)
            else:
                level = max(0.08, 1.0 - 0.16 * (year - 2003))
        elif self.profile == "established":
            level = 0.35 + 0.65 * (year - 1988) / (2011 - 1988)
        elif self.profile == "new2000":
            level = 0.0 if year < 2003 else 0.25 + 0.75 * min(1.0, (year - 2003) / 5)
        else:
            raise ValueError(f"unknown profile {self.profile!r}")
        return level * self.weight


INSTITUTIONS: Tuple[Institution, ...] = (
    Institution("bell-labs.com", "com", "industrial", 8, 1.3),
    Institution("ibm.com", "com", "industrial", 12, 1.5),
    Institution("ms.com", "com", "industrial", 8, 0.9),
    Institution("hp.com", "com", "industrial", 5, 0.5),
    Institution("berkeley.edu", "edu", "established", 10, 1.2),
    Institution("mit.edu", "edu", "established", 9, 1.0),
    Institution("wisc.edu", "edu", "established", 9, 1.0),
    Institution("ucla.edu", "edu", "established", 7, 0.8),
    Institution("asu.edu", "edu", "new2000", 6, 1.0),
    Institution("utah.edu", "edu", "new2000", 5, 0.8),
    Institution("gwu.edu", "edu", "new2000", 4, 0.7),
)

#: Star authors: (name, institution, personal rate multiplier, active years).
STARS: Tuple[Tuple[str, str, float, Tuple[int, int]], ...] = (
    ("RajeevR", "bell-labs.com", 3.0, (1992, 2003)),
    ("HamidP", "ibm.com", 2.5, (1990, 2004)),
    ("RakeshA", "ibm.com", 2.5, (1990, 2003)),
)


def certified_convergence():
    """Analyzer smoke assertion for this schema's convergence class.

    DBLP reuses the running-example schema (Author–Authored–Publication
    with one back-and-forth key), so Proposition 3.11 certifies
    convergence in ≤ 2s + 2 = 4 steps.
    """
    from ..analysis.fkgraph import RULE_PROP_311, certify_convergence

    certificate = certify_convergence(dblp_schema())
    assert certificate.selected_rule == RULE_PROP_311
    assert certificate.bound == 4
    return certificate


def generate(scale: float = 1.0, seed: int = 2014) -> Database:
    """Generate the synthetic DBLP database.

    ``scale`` multiplies publication volume (scale=1.0 ≈ 2.5k papers);
    the same (scale, seed) pair is fully deterministic.
    """
    rng = random.Random(seed)
    star_names = {name for name, _, _, _ in STARS}
    authors: Dict[str, Tuple[str, str, str, str]] = {}
    authored: List[Tuple[str, str]] = []
    publications: List[Tuple[str, int, str]] = []

    def author_pool(inst: Institution) -> List[str]:
        pool = [f"{inst.name.split('.')[0]}_a{i}" for i in range(inst.size)]
        pool.extend(
            name
            for name, star_inst, _, _ in STARS
            if star_inst == inst.name
        )
        return pool

    pools = {inst.name: author_pool(inst) for inst in INSTITUTIONS}
    star_rate = {name: (mult, span) for name, _, mult, span in STARS}

    pub_counter = 0
    for year in YEARS:
        for inst in INSTITUTIONS:
            expected = inst.rate(year) * 10 * scale
            count = _poisson(rng, expected)
            for _ in range(count):
                pub_counter += 1
                pubid = f"P{pub_counter:06d}"
                venue = "SIGMOD" if rng.random() < 0.62 else "VLDB"
                publications.append((pubid, year, venue))
                pub_authors = _pick_authors(
                    rng, inst, pools, star_rate, year
                )
                for name in pub_authors:
                    author_inst = _institution_of(name, inst, star_names)
                    author_id = f"{author_inst}:{name}"
                    dom = "com" if author_inst.endswith(".com") else "edu"
                    authors[author_id] = (author_id, name, author_inst, dom)
                    authored.append((author_id, pubid))

    database = Database(dblp_schema())
    database.relation("Author").insert_many(authors.values())
    database.relation("Publication").insert_many(publications)
    # A (author, pub) pair may repeat when the same author is drawn
    # twice; Relation deduplicates, but the composite pk forbids
    # contradictions anyway.
    database.relation("Authored").insert_many(set(authored))
    return database


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler (lam is small here)."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


def _pick_authors(
    rng: random.Random,
    inst: Institution,
    pools: Dict[str, List[str]],
    star_rate: Dict[str, Tuple[float, Tuple[int, int]]],
    year: int,
) -> List[str]:
    """1–3 authors, mostly from *inst*, star-weighted, rare outsiders."""
    pool = pools[inst.name]
    weights = []
    for name in pool:
        if name in star_rate:
            mult, (lo, hi) = star_rate[name]
            weights.append(mult if lo <= year <= hi else 0.3)
        else:
            weights.append(1.0)
    n_authors = rng.choices((1, 2, 3), weights=(0.3, 0.45, 0.25))[0]
    chosen = _weighted_sample(rng, pool, weights, min(n_authors, len(pool)))
    if rng.random() < 0.08:  # occasional cross-institution coauthor
        other = rng.choice([i for i in INSTITUTIONS if i.name != inst.name])
        chosen.append(rng.choice(pools[other.name]))
    return chosen


def _weighted_sample(
    rng: random.Random, pool: Sequence[str], weights: Sequence[float], k: int
) -> List[str]:
    chosen: List[str] = []
    pool = list(pool)
    weights = list(weights)
    for _ in range(k):
        total = sum(weights)
        if total <= 0:
            break
        pick = rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if pick <= acc:
                chosen.append(pool.pop(i))
                weights.pop(i)
                break
    return chosen


def _institution_of(name: str, default: Institution, star_names) -> str:
    if name in star_names:
        for star, inst, _, _ in STARS:
            if star == name:
                return inst
    prefix = name.split("_")[0]
    for inst in INSTITUTIONS:
        if inst.name.split(".")[0] == prefix:
            return inst.name
    return default.name


# -- the bump question (Example 2.2) ------------------------------------------


def _window_query(
    name: str, dom: str, window: Tuple[int, int]
) -> AggregateQuery:
    lo, hi = window
    where = conj(
        Comparison("=", Col("Publication.venue"), Const("SIGMOD")),
        Comparison("=", Col("Author.dom"), Const(dom)),
        Comparison(">=", Col("Publication.year"), Const(lo)),
        Comparison("<=", Col("Publication.year"), Const(hi)),
    )
    return AggregateQuery(
        name, count_distinct("Publication.pubid", name), where
    )


def bump_question(*, epsilon: float = 0.0001) -> UserQuestion:
    """``(Q, high)`` with ``Q = (q1/q2)/(q3/q4)`` — the Figure 1 bump.

    q1/q2: industrial SIGMOD pubs in 2000–04 vs 2007–11;
    q3/q4: academic SIGMOD pubs in the same windows.
    """
    q1 = _window_query("q1", "com", EARLY_WINDOW)
    q2 = _window_query("q2", "com", LATE_WINDOW)
    q3 = _window_query("q3", "edu", EARLY_WINDOW)
    q4 = _window_query("q4", "edu", LATE_WINDOW)
    return UserQuestion.high(double_ratio_query(q1, q2, q3, q4, epsilon=epsilon))


def default_attributes() -> List[str]:
    """Explanation attributes of Figure 2: affiliation and author name."""
    return ["Author.inst", "Author.name"]


def five_year_window_counts(
    database: Database,
) -> Dict[str, List[Tuple[int, int]]]:
    """The Figure 1 series: SIGMOD pubs per 5-year window by domain.

    Returns ``{"com": [(window_end, count), …], "edu": […]}`` counting
    distinct publications with at least one author in the domain.
    """
    from ..engine.universal import universal_table

    u = universal_table(database)
    venue_pos = u.position("Publication.venue")
    year_pos = u.position("Publication.year")
    dom_pos = u.position("Author.dom")
    pub_pos = u.position("Publication.pubid")
    pubs_by_dom_year: Dict[str, Dict[int, set]] = {"com": {}, "edu": {}}
    for row in u.rows():
        if row[venue_pos] != "SIGMOD":
            continue
        pubs_by_dom_year[row[dom_pos]].setdefault(row[year_pos], set()).add(
            row[pub_pos]
        )
    series: Dict[str, List[Tuple[int, int]]] = {}
    for dom, by_year in pubs_by_dom_year.items():
        points = []
        for end in range(min(YEARS) + 4, max(YEARS) + 1):
            window_pubs = set()
            for y in range(end - 4, end + 1):
                window_pubs |= by_year.get(y, set())
            points.append((end, len(window_pubs)))
        series[dom] = points
    return series
