"""Synthetic natality workload (Section 5.1).

The paper uses the CDC 2010 natality file: 4,007,106 births, 233
attributes.  That file is not redistributable, so this module
generates a seeded synthetic table over the attributes the paper's
experiments actually touch, with conditional distributions planted
from the published marginals (Figure 7) and effect directions chosen
so the qualitative top explanations (Figures 10–11) emerge:

* Asian mothers skew married / older / non-smoking / highly educated /
  early prenatal care — the protective profile behind Q_Race;
* the APGAR-poor odds rise with smoking, late or missing prenatal
  care, very young age, low education, hypertension and diabetes.

Schema: a single relation ``Birth`` with primary key ``bid`` — exactly
the single-wide-table shape of the paper's natality experiments, where
``count(*)`` numerical queries are intervention-additive.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.numquery import AggregateQuery, double_ratio_query, ratio_query
from ..core.question import UserQuestion
from ..engine.aggregates import count_star
from ..engine.database import Database
from ..engine.expressions import Col, Comparison, Const, conj
from ..engine.schema import DatabaseSchema, single_table_schema

#: Paper-reported row count of the full dataset (Section 5.1).
FULL_SCALE_ROWS = 4_007_106

AP_VALUES = ("good", "poor")
RACE_VALUES = ("White", "Black", "AmInd", "Asian")
MARITAL_VALUES = ("married", "unmarried")
AGE_VALUES = ("<15", "15-19", "20-24", "25-29", "30-34", "35-39", "40-44", "45+")
TOBACCO_VALUES = ("smoking", "nonsmoking")
PRENATAL_VALUES = ("1st", "2nd", "3rd", "none")
EDU_VALUES = ("<9yrs", "9-11yrs", "12yrs", "13-15yrs", ">=16yrs")
SEX_VALUES = ("M", "F")
YESNO_VALUES = ("yes", "no")

#: Race marginals from the Figure 7 column sums.
_RACE_P = np.array([0.762, 0.158, 0.012, 0.068])

_MARRIED_P = {"White": 0.62, "Black": 0.29, "AmInd": 0.40, "Asian": 0.85}
_SMOKING_P = {"White": 0.10, "Black": 0.08, "AmInd": 0.20, "Asian": 0.02}
_PRENATAL_P = {
    "White": [0.75, 0.17, 0.05, 0.03],
    "Black": [0.60, 0.25, 0.09, 0.06],
    "AmInd": [0.55, 0.27, 0.11, 0.07],
    "Asian": [0.85, 0.10, 0.03, 0.02],
}
_EDU_P = {
    "White": [0.04, 0.10, 0.25, 0.30, 0.31],
    "Black": [0.06, 0.18, 0.32, 0.30, 0.14],
    "AmInd": [0.08, 0.20, 0.35, 0.27, 0.10],
    "Asian": [0.03, 0.05, 0.15, 0.22, 0.55],
}
_AGE_P = {
    "White": [0.001, 0.080, 0.230, 0.290, 0.250, 0.120, 0.027, 0.002],
    "Black": [0.004, 0.170, 0.320, 0.250, 0.150, 0.080, 0.025, 0.001],
    "AmInd": [0.003, 0.180, 0.330, 0.260, 0.140, 0.070, 0.016, 0.001],
    "Asian": [0.0005, 0.030, 0.120, 0.270, 0.330, 0.200, 0.045, 0.0045],
}

#: Base odds of AP = poor and the multiplicative risk factors.
_BASE_POOR_ODDS = 0.020
#: Residual race-level effect beyond the shared covariates, calibrated
#: so the Figure 8 ordering (Asian > White > AmInd > Black good/poor
#: ratios) is unambiguous at benchmark scales.
_RACE_ODDS = {"White": 1.00, "Black": 1.45, "AmInd": 1.20, "Asian": 0.70}
_MARITAL_ODDS = {"married": 0.75, "unmarried": 1.30}
_TOBACCO_ODDS = {"smoking": 1.60, "nonsmoking": 0.95}
_PRENATAL_ODDS = {"1st": 0.80, "2nd": 1.10, "3rd": 1.30, "none": 2.20}
_EDU_ODDS = {
    "<9yrs": 1.40,
    "9-11yrs": 1.30,
    "12yrs": 1.05,
    "13-15yrs": 0.95,
    ">=16yrs": 0.80,
}
_AGE_ODDS = {
    "<15": 2.00,
    "15-19": 1.40,
    "20-24": 1.10,
    "25-29": 0.95,
    "30-34": 0.85,
    "35-39": 1.00,
    "40-44": 1.20,
    "45+": 1.50,
}
_HYPERTENSION_P = 0.05
_HYPERTENSION_ODDS = {"yes": 1.80, "no": 1.00}
_DIABETES_P = 0.06
_DIABETES_ODDS = {"yes": 1.40, "no": 1.00}
_SEX_ODDS = {"M": 1.05, "F": 0.95}

PLURALITY_VALUES = ("single", "twin", "higher")
GESTATION_VALUES = ("preterm", "term", "postterm")
DELIVERY_VALUES = ("vaginal", "cesarean")
BIRTHPLACE_VALUES = ("hospital", "other")

_PLURALITY_P = (0.965, 0.033, 0.002)
_PLURALITY_ODDS = {"single": 1.00, "twin": 2.20, "higher": 4.00}
_GESTATION_P = (0.12, 0.82, 0.06)
_GESTATION_ODDS = {"preterm": 2.50, "term": 0.85, "postterm": 1.20}
_DELIVERY_P = 0.33  # cesarean share
_DELIVERY_ODDS = {"vaginal": 0.95, "cesarean": 1.15}
_BIRTHPLACE_P = 0.015  # non-hospital share
_BIRTHPLACE_ODDS = {"hospital": 1.00, "other": 1.60}

COLUMNS = (
    "bid",
    "ap",
    "race",
    "marital",
    "age",
    "tobacco",
    "prenatal",
    "education",
    "sex",
    "hypertension",
    "diabetes",
    "plurality",
    "gestation",
    "delivery",
    "birthplace",
)


def schema(noise_attributes: int = 0) -> DatabaseSchema:
    """The single-relation Birth schema (plus optional noise columns)."""
    columns = list(COLUMNS) + [
        f"x{i}" for i in range(1, noise_attributes + 1)
    ]
    return single_table_schema(
        "Birth",
        columns,
        ["bid"],
        dtypes={"bid": "int", **{c: "str" for c in columns[1:]}},
    )


def certified_convergence():
    """Analyzer smoke assertion for this schema's convergence class.

    A single relation has no foreign keys at all, so Proposition 3.5
    certifies the tightest bound: program P converges in ≤ 2 steps.
    """
    from ..analysis.fkgraph import RULE_PROP_35, certify_convergence

    certificate = certify_convergence(schema())
    assert certificate.selected_rule == RULE_PROP_35
    assert certificate.bound == 2
    return certificate


def _odds_lookup(values: Sequence[str], odds: Dict[str, float]) -> np.ndarray:
    return np.array([odds[v] for v in values])


def generate(
    rows: int = 50_000, seed: int = 2014, *, noise_attributes: int = 0
) -> Database:
    """Generate a seeded synthetic natality database.

    ``rows`` scales the instance (the paper varies 0.01%–100% of 4M);
    identical (rows, seed, noise_attributes) triples produce identical
    databases.  ``noise_attributes`` appends that many categorical
    columns (``x1 … xN``, 3–6 values each) with *no* effect on the
    APGAR outcome — stand-ins for the real file's 233-column width,
    useful for stressing wide attribute sweeps.
    """
    rng = np.random.default_rng(seed)
    race_idx = rng.choice(len(RACE_VALUES), size=rows, p=_RACE_P / _RACE_P.sum())

    marital_idx = np.empty(rows, dtype=np.int64)
    tobacco_idx = np.empty(rows, dtype=np.int64)
    prenatal_idx = np.empty(rows, dtype=np.int64)
    edu_idx = np.empty(rows, dtype=np.int64)
    age_idx = np.empty(rows, dtype=np.int64)
    for r, race in enumerate(RACE_VALUES):
        mask = race_idx == r
        count = int(mask.sum())
        if count == 0:
            continue
        marital_idx[mask] = (rng.random(count) >= _MARRIED_P[race]).astype(int)
        tobacco_idx[mask] = (rng.random(count) >= _SMOKING_P[race]).astype(int)
        p = np.array(_PRENATAL_P[race])
        prenatal_idx[mask] = rng.choice(len(PRENATAL_VALUES), size=count, p=p / p.sum())
        p = np.array(_EDU_P[race])
        edu_idx[mask] = rng.choice(len(EDU_VALUES), size=count, p=p / p.sum())
        p = np.array(_AGE_P[race])
        age_idx[mask] = rng.choice(len(AGE_VALUES), size=count, p=p / p.sum())

    sex_idx = (rng.random(rows) >= 0.512).astype(int)  # slight male excess
    hyper_idx = (rng.random(rows) >= _HYPERTENSION_P).astype(int)  # 0=yes
    diab_idx = (rng.random(rows) >= _DIABETES_P).astype(int)
    plur_idx = rng.choice(
        len(PLURALITY_VALUES), size=rows, p=np.array(_PLURALITY_P)
    )
    gest_idx = rng.choice(
        len(GESTATION_VALUES), size=rows, p=np.array(_GESTATION_P)
    )
    # index 0 = vaginal, 1 = cesarean; 0 = hospital, 1 = other.
    deliv_idx = (rng.random(rows) < _DELIVERY_P).astype(int)
    birthplace_idx = (rng.random(rows) < _BIRTHPLACE_P).astype(int)

    odds = np.full(rows, _BASE_POOR_ODDS)
    odds *= _odds_lookup(RACE_VALUES, _RACE_ODDS)[race_idx]
    odds *= _odds_lookup(MARITAL_VALUES, _MARITAL_ODDS)[marital_idx]
    odds *= _odds_lookup(TOBACCO_VALUES, _TOBACCO_ODDS)[tobacco_idx]
    odds *= _odds_lookup(PRENATAL_VALUES, _PRENATAL_ODDS)[prenatal_idx]
    odds *= _odds_lookup(EDU_VALUES, _EDU_ODDS)[edu_idx]
    odds *= _odds_lookup(AGE_VALUES, _AGE_ODDS)[age_idx]
    odds *= _odds_lookup(YESNO_VALUES, _HYPERTENSION_ODDS)[hyper_idx]
    odds *= _odds_lookup(YESNO_VALUES, _DIABETES_ODDS)[diab_idx]
    odds *= _odds_lookup(SEX_VALUES, _SEX_ODDS)[sex_idx]
    odds *= _odds_lookup(PLURALITY_VALUES, _PLURALITY_ODDS)[plur_idx]
    odds *= _odds_lookup(GESTATION_VALUES, _GESTATION_ODDS)[gest_idx]
    odds *= _odds_lookup(DELIVERY_VALUES, _DELIVERY_ODDS)[deliv_idx]
    odds *= _odds_lookup(BIRTHPLACE_VALUES, _BIRTHPLACE_ODDS)[birthplace_idx]
    poor_p = odds / (1 + odds)
    ap_idx = (rng.random(rows) < poor_p).astype(int)  # 1 = poor

    noise_columns: List[np.ndarray] = []
    for i in range(1, noise_attributes + 1):
        cardinality = 3 + (i % 4)  # 3-6 values per noise column
        labels = np.array([f"x{i}v{j}" for j in range(cardinality)])
        noise_columns.append(labels[rng.choice(cardinality, size=rows)])

    database = Database(schema(noise_attributes))
    relation = database.relation("Birth")
    ap = np.array(AP_VALUES)[ap_idx]
    race = np.array(RACE_VALUES)[race_idx]
    marital = np.array(MARITAL_VALUES)[marital_idx]
    age = np.array(AGE_VALUES)[age_idx]
    tobacco = np.array(TOBACCO_VALUES)[tobacco_idx]
    prenatal = np.array(PRENATAL_VALUES)[prenatal_idx]
    education = np.array(EDU_VALUES)[edu_idx]
    sex = np.array(SEX_VALUES)[sex_idx]
    hypertension = np.array(YESNO_VALUES)[hyper_idx]
    diabetes = np.array(YESNO_VALUES)[diab_idx]
    plurality = np.array(PLURALITY_VALUES)[plur_idx]
    gestation = np.array(GESTATION_VALUES)[gest_idx]
    delivery = np.array(DELIVERY_VALUES)[deliv_idx]
    birthplace = np.array(BIRTHPLACE_VALUES)[birthplace_idx]
    columns = [
        range(rows),
        ap.tolist(),
        race.tolist(),
        marital.tolist(),
        age.tolist(),
        tobacco.tolist(),
        prenatal.tolist(),
        education.tolist(),
        sex.tolist(),
        hypertension.tolist(),
        diabetes.tolist(),
        plurality.tolist(),
        gestation.tolist(),
        delivery.tolist(),
        birthplace.tolist(),
    ]
    columns.extend(col.tolist() for col in noise_columns)
    relation.insert_many(zip(*columns))
    return database


# -- the paper's user questions -------------------------------------------

#: Epsilon added to all counts (Section 5.1.1: "a small threshold of
#: 0.0001 to all counts to avoid any division by zero").
EPSILON = 0.0001


def _count_where(name: str, **equals: str) -> AggregateQuery:
    atoms = [
        Comparison("=", Col(f"Birth.{attr}"), Const(value))
        for attr, value in equals.items()
    ]
    return AggregateQuery(name, count_star(name), conj(*atoms))


def q_race_question() -> UserQuestion:
    """``(Q_Race, high)``: Q = q1/q2, good vs poor APGAR for Asians."""
    q1 = _count_where("q1", ap="good", race="Asian")
    q2 = _count_where("q2", ap="poor", race="Asian")
    return UserQuestion.high(ratio_query(q1, q2, epsilon=EPSILON))


def q_race_prime_question() -> UserQuestion:
    """``(Q'_Race, high)``: (good/poor for Asian) / (good/poor for Black)."""
    q1 = _count_where("q1", ap="good", race="Asian")
    q2 = _count_where("q2", ap="poor", race="Asian")
    q3 = _count_where("q3", ap="good", race="Black")
    q4 = _count_where("q4", ap="poor", race="Black")
    return UserQuestion.high(double_ratio_query(q1, q2, q3, q4, epsilon=EPSILON))


def q_marital_question() -> UserQuestion:
    """``(Q_Marital, high)``: (good/poor married) / (good/poor unmarried)."""
    q1 = _count_where("q1", ap="good", marital="married")
    q2 = _count_where("q2", ap="poor", marital="married")
    q3 = _count_where("q3", ap="good", marital="unmarried")
    q4 = _count_where("q4", ap="poor", marital="unmarried")
    return UserQuestion.high(double_ratio_query(q1, q2, q3, q4, epsilon=EPSILON))


def default_attributes(question: str = "race") -> List[str]:
    """The five relevant attributes of Section 5.1.1.

    For Q_Race the fifth attribute is marital status; for Q_Marital it
    is race.
    """
    base = ["Birth.age", "Birth.tobacco", "Birth.prenatal", "Birth.education"]
    if question == "race":
        return base + ["Birth.marital"]
    if question == "marital":
        return base + ["Birth.race"]
    raise ValueError(f"question must be 'race' or 'marital', got {question!r}")


def extended_attributes() -> List[str]:
    """The eight-attribute set of the Figure 13b sweep."""
    return [
        "Birth.age",
        "Birth.tobacco",
        "Birth.prenatal",
        "Birth.education",
        "Birth.marital",
        "Birth.sex",
        "Birth.hypertension",
        "Birth.diabetes",
    ]


def wide_attributes() -> List[str]:
    """All twelve explanation-eligible attributes (sweeps beyond the
    paper's eight; the real CDC file has 233 columns)."""
    return extended_attributes() + [
        "Birth.plurality",
        "Birth.gestation",
        "Birth.delivery",
        "Birth.birthplace",
    ]


def figure7_table(database: Database) -> Dict[str, Dict[Tuple[str, str], int]]:
    """The Figure 7 contingency tables for the generated instance.

    Returns ``{"race": {(ap, race): count}, "marital": {(ap, m): count}}``.
    """
    from ..engine.universal import universal_table

    u = universal_table(database)
    ap_pos = u.position("Birth.ap")
    race_pos = u.position("Birth.race")
    marital_pos = u.position("Birth.marital")
    by_race: Dict[Tuple[str, str], int] = {}
    by_marital: Dict[Tuple[str, str], int] = {}
    for row in u.rows():
        key_r = (row[ap_pos], row[race_pos])
        by_race[key_r] = by_race.get(key_r, 0) + 1
        key_m = (row[ap_pos], row[marital_pos])
        by_marital[key_m] = by_marital.get(key_m, 0) + 1
    return {"race": by_race, "marital": by_marital}
