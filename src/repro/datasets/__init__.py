"""``repro.datasets`` — seeded synthetic workload generators.

Each module reproduces one of the paper's data sources:

* :mod:`~repro.datasets.running_example` — the Figure 3 toy instance
  and the Example 2.9/2.10 counterexamples;
* :mod:`~repro.datasets.chains` — the Example 3.7 worst-case chains;
* :mod:`~repro.datasets.dblp` — a synthetic DBLP with the planted
  industrial-bump phenomenon (Figures 1–2);
* :mod:`~repro.datasets.geodblp` — the DBLP + Geo-DBLP integration
  with the UK SIGMOD/PODS anomaly (Figure 15);
* :mod:`~repro.datasets.natality` — a synthetic natality table whose
  conditional distributions are planted from the paper's published
  counts (Figures 7–11);
* :mod:`~repro.datasets.tpch` — a miniature TPC-H with the real
  (cyclic) eight-table foreign-key graph and planted regional/part
  phenomena, the workload pack behind ``repro bench matrix``.
"""

from . import chains, dblp, geodblp, natality, running_example, tpch

__all__ = ["chains", "dblp", "geodblp", "natality", "running_example", "tpch"]
