"""Worst-case chain instances (Example 3.7 / Figure 5).

Schema: ``R1(a)``, ``R2(b)``, ``R3(c, a, b)`` with two back-and-forth
foreign keys ``R3.a ↔ R1.a`` and ``R3.b ↔ R2.b``.  The instance for
parameter p has

* ``R1 = {r_1 … r_p}``          (values a_1 … a_p),
* ``R2 = {t_0 … t_p}``          (values b_0 … b_p),
* ``R3 = {s_1a, s_1b, …, s_pa, s_pb}`` with
  ``s_ia = (c_ia, a_i, b_{i-1})`` and ``s_ib = (c_ib, a_i, b_i)``,

for a total of ``n = 4p + 1`` tuples.  For the explanation
``φ : [R3.c = c_1a]`` the deletion zig-zags down the chain one dotted
edge at a time (the paper's Figure 5 shows p = 2, n = 9), so program P
needs Θ(n) iterations — the tightness witness for Proposition 3.4.

The exact count under our (literal) reading of Rule (i) is
``n − 2 = 4p − 1``: the paper's narrative has t_0 arrive via Rule (iii)
in iteration 2, but Rule (i) as written,
``Δ_i¹ = R_i − Π_{A_i}(σ_¬φ U)``, already catches t_0 in iteration 1
(t_0 joins only the seed tuple s_1a, so it vanishes from the projected
residual universal table).  That merges the paper's first two
iterations; every later iteration matches the Example 3.7 narrative
one for one.

This is the tightness witness for Proposition 3.4 and the recursion
trigger of Section 3.3 (R3 carries *two* back-and-forth keys, so
Proposition 3.11 does not apply).
"""

from __future__ import annotations

from typing import Tuple

from ..engine.database import Database
from ..engine.schema import DatabaseSchema, foreign_key, make_schema
from ..errors import SchemaError
from ..core.predicates import AtomicPredicate, Explanation


def chain_schema() -> DatabaseSchema:
    """The three-relation schema with two back-and-forth keys."""
    return DatabaseSchema(
        (
            make_schema("R1", ["a"], ["a"]),
            make_schema("R2", ["b"], ["b"]),
            make_schema("R3", ["c", "a", "b"], ["c"]),
        ),
        (
            foreign_key("R3", "a", "R1", "a", back_and_forth=True),
            foreign_key("R3", "b", "R2", "b", back_and_forth=True),
        ),
    )


def example_37_database(p: int) -> Database:
    """The Figure 5 chain instance with parameter p (n = 4p + 1 tuples)."""
    if p < 1:
        raise SchemaError(f"chain parameter p must be >= 1, got {p}")
    r1 = [(f"a{i}",) for i in range(1, p + 1)]
    r2 = [(f"b{i}",) for i in range(0, p + 1)]
    r3 = []
    for i in range(1, p + 1):
        r3.append((f"c{i}a", f"a{i}", f"b{i - 1}"))
        r3.append((f"c{i}b", f"a{i}", f"b{i}"))
    return Database(chain_schema(), {"R1": r1, "R2": r2, "R3": r3})


def example_37_explanation() -> Explanation:
    """``φ : [R3.c = c1a]`` — deletes the whole chain, slowly."""
    return Explanation.of(AtomicPredicate("R3", "c", "=", "c1a"))


def example_37(p: int) -> Tuple[Database, Explanation]:
    """Database and explanation together, plus the expected iteration
    count ``4p`` available as :func:`expected_iterations`."""
    return example_37_database(p), example_37_explanation()


def expected_iterations(p: int) -> int:
    """Program P iteration count on the chain: ``n − 2 = 4p − 1``.

    See the module docstring for why this is one less than the paper's
    narrative count (Rule (i) already catches t_0).
    """
    return 4 * p - 1


def certified_convergence():
    """Analyzer smoke assertion for this schema's convergence class.

    R3 carries two back-and-forth keys with distinct targets, so only
    the Proposition 3.4 fallback applies: the certified bound is the
    symbolic ``n - 1`` (concrete only once an instance supplies n).
    """
    from ..analysis.fkgraph import RULE_PROP_34, certify_convergence

    certificate = certify_convergence(chain_schema())
    assert certificate.interaction_cycle
    assert certificate.selected_rule == RULE_PROP_34
    assert certificate.bound is None
    assert certificate.bound_expression == "n - 1"
    return certificate


def single_back_and_forth_chain(p: int) -> Tuple[Database, Explanation]:
    """A chain variant with only ONE back-and-forth key (R3.a ↔ R1.a).

    Used to exercise Proposition 3.11: with at most one back-and-forth
    key per relation, P converges in ≤ 2s + 2 = 4 steps regardless of
    p.
    """
    schema = DatabaseSchema(
        (
            make_schema("R1", ["a"], ["a"]),
            make_schema("R2", ["b"], ["b"]),
            make_schema("R3", ["c", "a", "b"], ["c"]),
        ),
        (
            foreign_key("R3", "a", "R1", "a", back_and_forth=True),
            foreign_key("R3", "b", "R2", "b", back_and_forth=False),
        ),
    )
    db = example_37_database(p)
    rebuilt = Database(
        schema,
        {
            "R1": db.relation("R1").rows(),
            "R2": db.relation("R2").rows(),
            "R3": db.relation("R3").rows(),
        },
    )
    return rebuilt, example_37_explanation()
