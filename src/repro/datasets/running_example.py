"""The paper's running example (Figure 3) and the small counterexamples.

Schema (Example 2.2)::

    Author(id, name, inst, dom)
    Authored(id, pubid)
    Publication(pubid, year, venue)

with foreign keys (Eq. (2))::

    Authored.id    ->  Author.id          (standard)
    Authored.pubid <-> Publication.pubid  (back-and-forth)

The instance matches Figure 3 tuple for tuple; the module also builds
the variants used by Examples 2.8–2.10 and the chain instance of
Example 2.9.
"""

from __future__ import annotations


from ..engine.database import Database
from ..engine.schema import DatabaseSchema, foreign_key, make_schema

#: Tuple identifiers from Figure 3, for readable tests.
R1 = ("A1", "JG", "C.edu", "edu")
R2 = ("A2", "RR", "M.com", "com")
R3 = ("A3", "CM", "I.com", "com")
S1 = ("A1", "P1")
S2 = ("A2", "P1")
S3 = ("A1", "P2")
S4 = ("A3", "P2")
S5 = ("A2", "P3")
S6 = ("A3", "P3")
T1 = ("P1", 2001, "SIGMOD")
T2 = ("P2", 2011, "VLDB")
T3 = ("P3", 2001, "SIGMOD")


def schema(*, back_and_forth: bool = True) -> DatabaseSchema:
    """The Example 2.2 schema.

    ``back_and_forth=False`` demotes Authored.pubid -> Publication.pubid
    to a standard key — the variant Example 2.8 contrasts against.
    """
    return DatabaseSchema(
        (
            make_schema("Author", ["id", "name", "inst", "dom"], ["id"]),
            make_schema("Authored", ["id", "pubid"], ["id", "pubid"]),
            make_schema(
                "Publication", ["pubid", "year", "venue"], ["pubid"]
            ),
        ),
        (
            foreign_key("Authored", "id", "Author", "id"),
            foreign_key(
                "Authored",
                "pubid",
                "Publication",
                "pubid",
                back_and_forth=back_and_forth,
            ),
        ),
    )


def database(*, back_and_forth: bool = True) -> Database:
    """The Figure 3 instance."""
    return Database(
        schema(back_and_forth=back_and_forth),
        {
            "Author": [R1, R2, R3],
            "Authored": [S1, S2, S3, S4, S5, S6],
            "Publication": [T1, T2, T3],
        },
    )


def certified_convergence():
    """Analyzer smoke assertion for this schema's convergence class.

    With the back-and-forth Authored.pubid ↔ Publication.pubid key the
    schema sits in the Proposition 3.11 class (one key per relation,
    bound 2s + 2 = 4); demoted to a standard key it is back in the
    no-back-and-forth class of Proposition 3.5 (bound 2).
    """
    from ..analysis.fkgraph import (
        RULE_PROP_35,
        RULE_PROP_311,
        certify_convergence,
    )

    certificate = certify_convergence(schema())
    assert certificate.selected_rule == RULE_PROP_311
    assert certificate.bound == 4
    standard = certify_convergence(schema(back_and_forth=False))
    assert standard.selected_rule == RULE_PROP_35
    assert standard.bound == 2
    return certificate


def example_29_schema() -> DatabaseSchema:
    """Example 2.9: R1(x), S1(x,y), R2(y), S2(y,z), R3(z), standard FKs."""
    return DatabaseSchema(
        (
            make_schema("R1", ["x"], ["x"]),
            make_schema("S1", ["x", "y"], ["x", "y"]),
            make_schema("R2", ["y"], ["y"]),
            make_schema("S2", ["y", "z"], ["y", "z"]),
            make_schema("R3", ["z"], ["z"]),
        ),
        (
            foreign_key("S1", "x", "R1", "x"),
            foreign_key("S1", "y", "R2", "y"),
            foreign_key("S2", "y", "R2", "y"),
            foreign_key("S2", "z", "R3", "z"),
        ),
    )


def example_29_database() -> Database:
    """The Eq. (3) instance: {R1(a), S1(a,b), R2(b), S2(b,c), R3(c)}."""
    return Database(
        example_29_schema(),
        {
            "R1": [("a",)],
            "S1": [("a", "b")],
            "R2": [("b",)],
            "S2": [("b", "c")],
            "R3": [("c",)],
        },
    )


def example_210_database() -> Database:
    """Example 2.10: Eq. (3) plus S1(a,b'), R2(b'), S2(b',c)."""
    db = example_29_database()
    db.relation("S1").insert(("a", "b'"))
    db.relation("R2").insert(("b'",))
    db.relation("S2").insert(("b'", "c"))
    return db
