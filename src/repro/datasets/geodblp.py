"""DBLP + Geo-DBLP integration (Section 5.2, Figure 15).

The paper's second DBLP experiment joins **eight** tables — three from
DBLP and five from the Geo-DBLP crawl — and asks why more than half of
the UK's 2001–2011 papers are in PODS rather than SIGMOD.  We mirror
the 8-way acyclic join with:

* DBLP side: ``Author(aid, name, dom)``,
  ``Authored(aid, pubid, gid)``, ``Publication(pubid, year, venueid)``,
  ``Venue(venueid, vname)``;
* Geo side: ``AuthorG(gid, gname, affid)``,
  ``AffiliationG(affid, inst, cityid)``, ``City(cityid, city,
  countryid)``, ``Country(countryid, country)``.

``Authored.pubid ↔ Publication.pubid`` is back-and-forth (authors cause
papers); every other key is standard, so ``count(distinct
Publication.pubid)`` is intervention-additive (footnote 11).

Planted phenomenon: UK institutions host a PODS-heavy theory cluster
centred on Oxford — including both the university (under *two* name
formats, mirroring the paper's remark about 'Oxford Univ.' vs
'University of Oxford') and 'Semmle Ltd.' in the same city — so
``[City.city = Oxford]`` outranks any single institution, exactly the
effect the paper reports.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.numquery import AggregateQuery, ratio_query
from ..core.question import UserQuestion
from ..engine.aggregates import count_distinct
from ..engine.database import Database
from ..engine.expressions import Col, Comparison, Const, conj, disj
from ..engine.schema import DatabaseSchema, foreign_key, make_schema


def schema() -> DatabaseSchema:
    """The 8-relation integrated schema."""
    return DatabaseSchema(
        (
            make_schema("Author", ["aid", "name", "dom"], ["aid"]),
            make_schema("Authored", ["aid", "pubid", "gid"], ["aid", "pubid"]),
            make_schema("Publication", ["pubid", "year", "venueid"], ["pubid"]),
            make_schema("Venue", ["venueid", "vname"], ["venueid"]),
            make_schema("AuthorG", ["gid", "gname", "affid"], ["gid"]),
            make_schema("AffiliationG", ["affid", "inst", "cityid"], ["affid"]),
            make_schema("City", ["cityid", "city", "countryid"], ["cityid"]),
            make_schema("Country", ["countryid", "country"], ["countryid"]),
        ),
        (
            foreign_key("Authored", "aid", "Author", "aid"),
            foreign_key("Authored", "pubid", "Publication", "pubid", back_and_forth=True),
            foreign_key("Authored", "gid", "AuthorG", "gid"),
            foreign_key("Publication", "venueid", "Venue", "venueid"),
            foreign_key("AuthorG", "affid", "AffiliationG", "affid"),
            foreign_key("AffiliationG", "cityid", "City", "cityid"),
            foreign_key("City", "countryid", "Country", "countryid"),
        ),
    )


def certified_convergence():
    """Analyzer smoke assertion for this schema's convergence class.

    Eight relations, one back-and-forth key (Authored.pubid ↔
    Publication.pubid): Proposition 3.11 certifies ≤ 2s + 2 = 4 steps
    regardless of how deep the standard-key lookup chain grows.
    """
    from ..analysis.fkgraph import RULE_PROP_311, certify_convergence

    certificate = certify_convergence(schema())
    assert certificate.selected_rule == RULE_PROP_311
    assert certificate.bound == 4
    return certificate


@dataclass(frozen=True)
class Site:
    """One (institution, city, country) site with venue preferences."""

    inst: str
    city: str
    country: str
    dom: str
    size: int
    sigmod_rate: float  # expected SIGMOD pubs/year
    pods_rate: float  # expected PODS pubs/year


SITES: Tuple[Site, ...] = (
    # UK: PODS-heavy theory cluster.
    Site("Oxford Univ.", "Oxford", "United Kingdom", "uk", 4, 0.3, 1.6),
    Site("University of Oxford", "Oxford", "United Kingdom", "uk", 3, 0.2, 1.2),
    Site("Semmle Ltd.", "Oxford", "United Kingdom", "uk", 2, 0.1, 0.8),
    Site("Edinburgh Univ.", "Edinburgh", "United Kingdom", "uk", 3, 0.4, 1.0),
    Site("Manchester Univ.", "Manchester", "United Kingdom", "uk", 2, 0.5, 0.4),
    # US / elsewhere: SIGMOD-heavy systems groups.
    Site("UW", "Seattle", "USA", "us", 8, 2.6, 0.7),
    Site("Stanford Univ.", "Palo Alto", "USA", "us", 8, 2.4, 0.8),
    Site("IBM Research", "San Jose", "USA", "us", 7, 2.2, 0.3),
    Site("MIT", "Cambridge", "USA", "us", 7, 2.3, 0.5),
    Site("TU Munich", "Munich", "Germany", "de", 5, 1.6, 0.4),
    Site("INRIA", "Paris", "France", "fr", 5, 1.2, 0.7),
    Site("Tsinghua Univ.", "Beijing", "China", "cn", 5, 1.5, 0.2),
    Site("Technion", "Haifa", "Israel", "il", 4, 0.8, 0.7),
)

YEARS = range(2001, 2012)
VENUE_ROWS = (("V1", "SIGMOD"), ("V2", "PODS"))


def generate(scale: float = 1.0, seed: int = 2014) -> Database:
    """Generate the integrated database (deterministic per (scale, seed))."""
    rng = random.Random(seed)
    db = Database(schema())
    db.relation("Venue").insert_many(VENUE_ROWS)

    countries: Dict[str, str] = {}
    cities: Dict[Tuple[str, str], str] = {}
    affils: Dict[str, str] = {}
    for site in SITES:
        if site.country not in countries:
            countries[site.country] = f"CO{len(countries) + 1}"
            db.relation("Country").insert(
                (countries[site.country], site.country)
            )
        city_key = (site.city, site.country)
        if city_key not in cities:
            cities[city_key] = f"CI{len(cities) + 1}"
            db.relation("City").insert(
                (cities[city_key], site.city, countries[site.country])
            )
        affils[site.inst] = f"AF{len(affils) + 1}"
        db.relation("AffiliationG").insert(
            (affils[site.inst], site.inst, cities[city_key])
        )

    venue_id = {"SIGMOD": "V1", "PODS": "V2"}
    pub_counter = 0
    gid_counter = 0
    inserted_authors = set()
    for site in SITES:
        pool = [f"{site.inst.replace(' ', '')}_{i}" for i in range(site.size)]
        # Geo author records: one per (person, affiliation).
        gids: Dict[str, str] = {}
        for person in pool:
            gid_counter += 1
            gids[person] = f"G{gid_counter}"
            db.relation("AuthorG").insert(
                (gids[person], person, affils[site.inst])
            )
        for year in YEARS:
            for venue, rate in (("SIGMOD", site.sigmod_rate), ("PODS", site.pods_rate)):
                count = _poisson(rng, rate * scale)
                for _ in range(count):
                    pub_counter += 1
                    pubid = f"P{pub_counter:05d}"
                    db.relation("Publication").insert(
                        (pubid, year, venue_id[venue])
                    )
                    n_authors = rng.choices((1, 2, 3), weights=(0.35, 0.45, 0.2))[0]
                    people = rng.sample(pool, min(n_authors, len(pool)))
                    for person in people:
                        aid = f"A:{person}"
                        if aid not in inserted_authors:
                            inserted_authors.add(aid)
                            db.relation("Author").insert(
                                (aid, person, site.dom)
                            )
                        db.relation("Authored").insert(
                            (aid, pubid, gids[person])
                        )
    # Geo records of people who never published (and, at tiny scales,
    # a venue with no papers) would dangle; the framework assumes a
    # semijoin-reduced input (Section 2), so reduce before returning.
    from ..engine.reduction import semijoin_reduce

    reduced, _ = semijoin_reduce(db)
    return reduced


def _poisson(rng: random.Random, lam: float) -> int:
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    k, p = 0, 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


def uk_question(*, epsilon: float = 0.0001) -> UserQuestion:
    """``(Q, low)``: Q = (UK SIGMOD pubs) / (UK PODS pubs), 2001–2011.

    UK membership is the paper's disjunction
    ``[Author.dom = 'uk' ∨ Country.country = 'United Kingdom']``.
    """
    uk = disj(
        Comparison("=", Col("Author.dom"), Const("uk")),
        Comparison("=", Col("Country.country"), Const("United Kingdom")),
    )
    in_years = conj(
        Comparison(">=", Col("Publication.year"), Const(2001)),
        Comparison("<=", Col("Publication.year"), Const(2011)),
    )
    q1 = AggregateQuery(
        "q1",
        count_distinct("Publication.pubid", "q1"),
        conj(Comparison("=", Col("Venue.vname"), Const("SIGMOD")), uk, in_years),
    )
    q2 = AggregateQuery(
        "q2",
        count_distinct("Publication.pubid", "q2"),
        conj(Comparison("=", Col("Venue.vname"), Const("PODS")), uk, in_years),
    )
    return UserQuestion.low(ratio_query(q1, q2, epsilon=epsilon))


def default_attributes() -> List[str]:
    """The three relevant attributes of Section 5.2."""
    return ["Author.name", "AffiliationG.inst", "City.city"]


def country_venue_percentages(database: Database) -> Dict[str, Dict[str, float]]:
    """The Figure 15a series: % of SIGMOD vs PODS pubs per country."""
    from ..engine.universal import universal_table

    u = universal_table(database)
    country_pos = u.position("Country.country")
    venue_pos = u.position("Venue.vname")
    pub_pos = u.position("Publication.pubid")
    pubs: Dict[str, Dict[str, set]] = {}
    for row in u.rows():
        pubs.setdefault(row[country_pos], {}).setdefault(
            row[venue_pos], set()
        ).add(row[pub_pos])
    out: Dict[str, Dict[str, float]] = {}
    for country, by_venue in pubs.items():
        sigmod = len(by_venue.get("SIGMOD", ()))
        pods = len(by_venue.get("PODS", ()))
        total = sigmod + pods
        if total == 0:
            continue
        out[country] = {
            "SIGMOD": 100.0 * sigmod / total,
            "PODS": 100.0 * pods / total,
        }
    return out
