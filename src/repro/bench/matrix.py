"""The repro bench matrix: one measured cell per configuration.

A *cell* is one end-to-end explanation-table build for a fixed
``(dataset, question, method, strategy, backend, shards)``.  Each cell
records

* wall time and the :mod:`repro.obs` per-phase breakdown,
* the table's :meth:`content_fingerprint` and a fingerprint of the
  top-K ranking,
* the plan certificate's verdicts (convergence rule, additivity,
  recommended method/strategy, tree-ness of the join graph).

After the sweep the matrix *cross-checks itself*: every cell of the
same ``(dataset, question, resolved method)`` group must agree on both
fingerprints — backend, strategy, and shard count are pure execution
knobs, so a disagreement means an engine bug, and :func:`run_matrix`
raises instead of writing a report that quietly buries it.  (Grouping
includes the resolved method because the exact/indexed evaluators
legitimately materialize zero-support candidate cells the cube never
builds; in the ``small`` preset every cell uses ``method="auto"``, so
the groups coincide with ``(dataset, question)`` exactly.)

Sharded cells run the partition/merge pipeline in-process
(``REPRO_SHARD_MODE=inline``): the point of the shard axis here is the
determinism claim — identical fingerprints at every shard count — not
parallel speedup, which ``benchmarks/bench_fig13_scaling.py`` measures
with real worker pools.

Combinations the engine does not support are recorded under
``skipped`` with a reason, never silently dropped: non-cube methods on
SQL backends, shards on SQL backends, the indexed evaluator on
non-count aggregates, and backends whose driver is not installed.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..backends import available_backends
from ..core.cube_algorithm import ExplanationTable, _canonical_cell
from ..core.explainer import Explainer
from ..core.question import UserQuestion
from ..core.topk import RankedExplanation, top_k_explanations
from ..datasets import natality, tpch
from ..engine.database import Database
from ..errors import ReproError
from ..obs import TraceRecorder

__all__ = [
    "PRESETS",
    "BenchMatrixError",
    "MatrixCell",
    "MatrixSpec",
    "ranking_fingerprint",
    "run_matrix",
    "write_matrix",
]

#: One (database, question, attributes) workload.
Workload = Tuple[Database, UserQuestion, Tuple[str, ...]]

#: Canonical seeds — shared with the differential/golden suites so a
#: matrix disagreement reproduces directly under pytest.
TPCH_SF = 0.01
TPCH_SEED = 2014
NATALITY_ROWS = 400
NATALITY_SEED = 7


class BenchMatrixError(ReproError):
    """A cross-check over the finished matrix failed."""


@dataclass(frozen=True)
class MatrixSpec:
    """The axes one preset sweeps."""

    name: str
    datasets: Tuple[str, ...]
    methods: Tuple[str, ...]
    strategies: Tuple[str, ...]
    backends: Tuple[str, ...]
    shard_counts: Tuple[int, ...]
    top_k: int = 5


#: ``small`` is the CI smoke preset: deterministic drivers only
#: (memory + sqlite ship with CPython) and the certificate-resolved
#: method.  ``full`` adds duckdb and the explicit exact/indexed
#: evaluators (memory-only; fixpoint) for method differentials.
PRESETS: Dict[str, MatrixSpec] = {
    "small": MatrixSpec(
        name="small",
        datasets=("tpch", "natality"),
        methods=("auto",),
        strategies=("fixpoint", "closure"),
        backends=("memory", "sqlite"),
        shard_counts=(1, 2),
    ),
    "full": MatrixSpec(
        name="full",
        datasets=("tpch", "natality"),
        methods=("auto", "exact", "indexed"),
        strategies=("fixpoint", "closure"),
        backends=("memory", "sqlite", "duckdb"),
        shard_counts=(1, 2),
    ),
}


@dataclass(frozen=True)
class MatrixCell:
    """One configuration of the sweep."""

    dataset: str
    question: str
    method: str
    strategy: str
    backend: str
    shards: int

    def key(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset,
            "question": self.question,
            "method": self.method,
            "strategy": self.strategy,
            "backend": self.backend,
            "shards": self.shards,
        }


def _tpch_workloads() -> Dict[str, Workload]:
    db = tpch.generate(sf=TPCH_SF, seed=TPCH_SEED)
    return {
        name: (
            db,
            tpch.question(name),
            tuple(tpch.question_attributes(name)),
        )
        for name in tpch.question_names()
    }


def _natality_workloads() -> Dict[str, Workload]:
    db = natality.generate(rows=NATALITY_ROWS, seed=NATALITY_SEED)
    return {
        "race": (
            db,
            natality.q_race_question(),
            tuple(natality.default_attributes("race")),
        ),
        "marital": (
            db,
            natality.q_marital_question(),
            tuple(natality.default_attributes("marital")),
        ),
    }


_DATASET_BUILDERS: Dict[str, Callable[[], Dict[str, Workload]]] = {
    "tpch": _tpch_workloads,
    "natality": _natality_workloads,
}


def ranking_fingerprint(ranking: Sequence[RankedExplanation]) -> str:
    """A sha256 over the canonical top-K ranking.

    Degrees go through the same cell canonicalization as
    :meth:`ExplanationTable.content_fingerprint`, so SQL float drift
    (``2.0`` vs ``2``) cannot split fingerprints.
    """
    lines = [
        f"{r.rank}\x1f{r.explanation}\x1f{_canonical_cell(r.degree)}"
        for r in ranking
    ]
    return hashlib.sha256("\x1e".join(lines).encode("utf-8")).hexdigest()


def _build_cells(spec: MatrixSpec, questions: Dict[str, Tuple[str, ...]]) -> List[MatrixCell]:
    cells = []
    for dataset in spec.datasets:
        for question in questions[dataset]:
            for method in spec.methods:
                for strategy in spec.strategies:
                    if method in ("exact", "indexed") and strategy != "fixpoint":
                        # Explicit-method cells pin the baseline
                        # evaluators; their strategy axis is covered
                        # by tests/differential/.
                        continue
                    for backend in spec.backends:
                        for shards in spec.shard_counts:
                            cells.append(
                                MatrixCell(
                                    dataset=dataset,
                                    question=question,
                                    method=method,
                                    strategy=strategy,
                                    backend=backend,
                                    shards=shards,
                                )
                            )
    return cells


def _unsupported(cell: MatrixCell, resolved: str, available: Sequence[str]) -> Optional[str]:
    """Why this cell cannot run, or None if it can."""
    if cell.backend not in available:
        return f"backend {cell.backend!r} is not installed"
    if cell.backend != "memory" and resolved != "cube":
        return (
            f"method {resolved!r} runs only on the in-memory engine; "
            "SQL backends implement Algorithm 1 (cube)"
        )
    if cell.backend != "memory" and cell.shards > 1:
        return "partition-parallel shards are a memory-engine knob"
    return None


def _run_cell(
    cell: MatrixCell, workload: Workload, top_k: int
) -> Tuple[Dict[str, object], ExplanationTable]:
    database, question, attributes = workload
    explainer = Explainer(
        database,
        question,
        list(attributes),
        backend=cell.backend,
        shards=cell.shards if cell.shards > 1 else None,
        strategy=cell.strategy,
    )
    certificate = explainer.certificate()
    with TraceRecorder() as recorder:
        start = time.perf_counter()
        table = explainer.explanation_table(cell.method)
        ranking = top_k_explanations(table, top_k)
        wall_s = time.perf_counter() - start
    record: Dict[str, object] = dict(cell.key())
    record.update(
        {
            "resolved_method": explainer.resolve_method(cell.method),
            "wall_s": wall_s,
            "rows": len(table),
            "table_fingerprint": table.content_fingerprint(),
            "ranking_fingerprint": ranking_fingerprint(ranking),
            "top": [str(r.explanation) for r in ranking],
            "certificate": {
                "selected_rule": certificate.convergence.selected_rule,
                "bound_expression": certificate.convergence.bound_expression,
                "join_graph_is_tree": certificate.convergence.join_graph_is_tree,
                "all_exact_cube": (
                    certificate.additivity.all_exact_cube
                    if certificate.additivity is not None
                    else None
                ),
                "recommended_method": certificate.recommended_method,
                "recommended_strategy": certificate.recommended_strategy,
            },
            "phases": recorder.aggregate(),
        }
    )
    return record, table


def _cross_check(cells: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Group cells and demand fingerprint agreement within each group."""
    groups: Dict[Tuple[object, object, object], List[Dict[str, object]]] = {}
    for record in cells:
        key = (
            record["dataset"],
            record["question"],
            record["resolved_method"],
        )
        groups.setdefault(key, []).append(record)
    summaries: List[Dict[str, object]] = []
    mismatches: List[str] = []
    for key, members in sorted(groups.items(), key=lambda kv: str(kv[0])):
        for field in ("table_fingerprint", "ranking_fingerprint"):
            values = {str(m[field]) for m in members}
            if len(values) > 1:
                mismatches.append(
                    f"{key}: {field} disagrees across "
                    f"{len(members)} cells: {sorted(values)}"
                )
        summaries.append(
            {
                "dataset": key[0],
                "question": key[1],
                "resolved_method": key[2],
                "cells": len(members),
                "table_fingerprint": members[0]["table_fingerprint"],
                "ranking_fingerprint": members[0]["ranking_fingerprint"],
            }
        )
    if mismatches:
        raise BenchMatrixError(
            "bench matrix cross-check failed — execution knobs changed "
            "the table contents:\n  " + "\n  ".join(mismatches)
        )
    return summaries


def run_matrix(
    preset: str = "small",
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Sweep one preset and return the cross-checked report payload."""
    if preset not in PRESETS:
        raise BenchMatrixError(
            f"unknown preset {preset!r}; choose from {sorted(PRESETS)}"
        )
    spec = PRESETS[preset]
    workloads: Dict[str, Dict[str, Workload]] = {}
    datasets_meta: Dict[str, object] = {}
    for dataset in spec.datasets:
        workloads[dataset] = _DATASET_BUILDERS[dataset]()
        database = next(iter(workloads[dataset].values()))[0]
        datasets_meta[dataset] = {
            "fingerprint": database.content_fingerprint(),
            "relations": {
                r.name: len(database.relation(r.name))
                for r in database.schema.relations
            },
        }
    question_names = {
        dataset: tuple(workloads[dataset]) for dataset in spec.datasets
    }
    cells = _build_cells(spec, question_names)
    available = available_backends()

    ran: List[Dict[str, object]] = []
    skipped: List[Dict[str, object]] = []
    previous_mode = os.environ.get("REPRO_SHARD_MODE")
    os.environ["REPRO_SHARD_MODE"] = "inline"
    try:
        for cell in cells:
            workload = workloads[cell.dataset][cell.question]
            probe = Explainer(
                workload[0], workload[1], list(workload[2])
            )
            resolved = probe.resolve_method(cell.method)
            reason = _unsupported(cell, resolved, available)
            if reason is None and cell.method == "indexed":
                kinds = {
                    q.aggregate.kind for q in workload[1].query.aggregates
                }
                if not kinds <= {"count", "count_star", "count_distinct"}:
                    reason = (
                        "indexed evaluator supports the posting-list "
                        f"count family only, not {sorted(kinds)}"
                    )
            if reason is not None:
                skipped.append({**cell.key(), "reason": reason})
                if progress is not None:
                    progress(f"skip {cell.key()}: {reason}")
                continue
            record, _ = _run_cell(cell, workload, spec.top_k)
            ran.append(record)
            if progress is not None:
                progress(
                    f"{cell.dataset}/{cell.question} {cell.method}"
                    f"/{cell.strategy}/{cell.backend}/x{cell.shards}"
                    f": {record['wall_s']:.3f}s"
                )
    finally:
        if previous_mode is None:
            os.environ.pop("REPRO_SHARD_MODE", None)
        else:
            os.environ["REPRO_SHARD_MODE"] = previous_mode

    groups = _cross_check(ran)
    return {
        "preset": spec.name,
        "axes": {
            "datasets": list(spec.datasets),
            "questions": {k: list(v) for k, v in question_names.items()},
            "methods": list(spec.methods),
            "strategies": list(spec.strategies),
            "backends": list(spec.backends),
            "shards": list(spec.shard_counts),
        },
        "datasets": datasets_meta,
        "cells": ran,
        "skipped": skipped,
        "groups": groups,
    }


def write_matrix(report: Dict[str, object], path: str) -> None:
    """Write one :func:`run_matrix` payload as pretty JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
