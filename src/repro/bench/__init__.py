"""``repro.bench`` — the reproducibility bench matrix.

:mod:`repro.bench.matrix` sweeps dataset × question × method ×
strategy × backend × shards, records per-cell wall time, table and
ranking fingerprints, certificate verdicts, and phase breakdowns, and
cross-checks that every cell of the same ``(dataset, question,
resolved method)`` group is content-identical.  ``repro bench matrix``
and ``benchmarks/bench_matrix.py`` are thin wrappers over it.
"""

from .matrix import (
    PRESETS,
    BenchMatrixError,
    MatrixCell,
    MatrixSpec,
    run_matrix,
    write_matrix,
)

__all__ = [
    "PRESETS",
    "BenchMatrixError",
    "MatrixCell",
    "MatrixSpec",
    "run_matrix",
    "write_matrix",
]
