"""repro — intervention-based explanations for database queries.

A production-quality reproduction of *"A Formal Approach to Finding
Explanations for Database Queries"* (Sudeepa Roy and Dan Suciu, SIGMOD
2014).  The package contains:

* :mod:`repro.engine` — a from-scratch in-memory relational engine
  (relations, foreign keys, joins, semijoin reduction, GROUP BY WITH
  CUBE, top-K) standing in for the paper's SQL Server substrate;
* :mod:`repro.core` — the explanation framework: candidate predicates,
  numerical queries, the intervention fixpoint (program P), degrees of
  explanation, the data-cube Algorithm 1, and the top-K strategies;
* :mod:`repro.datasets` — seeded synthetic generators reproducing the
  paper's DBLP, Geo-DBLP and natality workloads.

Quickstart::

    from repro import Explainer
    from repro.datasets import natality

    db = natality.generate(rows=10_000, seed=7)
    question = natality.q_race_question()
    explainer = Explainer(db, question, natality.default_attributes())
    for ranked in explainer.top(5):
        print(ranked.rank, ranked.explanation, ranked.degree)
"""

from ._version import __version__
from .backends import (
    ExecutionBackend,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
)
from .core import (
    AggregateQuery,
    AtomicPredicate,
    DegreeEvaluator,
    Direction,
    DisjunctivePredicate,
    Explainer,
    Explanation,
    ExplanationTable,
    InterventionEngine,
    InterventionResult,
    NumericalQuery,
    RankedExplanation,
    UserQuestion,
    analyze_additivity,
    build_explanation_table,
    compute_intervention,
    difference_query,
    double_ratio_query,
    is_valid_intervention,
    parse_explanation,
    ratio_query,
    regression_slope_query,
    render_ranking,
    rewrite_back_and_forth,
    single_query,
    top_k_explanations,
)
from .engine import (
    Database,
    DatabaseSchema,
    Delta,
    ForeignKey,
    Relation,
    RelationSchema,
    Table,
    agg_avg,
    agg_max,
    agg_min,
    agg_sum,
    count_distinct,
    count_star,
    foreign_key,
    make_schema,
    single_table_schema,
    universal_table,
)
from .errors import (
    ConvergenceError,
    ExplanationError,
    IntegrityError,
    NotAdditiveError,
    QueryError,
    ReproError,
    SchemaError,
)

__all__ = [
    "AggregateQuery",
    "ExecutionBackend",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "AtomicPredicate",
    "DegreeEvaluator",
    "Direction",
    "DisjunctivePredicate",
    "Explainer",
    "Explanation",
    "ExplanationTable",
    "InterventionEngine",
    "InterventionResult",
    "NumericalQuery",
    "RankedExplanation",
    "UserQuestion",
    "analyze_additivity",
    "build_explanation_table",
    "compute_intervention",
    "difference_query",
    "double_ratio_query",
    "is_valid_intervention",
    "parse_explanation",
    "ratio_query",
    "regression_slope_query",
    "render_ranking",
    "rewrite_back_and_forth",
    "single_query",
    "top_k_explanations",
    "Database",
    "DatabaseSchema",
    "Delta",
    "ForeignKey",
    "Relation",
    "RelationSchema",
    "Table",
    "agg_avg",
    "agg_max",
    "agg_min",
    "agg_sum",
    "count_distinct",
    "count_star",
    "foreign_key",
    "make_schema",
    "single_table_schema",
    "universal_table",
    "ConvergenceError",
    "ExplanationError",
    "IntegrityError",
    "NotAdditiveError",
    "QueryError",
    "ReproError",
    "SchemaError",
    "__version__",
]
