"""CSV import/export for relations and tables.

The dtype hints on :class:`~repro.engine.schema.Attribute` drive
parsing: "int"/"float"/"bool" columns are converted, "str" kept
verbatim, and "any" columns are parsed as int, then float, then left as
strings.  Empty fields become NULL.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Sequence, Union

from ..errors import QueryError
from .relation import Relation
from .schema import RelationSchema
from .table import Table
from .types import DUMMY, NULL, Value

PathLike = Union[str, Path]

_NULL_TOKEN = ""
_DUMMY_TOKEN = "__DUMMY__"


def _parse_any(text: str) -> Value:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _parse(text: str, dtype: str) -> Value:
    if text == _NULL_TOKEN:
        return NULL
    if text == _DUMMY_TOKEN:
        return DUMMY
    if dtype == "int":
        return int(text)
    if dtype == "float":
        return float(text)
    if dtype == "bool":
        lowered = text.strip().lower()
        if lowered in ("true", "1", "t", "yes"):
            return True
        if lowered in ("false", "0", "f", "no"):
            return False
        raise QueryError(f"cannot parse {text!r} as bool")
    if dtype == "str":
        return text
    return _parse_any(text)


def _render(value: Value) -> str:
    if value is NULL:
        return _NULL_TOKEN
    if value is DUMMY:
        return _DUMMY_TOKEN
    return str(value)


def load_relation(schema: RelationSchema, path: PathLike) -> Relation:
    """Read a relation from a headed CSV file.

    The header must list exactly the schema's attributes (any order);
    columns are reordered to match the schema.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise QueryError(f"{path}: empty CSV file") from None
        expected = set(schema.attribute_names)
        if set(header) != expected:
            raise QueryError(
                f"{path}: header {header} does not match schema "
                f"attributes {sorted(expected)}"
            )
        order = [header.index(a) for a in schema.attribute_names]
        dtypes = [a.dtype for a in schema.attributes]
        relation = Relation(schema)
        for line in reader:
            if not line:
                continue
            row = tuple(
                _parse(line[i], dtype) for i, dtype in zip(order, dtypes)
            )
            relation.insert(row)
    return relation


def dump_relation(relation: Relation, path: PathLike) -> None:
    """Write a relation to a headed CSV file (deterministic row order)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.attribute_names)
        for row in relation.sorted_rows():
            writer.writerow([_render(v) for v in row])


def dump_table(table: Table, path: PathLike) -> None:
    """Write a result table to a headed CSV file."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        for row in table.rows():
            writer.writerow([_render(v) for v in row])


def load_table(path: PathLike) -> Table:
    """Read a table from a headed CSV file ("any" parsing per cell)."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise QueryError(f"{path}: empty CSV file") from None
        rows: List[Sequence[Value]] = []
        for line in reader:
            if not line:
                continue
            rows.append(tuple(_parse(cell, "any") for cell in line))
    return Table(header, rows)
