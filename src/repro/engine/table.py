"""Lightweight result tables for intermediate query processing.

:class:`~repro.engine.relation.Relation` is the durable, schema'd,
PK-enforcing store.  Query *results* — joins, projections, group-bys,
cubes — have none of those constraints: they are bags/sets of rows
under a flat list of (possibly qualified) column names.  :class:`Table`
is that result type.  All relational operators in
:mod:`repro.engine.operators`, :mod:`repro.engine.joins`,
:mod:`repro.engine.groupby` and :mod:`repro.engine.cube` consume and
produce Tables.

Storage is dual and lazy: a table holds a row-tuple list, a
:class:`~repro.engine.columnstore.ColumnStore`, or both, deriving and
caching each representation from the other on first demand.  The
vectorized operators read columns; :meth:`Table.rows` remains the
row-oriented escape hatch (and test oracle).  Filters, projections and
semijoins are zero-copy: they share base column lists through
selection vectors instead of rebuilding tuples.

The public ``Table(columns, rows)`` constructor validates every row's
arity, since it is the boundary where external data (CSV loads, SQL
results, test literals) enters the engine.  Internal operators use the
trusted :meth:`Table._trusted` / :meth:`Table.from_columns` paths,
which skip per-row validation because their inputs are already-shaped
engine values.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import QueryError
from .columnstore import ColumnStore
from .expressions import Environment, Expression
from .relation import Relation
from .types import Row, Value, is_null, sort_key


class Table:
    """An ordered list of rows under named columns.

    Tables are bags by default (duplicates preserved); :meth:`distinct`
    converts to a set.  Column names must be unique within a table;
    joins qualify clashing names with the source prefix.
    """

    __slots__ = ("columns", "_positions", "_rows", "_store")

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[Value]] = ()):
        self.columns: Tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise QueryError(f"duplicate column names in table: {self.columns}")
        self._positions: Dict[str, int] = {
            c: i for i, c in enumerate(self.columns)
        }
        ncols = len(self.columns)
        checked: List[Row] = []
        for r in rows:
            row = r if type(r) is tuple else tuple(r)
            if len(row) != ncols:
                raise QueryError(
                    f"row arity {len(row)} != column count {ncols}"
                )
            checked.append(row)
        self._rows: Optional[List[Row]] = checked
        self._store: Optional[ColumnStore] = None

    # -- construction ----------------------------------------------------

    @classmethod
    def _trusted(
        cls,
        columns: Sequence[str],
        *,
        rows: Optional[List[Row]] = None,
        store: Optional[ColumnStore] = None,
    ) -> "Table":
        """Internal constructor for already-validated engine data.

        Adopts *rows* (a list of correctly-sized tuples) and/or
        *store* without re-tupling or arity checks.  At least one
        representation must be supplied.
        """
        table = cls.__new__(cls)
        table.columns = tuple(columns)
        table._positions = {c: i for i, c in enumerate(table.columns)}
        table._rows = rows
        table._store = store
        return table

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[str],
        data: Sequence[List[Value]],
        nrows: Optional[int] = None,
    ) -> "Table":
        """Build a table directly from column lists (adopted, no copy).

        All lists must share one length; *nrows* is required when
        *data* is empty (a zero-column table still has a cardinality).
        """
        columns = tuple(columns)
        if len(set(columns)) != len(columns):
            raise QueryError(f"duplicate column names in table: {columns}")
        if len(data) != len(columns):
            raise QueryError(
                f"{len(data)} column lists for {len(columns)} column names"
            )
        if data:
            lengths = {len(col) for col in data}
            if len(lengths) != 1:
                raise QueryError(
                    f"ragged column lists: lengths {sorted(lengths)}"
                )
            n = lengths.pop()
            if nrows is not None and nrows != n:
                raise QueryError(
                    f"nrows {nrows} != column length {n}"
                )
        else:
            if nrows is None:
                raise QueryError("nrows is required for a zero-column table")
            n = nrows
        return cls._trusted(
            columns, store=ColumnStore.from_columns(list(data), n)
        )

    @classmethod
    def from_relation(cls, relation: Relation, qualify: bool = False) -> "Table":
        """Materialize a relation as a table.

        With ``qualify=True`` column names become ``Relation.attr``,
        which is the convention used throughout the explanation
        pipeline (universal-relation columns are always qualified).
        The table shares the relation's version-cached row list and
        column arrays (zero copy); a later mutation of the relation
        rebuilds those caches, so the table keeps its snapshot.
        """
        if qualify:
            cols = [
                f"{relation.name}.{a}" for a in relation.schema.attribute_names
            ]
        else:
            cols = list(relation.schema.attribute_names)
        return cls._trusted(
            cols,
            rows=relation.row_list(),
            store=ColumnStore.from_columns(
                relation.column_arrays(), len(relation)
            ),
        )

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Table":
        """An empty table with the given columns."""
        return cls(columns, ())

    # -- representations ---------------------------------------------------

    def store(self) -> ColumnStore:
        """The columnar representation (built and cached on demand)."""
        if self._store is None:
            assert self._rows is not None
            self._store = ColumnStore.from_rows(self._rows, len(self.columns))
        return self._store

    def column(self, column: str) -> List[Value]:
        """One column's values in row order (treat as read-only)."""
        return self.store().column(self.position(column))

    def column_arrays(self) -> List[List[Value]]:
        """All columns' values in schema order (treat as read-only)."""
        return self.store().columns()

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return len(self._store)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.columns == other.columns and sorted(
            self.rows(), key=_row_key
        ) == sorted(other.rows(), key=_row_key)

    def position(self, column: str) -> int:
        """Index of *column* in the row tuples."""
        try:
            return self._positions[column]
        except KeyError:
            raise QueryError(
                f"table has no column {column!r}; columns are {self.columns}"
            ) from None

    def positions(self, columns: Sequence[str]) -> Tuple[int, ...]:
        """Indexes of several columns, in the given order."""
        return tuple(self.position(c) for c in columns)

    def has_column(self, column: str) -> bool:
        """True iff *column* exists in this table."""
        return column in self._positions

    def rows(self) -> List[Row]:
        """The row-tuple list (built and cached on demand; do not mutate)."""
        if self._rows is None:
            self._rows = self._store.rows()
        return self._rows

    def sorted_rows(self) -> List[Row]:
        """Rows in a deterministic total order."""
        return sorted(self.rows(), key=_row_key)

    def environment(self, row: Sequence[Value]) -> Dict[str, Value]:
        """An expression-evaluation environment for one row."""
        return dict(zip(self.columns, row))

    def iter_environments(self) -> Iterator[Dict[str, Value]]:
        """Environments for every row, in order."""
        for row in self.rows():
            yield dict(zip(self.columns, row))

    # -- core transformations ----------------------------------------------

    def take(self, indices: Iterable[int]) -> "Table":
        """Rows at the given positions, in order (zero-copy selection)."""
        return Table._trusted(self.columns, store=self.store().select(indices))

    def filter(self, predicate: Expression) -> "Table":
        """Rows where *predicate* evaluates truthy.

        Predicates built from comparisons and boolean connectives are
        compiled to positional accessors and evaluated over zipped
        slices of only the referenced columns; the surviving rows are
        returned as a zero-copy selection over this table's columns.
        """
        needed = tuple(predicate.columns())
        for col in needed:
            self.position(col)  # raise early on unknown columns
        from .expressions import compile_predicate

        fn = compile_predicate(predicate, needed)
        if not needed:
            # Constant predicate: one evaluation decides all rows.
            if fn(()):
                return self
            return Table._trusted(self.columns, store=self.store().select([]))
        cols = [self.column(c) for c in needed]
        if len(cols) == 1:
            col = cols[0]
            sel = [i for i, v in enumerate(col) if fn((v,))]
        else:
            sel = [i for i, vals in enumerate(zip(*cols)) if fn(vals)]
        return Table._trusted(self.columns, store=self.store().select(sel))

    def filter_rows(self, fn: Callable[[Environment], bool]) -> "Table":
        """Rows where the Python callable *fn* (on the env dict) is true."""
        columns = self.columns
        out = [
            row for row in self.rows() if fn(dict(zip(columns, row)))
        ]
        return Table._trusted(self.columns, rows=out)

    def project(self, columns: Sequence[str], distinct: bool = False) -> "Table":
        """Keep only *columns* (bag projection unless ``distinct``).

        A bag projection is zero-copy (shared column lists); distinct
        projections materialize the surviving key tuples.
        """
        pos = self.positions(columns)
        if not distinct:
            return Table._trusted(columns, store=self.store().project(pos))
        if pos:
            cols = [self.store().column(i) for i in pos]
            rows = _stable_unique(zip(*cols))
        else:
            rows = _stable_unique(() for _ in range(len(self)))
        return Table._trusted(columns, rows=list(rows))

    def rename(self, mapping: Dict[str, str]) -> "Table":
        """Rename columns according to *mapping* (missing keys kept)."""
        new_cols = [mapping.get(c, c) for c in self.columns]
        if len(set(new_cols)) != len(new_cols):
            raise QueryError(f"duplicate column names in table: {new_cols}")
        return Table._trusted(new_cols, rows=self._rows, store=self._store)

    def extend(self, column: str, expr: Expression) -> "Table":
        """Append a computed column (evaluated over referenced columns)."""
        if column in self._positions:
            raise QueryError(f"column {column!r} already exists")
        needed = tuple(expr.columns())
        for col in needed:
            self.position(col)
        n = len(self)
        if not needed:
            value = expr.evaluate({})
            new_col: List[Value] = [value] * n
        else:
            cols = [self.column(c) for c in needed]
            new_col = [
                expr.evaluate(dict(zip(needed, vals)))
                for vals in zip(*cols)
            ]
        return Table._trusted(
            list(self.columns) + [column],
            store=self.store().with_column(new_col),
        )

    def distinct(self) -> "Table":
        """Duplicate elimination (stable: first occurrence order kept)."""
        return Table._trusted(
            self.columns, rows=list(_stable_unique(self.rows()))
        )

    def union(self, other: "Table") -> "Table":
        """Bag union; columns must match exactly."""
        self._check_compatible(other)
        return Table._trusted(self.columns, rows=self.rows() + other.rows())

    def difference(self, other: "Table") -> "Table":
        """Set difference (rows of self not present in other)."""
        self._check_compatible(other)
        drop = set(other.rows())
        return Table._trusted(
            self.columns, rows=[r for r in self.rows() if r not in drop]
        )

    def intersect(self, other: "Table") -> "Table":
        """Set intersection."""
        self._check_compatible(other)
        keep = set(other.rows())
        return Table._trusted(
            self.columns,
            rows=list(_stable_unique(r for r in self.rows() if r in keep)),
        )

    def order_by(
        self,
        columns: Sequence[str],
        descending: bool = False,
    ) -> "Table":
        """Sort rows by *columns* using the engine's total order."""
        pos = self.positions(columns)

        def key(row: Row) -> Tuple:
            return tuple(sort_key(row[i]) for i in pos)

        return Table._trusted(
            self.columns,
            rows=sorted(self.rows(), key=key, reverse=descending),
        )

    def limit(self, n: int) -> "Table":
        """First *n* rows."""
        return Table._trusted(self.columns, rows=self.rows()[:n])

    def row_set(self) -> Set[Row]:
        """Rows as a set (for containment checks)."""
        return set(self.rows())

    def index_on(self, columns: Sequence[str]) -> Dict[Row, List[Row]]:
        """Hash index over *columns*; rows with NULL keys excluded."""
        pos = self.positions(columns)
        index: Dict[Row, List[Row]] = {}
        for row in self.rows():
            key = tuple(row[i] for i in pos)
            if any(is_null(v) for v in key):
                continue
            index.setdefault(key, []).append(row)
        return index

    def index_positions(self, columns: Sequence[str]) -> Dict[Row, List[int]]:
        """Hash index mapping key tuples to *row positions*.

        The columnar counterpart of :meth:`index_on`: build once from
        column slices, gather matching rows by position afterwards.
        Rows with NULL keys are excluded (they never equi-join).
        """
        pos = self.positions(columns)
        index: Dict[Row, List[int]] = {}
        if not pos:
            n = len(self)
            return {(): list(range(n))} if n else {}
        cols = [self.store().column(i) for i in pos]
        for i, key in enumerate(zip(*cols)):
            if any(is_null(v) for v in key):
                continue
            index.setdefault(key, []).append(i)
        return index

    def column_values(self, column: str, distinct: bool = True) -> List[Value]:
        """Values of one column (distinct & non-null by default)."""
        values = self.column(column)
        if distinct:
            return list(
                _stable_unique(v for v in values if not is_null(v))
            )
        return list(values)

    # -- helpers -------------------------------------------------------------

    def _check_compatible(self, other: "Table") -> None:
        if self.columns != other.columns:
            raise QueryError(
                f"incompatible tables: {self.columns} vs {other.columns}"
            )

    def pretty(self, limit: int = 20) -> str:
        """A fixed-width rendering for debugging and examples."""
        headers = list(self.columns)
        body = [[repr(v) for v in row] for row in self.rows()[:limit]]
        widths = [
            max(len(h), *(len(r[i]) for r in body)) if body else len(h)
            for i, h in enumerate(headers)
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in body
        )
        if len(self) > limit:
            lines.append(f"... ({len(self) - limit} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Table({list(self.columns)}, {len(self)} rows)"


def _row_key(row: Row):
    return tuple(sort_key(v) for v in row)


def _stable_unique(rows: Iterable) -> Iterator:
    seen = set()
    for row in rows:
        if row not in seen:
            seen.add(row)
            yield row
