"""Lightweight result tables for intermediate query processing.

:class:`~repro.engine.relation.Relation` is the durable, schema'd,
PK-enforcing store.  Query *results* — joins, projections, group-bys,
cubes — have none of those constraints: they are bags/sets of rows
under a flat list of (possibly qualified) column names.  :class:`Table`
is that result type.  All relational operators in
:mod:`repro.engine.operators`, :mod:`repro.engine.joins`,
:mod:`repro.engine.groupby` and :mod:`repro.engine.cube` consume and
produce Tables.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import QueryError
from .expressions import Environment, Expression
from .relation import Relation
from .types import Row, Value, is_null, sort_key


class Table:
    """An ordered list of rows under named columns.

    Tables are bags by default (duplicates preserved); :meth:`distinct`
    converts to a set.  Column names must be unique within a table;
    joins qualify clashing names with the source prefix.
    """

    __slots__ = ("columns", "_rows", "_positions")

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[Value]] = ()):
        self.columns: Tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise QueryError(f"duplicate column names in table: {self.columns}")
        self._positions: Dict[str, int] = {
            c: i for i, c in enumerate(self.columns)
        }
        self._rows: List[Row] = [tuple(r) for r in rows]
        for row in self._rows:
            if len(row) != len(self.columns):
                raise QueryError(
                    f"row arity {len(row)} != column count {len(self.columns)}"
                )

    # -- construction ----------------------------------------------------

    @classmethod
    def from_relation(cls, relation: Relation, qualify: bool = False) -> "Table":
        """Materialize a relation as a table.

        With ``qualify=True`` column names become ``Relation.attr``,
        which is the convention used throughout the explanation
        pipeline (universal-relation columns are always qualified).
        """
        if qualify:
            cols = [
                f"{relation.name}.{a}" for a in relation.schema.attribute_names
            ]
        else:
            cols = list(relation.schema.attribute_names)
        return cls(cols, relation.rows())

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Table":
        """An empty table with the given columns."""
        return cls(columns, ())

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.columns == other.columns and sorted(
            self._rows, key=_row_key
        ) == sorted(other._rows, key=_row_key)

    def position(self, column: str) -> int:
        """Index of *column* in the row tuples."""
        try:
            return self._positions[column]
        except KeyError:
            raise QueryError(
                f"table has no column {column!r}; columns are {self.columns}"
            ) from None

    def positions(self, columns: Sequence[str]) -> Tuple[int, ...]:
        """Indexes of several columns, in the given order."""
        return tuple(self.position(c) for c in columns)

    def has_column(self, column: str) -> bool:
        """True iff *column* exists in this table."""
        return column in self._positions

    def rows(self) -> List[Row]:
        """The underlying row list (do not mutate)."""
        return self._rows

    def sorted_rows(self) -> List[Row]:
        """Rows in a deterministic total order."""
        return sorted(self._rows, key=_row_key)

    def environment(self, row: Sequence[Value]) -> Dict[str, Value]:
        """An expression-evaluation environment for one row."""
        return dict(zip(self.columns, row))

    def iter_environments(self) -> Iterator[Dict[str, Value]]:
        """Environments for every row, in order."""
        for row in self._rows:
            yield dict(zip(self.columns, row))

    # -- core transformations ----------------------------------------------

    def filter(self, predicate: Expression) -> "Table":
        """Rows where *predicate* evaluates truthy.

        Predicates built from comparisons and boolean connectives are
        compiled to positional accessors (no per-row dict), which is
        what keeps universal-table filters fast at benchmark scale.
        """
        needed = predicate.columns()
        for col in needed:
            self.position(col)  # raise early on unknown columns
        from .expressions import compile_predicate

        fn = compile_predicate(predicate, self.columns)
        out = [row for row in self._rows if fn(row)]
        return Table(self.columns, out)

    def filter_rows(self, fn: Callable[[Environment], bool]) -> "Table":
        """Rows where the Python callable *fn* (on the env dict) is true."""
        out = [
            row for row in self._rows if fn(dict(zip(self.columns, row)))
        ]
        return Table(self.columns, out)

    def project(self, columns: Sequence[str], distinct: bool = False) -> "Table":
        """Keep only *columns* (bag projection unless ``distinct``)."""
        pos = self.positions(columns)
        rows: Iterable[Row] = (tuple(r[i] for i in pos) for r in self._rows)
        if distinct:
            rows = _stable_unique(rows)
        return Table(columns, rows)

    def rename(self, mapping: Dict[str, str]) -> "Table":
        """Rename columns according to *mapping* (missing keys kept)."""
        new_cols = [mapping.get(c, c) for c in self.columns]
        return Table(new_cols, self._rows)

    def extend(self, column: str, expr: Expression) -> "Table":
        """Append a computed column."""
        if column in self._positions:
            raise QueryError(f"column {column!r} already exists")
        new_rows = [
            row + (expr.evaluate(dict(zip(self.columns, row))),)
            for row in self._rows
        ]
        return Table(list(self.columns) + [column], new_rows)

    def distinct(self) -> "Table":
        """Duplicate elimination (stable: first occurrence order kept)."""
        return Table(self.columns, _stable_unique(self._rows))

    def union(self, other: "Table") -> "Table":
        """Bag union; columns must match exactly."""
        self._check_compatible(other)
        return Table(self.columns, self._rows + other._rows)

    def difference(self, other: "Table") -> "Table":
        """Set difference (rows of self not present in other)."""
        self._check_compatible(other)
        drop = set(other._rows)
        return Table(self.columns, (r for r in self._rows if r not in drop))

    def intersect(self, other: "Table") -> "Table":
        """Set intersection."""
        self._check_compatible(other)
        keep = set(other._rows)
        return Table(
            self.columns, _stable_unique(r for r in self._rows if r in keep)
        )

    def order_by(
        self,
        columns: Sequence[str],
        descending: bool = False,
    ) -> "Table":
        """Sort rows by *columns* using the engine's total order."""
        pos = self.positions(columns)
        key = lambda row: tuple(sort_key(row[i]) for i in pos)
        return Table(
            self.columns, sorted(self._rows, key=key, reverse=descending)
        )

    def limit(self, n: int) -> "Table":
        """First *n* rows."""
        return Table(self.columns, self._rows[:n])

    def row_set(self) -> Set[Row]:
        """Rows as a set (for containment checks)."""
        return set(self._rows)

    def index_on(self, columns: Sequence[str]) -> Dict[Row, List[Row]]:
        """Hash index over *columns*; rows with NULL keys excluded."""
        pos = self.positions(columns)
        index: Dict[Row, List[Row]] = {}
        for row in self._rows:
            key = tuple(row[i] for i in pos)
            if any(is_null(v) for v in key):
                continue
            index.setdefault(key, []).append(row)
        return index

    def column_values(self, column: str, distinct: bool = True) -> List[Value]:
        """Values of one column (distinct & non-null by default)."""
        pos = self.position(column)
        values = (row[pos] for row in self._rows)
        if distinct:
            return list(
                _stable_unique(v for v in values if not is_null(v))
            )
        return list(values)

    # -- helpers -------------------------------------------------------------

    def _check_compatible(self, other: "Table") -> None:
        if self.columns != other.columns:
            raise QueryError(
                f"incompatible tables: {self.columns} vs {other.columns}"
            )

    def pretty(self, limit: int = 20) -> str:
        """A fixed-width rendering for debugging and examples."""
        headers = list(self.columns)
        body = [[repr(v) for v in row] for row in self._rows[:limit]]
        widths = [
            max(len(h), *(len(r[i]) for r in body)) if body else len(h)
            for i, h in enumerate(headers)
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in body
        )
        if len(self) > limit:
            lines.append(f"... ({len(self) - limit} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Table({list(self.columns)}, {len(self)} rows)"


def _row_key(row: Row):
    return tuple(sort_key(v) for v in row)


def _stable_unique(rows: Iterable) -> Iterator:
    seen = set()
    for row in rows:
        if row not in seen:
            seen.add(row)
            yield row
