"""``repro.engine`` — a from-scratch in-memory relational engine.

This package is the substrate the explanation framework runs on.  It
replaces the SQL Server instance of the paper's prototype with
equivalent relational machinery:

* typed relations with primary keys and hash indexes
  (:mod:`~repro.engine.relation`),
* schemas with standard and back-and-forth foreign keys
  (:mod:`~repro.engine.schema`),
* hash joins, semijoins, antijoins and full outer joins
  (:mod:`~repro.engine.joins`),
* group-by and ``WITH CUBE`` (:mod:`~repro.engine.groupby`,
  :mod:`~repro.engine.cube`),
* the universal relation and the Yannakakis full reducer
  (:mod:`~repro.engine.universal`, :mod:`~repro.engine.reduction`),
* heap-based top-K (:mod:`~repro.engine.topk`).
"""

from .aggregates import (
    AGGREGATE_KINDS,
    AggregateSpec,
    agg_avg,
    agg_max,
    agg_min,
    agg_sum,
    count_distinct,
    count_star,
)
from .columnstore import ColumnStore

# The retained row-path oracles (cube_rowwise, cube_bruteforce,
# group_by_rowwise) are deliberately NOT re-exported: only benchmarks
# and the dedicated parity tests may import them, straight from their
# defining modules (enforced by tools/check_imports.py).
from .cube import (
    cube,
    dummy_rewrite,
    grouping_sets,
    undummy,
)
from .database import Database, Delta
from .expressions import (
    And,
    Arithmetic,
    Col,
    Comparison,
    Const,
    Expression,
    Not,
    Or,
    Unary,
    conj,
    disj,
    exp,
    lift,
    log,
    neg,
)
from .groupby import group_by, scalar_aggregate
from .joins import antijoin, full_outer_join, full_outer_join_many, hash_join, natural_join, semijoin
from .relation import Relation
from .schema import (
    Attribute,
    DatabaseSchema,
    ForeignKey,
    RelationSchema,
    foreign_key,
    make_schema,
    single_table_schema,
)
from .table import Table
from .topk import rank_of, top_1, top_k
from .types import DUMMY, NULL, Row, Value, is_dummy, is_missing, is_null
from .universal import JoinTree, project_universal, qualified_columns, universal_table
from .reduction import (
    database_is_reduced,
    is_semijoin_reduced,
    reduce_row_sets,
    semijoin_reduce,
)
from .storage import (
    load_database,
    load_schema,
    save_database,
    save_schema,
)
from . import fastpath, optimizer, plan

__all__ = [
    "AGGREGATE_KINDS",
    "AggregateSpec",
    "agg_avg",
    "agg_max",
    "agg_min",
    "agg_sum",
    "count_distinct",
    "count_star",
    "ColumnStore",
    "cube",
    "dummy_rewrite",
    "grouping_sets",
    "undummy",
    "Database",
    "Delta",
    "And",
    "Arithmetic",
    "Col",
    "Comparison",
    "Const",
    "Expression",
    "Not",
    "Or",
    "Unary",
    "conj",
    "disj",
    "exp",
    "lift",
    "log",
    "neg",
    "group_by",
    "scalar_aggregate",
    "antijoin",
    "full_outer_join",
    "full_outer_join_many",
    "hash_join",
    "natural_join",
    "semijoin",
    "Relation",
    "Attribute",
    "DatabaseSchema",
    "ForeignKey",
    "RelationSchema",
    "foreign_key",
    "make_schema",
    "single_table_schema",
    "Table",
    "rank_of",
    "top_1",
    "top_k",
    "DUMMY",
    "NULL",
    "Row",
    "Value",
    "is_dummy",
    "is_missing",
    "is_null",
    "JoinTree",
    "project_universal",
    "qualified_columns",
    "universal_table",
    "database_is_reduced",
    "is_semijoin_reduced",
    "reduce_row_sets",
    "semijoin_reduce",
    "load_database",
    "load_schema",
    "save_database",
    "save_schema",
    "fastpath",
    "optimizer",
    "plan",
]
