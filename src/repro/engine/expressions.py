"""Scalar and boolean expression AST evaluated against named rows.

Expressions are evaluated against an *environment*: a mapping from
column names to values (a row of the universal relation, a cube row,
or a joined row).  The AST supports the numeric operators the paper
allows in numerical query expressions ``E`` (``+ - * / log exp``,
Eq. (1)) plus comparisons and boolean connectives used by candidate
explanation predicates.

NULL propagates through arithmetic (any NULL operand yields NULL) and
makes comparisons false, mirroring SQL three-valued logic collapsed to
two values (UNKNOWN is treated as false at filter boundaries, which is
the only place the engine consumes booleans).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple, Union

from ..errors import QueryError
from .types import (
    NULL,
    Value,
    is_null,
    sql_eq,
    sql_ge,
    sql_gt,
    sql_le,
    sql_lt,
    sql_ne,
)

Environment = Mapping[str, Value]


class Expression:
    """Base class for all expression nodes."""

    def evaluate(self, env: Environment) -> Value:
        """Evaluate this expression against *env*."""
        raise NotImplementedError

    def columns(self) -> Tuple[str, ...]:
        """All column names referenced by this expression."""
        raise NotImplementedError

    # Operator sugar so expressions compose naturally: Col("x") + 1 etc.
    def __add__(self, other: "ExpressionLike") -> "Arithmetic":
        return Arithmetic("+", self, lift(other))

    def __radd__(self, other: "ExpressionLike") -> "Arithmetic":
        return Arithmetic("+", lift(other), self)

    def __sub__(self, other: "ExpressionLike") -> "Arithmetic":
        return Arithmetic("-", self, lift(other))

    def __rsub__(self, other: "ExpressionLike") -> "Arithmetic":
        return Arithmetic("-", lift(other), self)

    def __mul__(self, other: "ExpressionLike") -> "Arithmetic":
        return Arithmetic("*", self, lift(other))

    def __rmul__(self, other: "ExpressionLike") -> "Arithmetic":
        return Arithmetic("*", lift(other), self)

    def __truediv__(self, other: "ExpressionLike") -> "Arithmetic":
        return Arithmetic("/", self, lift(other))

    def __rtruediv__(self, other: "ExpressionLike") -> "Arithmetic":
        return Arithmetic("/", lift(other), self)

    def eq(self, other: "ExpressionLike") -> "Comparison":
        """``self = other`` comparison node."""
        return Comparison("=", self, lift(other))

    def ne(self, other: "ExpressionLike") -> "Comparison":
        """``self <> other`` comparison node."""
        return Comparison("<>", self, lift(other))

    def lt(self, other: "ExpressionLike") -> "Comparison":
        """``self < other`` comparison node."""
        return Comparison("<", self, lift(other))

    def le(self, other: "ExpressionLike") -> "Comparison":
        """``self <= other`` comparison node."""
        return Comparison("<=", self, lift(other))

    def gt(self, other: "ExpressionLike") -> "Comparison":
        """``self > other`` comparison node."""
        return Comparison(">", self, lift(other))

    def ge(self, other: "ExpressionLike") -> "Comparison":
        """``self >= other`` comparison node."""
        return Comparison(">=", self, lift(other))


ExpressionLike = Union[Expression, int, float, str, bool]


def lift(value: ExpressionLike) -> Expression:
    """Wrap a plain Python value into a :class:`Const` node."""
    if isinstance(value, Expression):
        return value
    return Const(value)


@dataclass(frozen=True)
class Const(Expression):
    """A literal constant."""

    value: Value

    def evaluate(self, env: Environment) -> Value:
        return self.value

    def columns(self) -> Tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Col(Expression):
    """A reference to a named column of the environment row."""

    name: str

    def evaluate(self, env: Environment) -> Value:
        try:
            return env[self.name]
        except KeyError:
            raise QueryError(f"unknown column {self.name!r} in expression") from None

    def columns(self) -> Tuple[str, ...]:
        return (self.name,)

    def __str__(self) -> str:
        return self.name


_ARITH_OPS: Dict[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


@dataclass(frozen=True)
class Arithmetic(Expression):
    """A binary arithmetic node (+, -, *, /).

    Division follows the paper's experimental setup: the evaluation
    section adds a small epsilon to counts to avoid division by zero,
    so callers who want that behaviour add the epsilon explicitly;
    the raw operator returns ``float('inf')`` (matching the paper's
    reported "infinity" aggravation degrees) when dividing a positive
    number by zero, and NULL for 0/0.
    """

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise QueryError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, env: Environment) -> Value:
        a = self.left.evaluate(env)
        b = self.right.evaluate(env)
        if is_null(a) or is_null(b):
            return NULL
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            raise QueryError(
                f"arithmetic {self.op} on non-numeric values {a!r}, {b!r}"
            )
        if self.op == "/":
            if b == 0:
                if a == 0:
                    return NULL
                return math.inf if a > 0 else -math.inf
            return a / b
        return _ARITH_OPS[self.op](a, b)

    def columns(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(self.left.columns() + self.right.columns()))

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Unary(Expression):
    """A unary function node: ``-x``, ``log(x)``, ``exp(x)``, ``abs(x)``."""

    op: str
    operand: Expression

    def __post_init__(self) -> None:
        if self.op not in ("neg", "log", "exp", "abs"):
            raise QueryError(f"unknown unary operator {self.op!r}")

    def evaluate(self, env: Environment) -> Value:
        v = self.operand.evaluate(env)
        if is_null(v):
            return NULL
        if not isinstance(v, (int, float)):
            raise QueryError(f"unary {self.op} on non-numeric value {v!r}")
        if self.op == "neg":
            return -v
        if self.op == "abs":
            return abs(v)
        if self.op == "exp":
            return math.exp(v)
        # log: NULL for non-positive arguments (SQL would error; the
        # explanation ranking treats undefined degrees as missing).
        if v <= 0:
            return NULL
        return math.log(v)

    def columns(self) -> Tuple[str, ...]:
        return self.operand.columns()

    def __str__(self) -> str:
        if self.op == "neg":
            return f"(-{self.operand})"
        return f"{self.op}({self.operand})"


def neg(expr: ExpressionLike) -> Unary:
    """Arithmetic negation node."""
    return Unary("neg", lift(expr))


def log(expr: ExpressionLike) -> Unary:
    """Natural logarithm node (NULL on non-positive input)."""
    return Unary("log", lift(expr))


def exp(expr: ExpressionLike) -> Unary:
    """Exponential node."""
    return Unary("exp", lift(expr))


_COMPARATORS: Dict[str, Callable[[Value, Value], bool]] = {
    "=": sql_eq,
    "<>": sql_ne,
    "!=": sql_ne,
    "<": sql_lt,
    "<=": sql_le,
    ">": sql_gt,
    ">=": sql_ge,
}

COMPARISON_OPS = tuple(_COMPARATORS)


@dataclass(frozen=True)
class Comparison(Expression):
    """A comparison node producing a boolean (NULL-safe: NULL -> False)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, env: Environment) -> bool:
        return _COMPARATORS[self.op](
            self.left.evaluate(env), self.right.evaluate(env)
        )

    def columns(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(self.left.columns() + self.right.columns()))

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Expression):
    """Boolean conjunction over any number of operands (empty = True)."""

    operands: Tuple[Expression, ...]

    def evaluate(self, env: Environment) -> bool:
        return all(op.evaluate(env) for op in self.operands)

    def columns(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for op in self.operands:
            for c in op.columns():
                seen.setdefault(c)
        return tuple(seen)

    def __str__(self) -> str:
        if not self.operands:
            return "TRUE"
        return " AND ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class Or(Expression):
    """Boolean disjunction over any number of operands (empty = False)."""

    operands: Tuple[Expression, ...]

    def evaluate(self, env: Environment) -> bool:
        return any(op.evaluate(env) for op in self.operands)

    def columns(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for op in self.operands:
            for c in op.columns():
                seen.setdefault(c)
        return tuple(seen)

    def __str__(self) -> str:
        if not self.operands:
            return "FALSE"
        return " OR ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class Not(Expression):
    """Boolean negation."""

    operand: Expression

    def evaluate(self, env: Environment) -> bool:
        return not self.operand.evaluate(env)

    def columns(self) -> Tuple[str, ...]:
        return self.operand.columns()

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


def conj(*operands: Expression) -> Expression:
    """Conjunction helper that flattens nested Ands."""
    flat = []
    for op in operands:
        if isinstance(op, And):
            flat.extend(op.operands)
        else:
            flat.append(op)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*operands: Expression) -> Expression:
    """Disjunction helper that flattens nested Ors."""
    flat = []
    for op in operands:
        if isinstance(op, Or):
            flat.extend(op.operands)
        else:
            flat.append(op)
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def row_environment(columns: Sequence[str], row: Sequence[Value]) -> Dict[str, Value]:
    """Build an evaluation environment from parallel column/value lists."""
    return dict(zip(columns, row))


def compile_predicate(expr: Expression, columns: Sequence[str]):
    """Compile a boolean expression into a fast ``row -> bool`` callable.

    Column references become direct positional accesses, avoiding the
    per-row environment dict that :meth:`Expression.evaluate` needs.
    Supported nodes: :class:`Comparison` over :class:`Col`/:class:`Const`
    operands, :class:`And`, :class:`Or`, :class:`Not`.  Anything else
    falls back to environment-based evaluation (still correct, just
    slower).  Raises :class:`~repro.errors.QueryError` for unknown
    columns, like the interpreted path.
    """
    positions = {c: i for i, c in enumerate(columns)}

    def fallback(node: Expression):
        cols = list(columns)
        return lambda row: node.evaluate(dict(zip(cols, row)))

    def build(node: Expression):
        if isinstance(node, Comparison):
            op = _COMPARATORS[node.op]
            left, right = node.left, node.right
            if isinstance(left, Col) and isinstance(right, Const):
                if left.name not in positions:
                    raise QueryError(
                        f"unknown column {left.name!r} in expression"
                    )
                i = positions[left.name]
                c = right.value
                return lambda row: op(row[i], c)
            if isinstance(left, Const) and isinstance(right, Col):
                if right.name not in positions:
                    raise QueryError(
                        f"unknown column {right.name!r} in expression"
                    )
                i = positions[right.name]
                c = left.value
                return lambda row: op(c, row[i])
            if isinstance(left, Col) and isinstance(right, Col):
                for name in (left.name, right.name):
                    if name not in positions:
                        raise QueryError(
                            f"unknown column {name!r} in expression"
                        )
                i, j = positions[left.name], positions[right.name]
                return lambda row: op(row[i], row[j])
            return fallback(node)
        if isinstance(node, And):
            parts = [build(op_) for op_ in node.operands]
            if not parts:
                return lambda row: True
            return lambda row: all(p(row) for p in parts)
        if isinstance(node, Or):
            parts = [build(op_) for op_ in node.operands]
            if not parts:
                return lambda row: False
            return lambda row: any(p(row) for p in parts)
        if isinstance(node, Not):
            inner = build(node.operand)
            return lambda row: not inner(row)
        return fallback(node)

    return build(expr)
