"""Value domain and NULL semantics for the in-memory relational engine.

The engine stores plain Python values (``int``, ``float``, ``str``,
``bool``) plus a dedicated :data:`NULL` marker with SQL-like semantics.
Two different null flavours appear in the system:

* :data:`NULL` — the ordinary SQL null: unknown value.  Comparisons
  involving it are never true, and it never equi-joins with anything,
  including itself.  Cube rows use it to mark "don't care" attributes.
* :data:`DUMMY` — the dummy constant from Section 4.2 of the paper.
  Before the full outer join of the per-aggregate cubes, every
  :data:`NULL` in a grouping column is rewritten to :data:`DUMMY` so a
  plain equi-join can be used.  :data:`DUMMY` compares equal to itself
  and sorts *above* every regular value (the Minimal-append strategy in
  Section 4.3 relies on the dummy being larger than all valid values).

Both markers are singletons, so identity checks (``value is NULL``) are
safe, but :func:`is_null` / :func:`is_dummy` read better in call sites.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Any, Iterable, Tuple, Union


class _Null:
    """Singleton SQL NULL.  Never equal to anything, including itself
    under SQL semantics; Python-level ``==`` is identity so the marker
    can live inside dict keys and sets (needed for hash joins that must
    *not* match nulls — those sites must check :func:`is_null` first).
    """

    _instance = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __deepcopy__(self, memo: dict) -> "_Null":
        return self

    def __copy__(self) -> "_Null":
        return self


@total_ordering
class _Dummy:
    """Singleton dummy constant (Section 4.2/4.3).

    Equal only to itself; strictly greater than every other value so
    that ``ORDER BY`` places dummy-padded explanations after real ones,
    which is what gives Minimal-append its preference for shorter
    explanations.
    """

    _instance = None

    def __new__(cls) -> "_Dummy":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "DUMMY"

    def __eq__(self, other: Any) -> bool:
        return other is self

    def __hash__(self) -> int:
        return hash("__repro_dummy__")

    def __lt__(self, other: Any) -> bool:
        # DUMMY is the maximum of the value domain: never less than
        # anything except... nothing.
        return False

    def __deepcopy__(self, memo: dict) -> "_Dummy":
        return self

    def __copy__(self) -> "_Dummy":
        return self


NULL = _Null()
DUMMY = _Dummy()

#: The Python types a regular (non-null) engine value may have.
Value = Union[int, float, str, bool, _Null, _Dummy]

#: A row is an immutable tuple of values.
Row = Tuple[Value, ...]


def is_null(value: Any) -> bool:
    """Return True iff *value* is the engine NULL marker."""
    return value is NULL


def is_dummy(value: Any) -> bool:
    """Return True iff *value* is the engine DUMMY marker."""
    return value is DUMMY


def is_missing(value: Any) -> bool:
    """Return True iff *value* is NULL or DUMMY (no real data)."""
    return value is NULL or value is DUMMY


def null_to_dummy(row: Iterable[Value]) -> Row:
    """Rewrite every NULL in *row* to DUMMY (Section 4.2 optimization)."""
    return tuple(DUMMY if v is NULL else v for v in row)


def dummy_to_null(row: Iterable[Value]) -> Row:
    """Inverse of :func:`null_to_dummy`, for presenting results."""
    return tuple(NULL if v is DUMMY else v for v in row)


def sql_eq(a: Value, b: Value) -> bool:
    """SQL equality: NULL = anything is false (even NULL = NULL)."""
    if a is NULL or b is NULL:
        return False
    return a == b


_TYPE_ORDER = {bool: 0, int: 1, float: 1, str: 2}


def _rank(value: Value) -> int:
    if value is DUMMY:
        return 3
    return _TYPE_ORDER.get(type(value), 2)


def sort_key(value: Value) -> Tuple[int, Any]:
    """A total-order key over the heterogeneous value domain.

    NULL sorts first, then booleans, then numbers, then strings, then
    DUMMY last.  Used by ORDER BY and by deterministic tie-breaking in
    top-K queries.
    """
    if value is NULL:
        return (-1, 0)
    rank = _rank(value)
    if value is DUMMY:
        return (rank, 0)
    if isinstance(value, bool):
        return (rank, int(value))
    return (rank, value)


def sql_lt(a: Value, b: Value) -> bool:
    """SQL '<': false whenever either side is NULL; DUMMY is maximal."""
    if a is NULL or b is NULL:
        return False
    if a is DUMMY:
        return False
    if b is DUMMY:
        return True
    try:
        return a < b
    except TypeError:
        return sort_key(a) < sort_key(b)


def sql_le(a: Value, b: Value) -> bool:
    """SQL '<=': false whenever either side is NULL."""
    if a is NULL or b is NULL:
        return False
    return sql_eq(a, b) or sql_lt(a, b)


def sql_gt(a: Value, b: Value) -> bool:
    """SQL '>': false whenever either side is NULL."""
    if a is NULL or b is NULL:
        return False
    return sql_lt(b, a)


def sql_ge(a: Value, b: Value) -> bool:
    """SQL '>=': false whenever either side is NULL."""
    if a is NULL or b is NULL:
        return False
    return sql_eq(a, b) or sql_lt(b, a)


def sql_ne(a: Value, b: Value) -> bool:
    """SQL '<>': false whenever either side is NULL."""
    if a is NULL or b is NULL:
        return False
    return not sql_eq(a, b)
