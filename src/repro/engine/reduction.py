"""Semijoin reduction (the Yannakakis full reducer) for acyclic schemas.

A database is *semijoin-reduced* (the paper's term; "globally
consistent" in [Abiteboul-Hull-Vianu]) when every tuple of every
relation participates in at least one universal tuple:
``R_i = Π_{A_i}(U(D))`` for all i.  For an acyclic join tree the
classic two-pass semijoin program achieves this:

1. bottom-up: for each edge (child, parent), ``parent ⋉ child``;
2. top-down:  for each edge (child, parent), ``child ⋉ parent``.

Rule (ii) of the paper's recursive program **P** is exactly this
reduction applied to ``R_i - Δ_i``, so the fixpoint loop in
:mod:`repro.core.intervention` calls :func:`reduce_row_sets` on plain
row-set dictionaries for speed, while :func:`semijoin_reduce` offers
the same service at the :class:`Database` level.

Cyclic schemas (``require_acyclic=False``; TPC-H's partsupp diamond)
add the join tree's :attr:`~repro.engine.universal.JoinTree.residual_edges`
as extra semijoin pairs and iterate all passes to a fixpoint, because
one sweep no longer guarantees pairwise consistency.  Removal-only
semijoins are confluent, so the fixpoint is order-independent and
deterministic.  Note that for a cyclic join graph pairwise consistency
is necessary but not sufficient for global consistency; program P's
rule (i) restores the global property by seeding every tuple outside
``Π_{A_i}(σ_{¬φ} U(D))`` directly.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from .database import Database, Delta
from .schema import DatabaseSchema, ForeignKey
from .types import Row
from .universal import JoinTree

RowSets = Dict[str, Set[Row]]


def _semijoin_in_place(
    schema: DatabaseSchema,
    rowsets: RowSets,
    keep: str,
    keep_attrs: Sequence[str],
    probe: str,
    probe_attrs: Sequence[str],
) -> bool:
    """``rowsets[keep] ⋉ rowsets[probe]`` in place; True if rows dropped."""
    keep_pos = schema.relation(keep).indexes_of(keep_attrs)
    probe_pos = schema.relation(probe).indexes_of(probe_attrs)
    probe_keys = {
        tuple(row[i] for i in probe_pos) for row in rowsets[probe]
    }
    survivors = {
        row
        for row in rowsets[keep]
        if tuple(row[i] for i in keep_pos) in probe_keys
    }
    changed = len(survivors) != len(rowsets[keep])
    rowsets[keep] = survivors
    return changed


def _edge_attrs(
    fk: ForeignKey, side: str
) -> Tuple[str, ...]:
    """The join attributes of *fk* on relation *side*."""
    return fk.source_attrs if side == fk.source else fk.target_attrs


def reduce_row_sets(
    schema: DatabaseSchema,
    rowsets: RowSets,
    join_tree: Optional[JoinTree] = None,
) -> RowSets:
    """Full reducer over plain per-relation row sets (in place).

    Returns the same dict for convenience.  After the call, for every
    foreign-key edge both sides agree on their join values, which for
    an acyclic schema implies global consistency.
    """
    tree = join_tree or JoinTree(schema)

    def sweep() -> bool:
        changed = False
        for child, parent, fk in tree.bottom_up_edges():
            changed |= _semijoin_in_place(
                schema,
                rowsets,
                parent,
                _edge_attrs(fk, parent),
                child,
                _edge_attrs(fk, child),
            )
        for child, parent, fk in tree.top_down_edges():
            changed |= _semijoin_in_place(
                schema,
                rowsets,
                child,
                _edge_attrs(fk, child),
                parent,
                _edge_attrs(fk, parent),
            )
        for fk in tree.residual_edges:
            changed |= _semijoin_in_place(
                schema,
                rowsets,
                fk.source,
                _edge_attrs(fk, fk.source),
                fk.target,
                _edge_attrs(fk, fk.target),
            )
            changed |= _semijoin_in_place(
                schema,
                rowsets,
                fk.target,
                _edge_attrs(fk, fk.target),
                fk.source,
                _edge_attrs(fk, fk.source),
            )
        return changed

    if not tree.residual_edges:
        sweep()  # one Yannakakis double pass fully reduces a tree
        return rowsets
    while sweep():
        pass
    return rowsets


def is_semijoin_reduced(
    schema: DatabaseSchema,
    rowsets: RowSets,
    join_tree: Optional[JoinTree] = None,
) -> bool:
    """True iff running the full reducer would drop no tuple."""
    probe = {name: set(rows) for name, rows in rowsets.items()}
    reduce_row_sets(schema, probe, join_tree)
    return all(probe[name] == set(rowsets[name]) for name in rowsets)


def semijoin_reduce(
    database: Database, join_tree: Optional[JoinTree] = None
) -> Tuple[Database, Delta]:
    """Reduce a database; returns (reduced database, removed tuples).

    The removed tuples are the *dangling* tuples that participate in no
    universal tuple.  The input database is not modified.
    """
    rowsets: RowSets = {
        name: set(rel.rows()) for name, rel in database.relations.items()
    }
    original = {name: set(rows) for name, rows in rowsets.items()}
    reduce_row_sets(database.schema, rowsets, join_tree)
    removed = Delta(
        database.schema,
        {name: original[name] - rowsets[name] for name in rowsets},
    )
    reduced = Database(database.schema)
    for name, rows in rowsets.items():
        reduced.relations[name].insert_many(rows)
    return reduced, removed


def database_is_reduced(
    database: Database, join_tree: Optional[JoinTree] = None
) -> bool:
    """True iff *database* is already semijoin-reduced."""
    rowsets: RowSets = {
        name: set(rel.rows()) for name, rel in database.relations.items()
    }
    return is_semijoin_reduced(database.schema, rowsets, join_tree)
