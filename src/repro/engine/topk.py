"""Top-K selection over tables (``ORDER BY ... LIMIT K``).

A heap-based top-K avoids sorting the whole table; ties are broken by
the full row under the engine's deterministic total order, so results
are reproducible run to run.  This is the building block for the three
top-K explanation strategies of Section 4.3.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..errors import QueryError
from .table import Table
from .types import Row, Value, is_missing, sort_key


def top_k(
    table: Table,
    by: str,
    k: int,
    *,
    descending: bool = True,
    drop_missing: bool = True,
) -> Table:
    """The *k* rows with the largest (or smallest) values of column *by*.

    Rows whose ranking value is NULL or DUMMY are excluded when
    ``drop_missing`` (explanations with undefined degree cannot be
    ranked).  Ties are resolved by comparing entire rows, which makes
    the output deterministic.
    """
    if k < 0:
        raise QueryError(f"top_k needs k >= 0, got {k}")
    pos = table.position(by)
    rows = table.rows()
    if drop_missing:
        rows = [r for r in rows if not is_missing(r[pos])]

    def key(row: Row):
        return (sort_key(row[pos]),) + tuple(sort_key(v) for v in row)

    if descending:
        chosen = heapq.nlargest(k, rows, key=key)
    else:
        chosen = heapq.nsmallest(k, rows, key=key)
    return Table(table.columns, chosen)


def top_1(
    table: Table,
    by: str,
    *,
    descending: bool = True,
    drop_missing: bool = True,
) -> Table:
    """The single best row (a 0- or 1-row table)."""
    return top_k(
        table, by, 1, descending=descending, drop_missing=drop_missing
    )


def rank_of(
    table: Table,
    by: str,
    row: Sequence[Value],
    *,
    descending: bool = True,
) -> int:
    """1-based rank of *row* in the ordering used by :func:`top_k`.

    Used in tests to check statements like "the 5th minimal explanation
    is the 14th unrestricted explanation" (Section 5.1.2).
    """
    pos = table.position(by)
    target = tuple(row)
    ordered = top_k(table, by, len(table), descending=descending)
    for i, r in enumerate(ordered.rows(), start=1):
        if r == target:
            return i
    raise QueryError("row not found in table while computing rank")
