"""The universal relation ``U(D) = R_1 ⋈ … ⋈ R_k`` (Section 2).

The foreign keys of an acyclic schema form a join tree over the
relations; :class:`JoinTree` materializes that tree once per schema and
is shared by the universal-relation computation here and the semijoin
reducer in :mod:`repro.engine.reduction`.

Schemas declared with ``require_acyclic=False`` may carry more foreign
keys than a tree needs (TPC-H's partsupp diamond closes a cycle
through lineitem–orders–customer–nation–supplier–partsupp).  The BFS
spanning tree still drives the join order; the left-over foreign keys
become :attr:`JoinTree.residual_edges` and are enforced as equality
filters on the assembled rows, so ``U(D)`` remains the natural join
over *all* declared keys, not just the spanning tree.

Universal-table columns are *qualified* (``Relation.attr``), matching
the paper's predicate syntax ``[R_i.A op c]``.  Join columns from both
sides are kept (e.g. both ``Authored.id`` and ``Author.id`` appear,
always equal within a row), so projecting a universal row onto any
relation's attribute set is a simple column selection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import SchemaError
from ..obs import phase
from .database import Database
from .schema import DatabaseSchema, ForeignKey
from .table import Table


class JoinTree:
    """The foreign-key join tree of an acyclic schema.

    Edges are the schema's foreign keys.  ``traversal_order`` is a BFS
    order from an arbitrary root; each entry after the first carries
    the foreign key linking the new relation to the already-joined
    part.
    """

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self.root = schema.relations[0].name
        adjacency: Dict[str, List[ForeignKey]] = {
            name: [] for name in schema.relation_names
        }
        for fk in schema.foreign_keys:
            adjacency[fk.source].append(fk)
            adjacency[fk.target].append(fk)
        order: List[Tuple[str, Optional[ForeignKey]]] = [(self.root, None)]
        seen: Set[str] = {self.root}
        frontier = [self.root]
        while frontier:
            node = frontier.pop(0)
            for fk in adjacency[node]:
                neighbour = fk.target if fk.source == node else fk.source
                if neighbour in seen:
                    continue
                seen.add(neighbour)
                order.append((neighbour, fk))
                frontier.append(neighbour)
        if len(order) != len(schema.relations):
            missing = sorted(set(schema.relation_names) - seen)
            raise SchemaError(f"join tree disconnected; unreachable: {missing}")
        self.traversal_order = order
        #: parent[r] = (parent relation, fk joining r to parent); root absent.
        self.parent: Dict[str, Tuple[str, ForeignKey]] = {}
        joined: Set[str] = {self.root}
        for name, fk in order[1:]:
            assert fk is not None
            other = fk.target if fk.source == name else fk.source
            self.parent[name] = (other, fk)
            joined.add(name)
        #: Foreign keys not used by the BFS spanning tree (cycle-closing
        #: edges of a ``require_acyclic=False`` schema).  Both endpoints
        #: are always in the tree, so these become row filters on the
        #: assembled universal table.  Empty for tree schemas.
        tree_fks = {id(fk) for _, fk in order[1:] if fk is not None}
        self.residual_edges: Tuple[ForeignKey, ...] = tuple(
            fk for fk in schema.foreign_keys if id(fk) not in tree_fks
        )

    def children_of(self, name: str) -> List[str]:
        """Direct children of *name* in the rooted tree."""
        return [n for n, (p, _) in self.parent.items() if p == name]

    def bottom_up_edges(self) -> List[Tuple[str, str, ForeignKey]]:
        """(child, parent, fk) triples, leaves first."""
        ordered = [name for name, _ in self.traversal_order]
        return [
            (name, self.parent[name][0], self.parent[name][1])
            for name in reversed(ordered)
            if name in self.parent
        ]

    def top_down_edges(self) -> List[Tuple[str, str, ForeignKey]]:
        """(child, parent, fk) triples, root's children first."""
        return list(reversed(self.bottom_up_edges()))


def qualified_columns(schema: DatabaseSchema, relation: str) -> List[str]:
    """``Relation.attr`` names for all attributes of *relation*."""
    rs = schema.relation(relation)
    return [f"{relation}.{a}" for a in rs.attribute_names]


def fk_join_columns(fk: ForeignKey, side: str) -> List[str]:
    """The qualified join columns contributed by one side of *fk*.

    ``side`` is the relation name; it must be the foreign key's source
    or target.
    """
    if side == fk.source:
        return [f"{fk.source}.{a}" for a in fk.source_attrs]
    if side == fk.target:
        return [f"{fk.target}.{a}" for a in fk.target_attrs]
    raise SchemaError(f"{side!r} is not a side of foreign key {fk}")


def universal_table(
    database: Database, join_tree: Optional[JoinTree] = None
) -> Table:
    """Materialize ``U(D)`` with qualified columns.

    Joins follow the join tree in BFS order; each step is a hash join
    on the linking foreign key's attribute lists.  For a single-table
    schema this is just the qualified table.
    """
    tree = join_tree or JoinTree(database.schema)
    with phase(
        "universal_table", relations=len(database.schema.relations)
    ) as ph:
        result: Optional[Table] = None
        for name, fk in tree.traversal_order:
            piece = Table.from_relation(
                database.relation(name), qualify=True
            )
            if result is None:
                result = piece
                continue
            assert fk is not None
            other = fk.target if fk.source == name else fk.source
            left_on = fk_join_columns(fk, other)
            right_on = fk_join_columns(fk, name)
            # 'other' is already inside result; keep all of piece's
            # columns (including its join columns, for projections onto
            # that relation) by renaming nothing and joining on the
            # equality.
            result = _join_keep_all(result, piece, left_on, right_on)
        assert result is not None
        for fk in tree.residual_edges:
            result = _filter_residual(result, fk)
        ph.annotate(rows=len(result))
    return result


def _filter_residual(table: Table, fk: ForeignKey) -> Table:
    """Keep rows satisfying a cycle-closing foreign key's equality.

    Both sides of *fk* are already joined in, so the constraint is a
    plain per-row comparison of the two qualified column tuples.
    """
    source_cols = [
        table.column(c) for c in fk_join_columns(fk, fk.source)
    ]
    target_cols = [
        table.column(c) for c in fk_join_columns(fk, fk.target)
    ]
    keep = [
        i
        for i in range(len(table))
        if all(s[i] == t[i] for s, t in zip(source_cols, target_cols))
    ]
    if len(keep) == len(table):
        return table
    data = [[col[i] for i in keep] for col in table.column_arrays()]
    return Table.from_columns(list(table.columns), data, nrows=len(keep))


def _join_keep_all(
    left: Table, right: Table, left_on: Sequence[str], right_on: Sequence[str]
) -> Table:
    """Hash join keeping *all* right columns (including join columns).

    Columnar: probe with zipped key columns, collect gather lists of
    matching row positions, then build each output column with one
    gather — the universal table is assembled without ever
    concatenating row tuples.
    """
    index = right.index_positions(right_on)
    out_columns = list(left.columns) + list(right.columns)
    left_key_cols = [left.column(c) for c in left_on]
    left_idx: List[int] = []
    right_idx: List[int] = []
    for i, key in enumerate(zip(*left_key_cols)):
        matches = index.get(key)
        if matches:
            for j in matches:
                left_idx.append(i)
                right_idx.append(j)
    data = [[col[i] for i in left_idx] for col in left.column_arrays()]
    data.extend(
        [col[j] for j in right_idx] for col in right.column_arrays()
    )
    return Table.from_columns(out_columns, data, nrows=len(left_idx))


def project_universal(
    universal: Table, schema: DatabaseSchema, relation: str
) -> Table:
    """``Π_{A_i}(U)`` — project the universal table onto one relation.

    Output columns are unqualified attribute names; duplicates are
    eliminated, so the result is exactly the semijoin-reduced relation
    content.
    """
    rs = schema.relation(relation)
    qualified = [f"{relation}.{a}" for a in rs.attribute_names]
    projected = universal.project(qualified, distinct=True)
    return projected.rename(dict(zip(qualified, rs.attribute_names)))
