"""Hash group-by over :class:`~repro.engine.table.Table`.

``group_by(table, keys, aggregates)`` produces one output row per
distinct combination of key values, with one extra column per
aggregate.  The cube operator (:mod:`repro.engine.cube`) reuses the
same grouping machinery for its single-pass rollup.

The operator is columnar: group membership is computed by zipping the
key columns once (a ``Counter`` when every aggregate is COUNT(*)), and
accumulators consume gathered argument-column slices instead of full
row tuples.  :func:`group_by_rowwise` preserves the original
row-at-a-time implementation as a test oracle and benchmark baseline.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

from ..errors import QueryError
from .aggregates import Accumulator, AggregateSpec
from .table import Table
from .types import Row, Value


def _validate(
    keys: Sequence[str], aggregates: Sequence[AggregateSpec]
) -> List[str]:
    if not aggregates:
        raise QueryError("group_by requires at least one aggregate")
    aliases = [a.alias for a in aggregates]
    if len(set(aliases)) != len(aliases):
        raise QueryError(f"duplicate aggregate aliases: {aliases}")
    clash = set(aliases) & set(keys)
    if clash:
        raise QueryError(f"aggregate aliases clash with keys: {sorted(clash)}")
    return aliases


def group_rows(table: Table, keys: Sequence[str]) -> Dict[Row, List[int]]:
    """Row positions of *table* grouped by the values of *keys*.

    Insertion order of the returned dict is first-occurrence order of
    each key.  With no keys, every row lands in the single ``()``
    group (empty when the table is empty).
    """
    n = len(table)
    if not keys:
        return {(): list(range(n))} if n else {}
    key_cols = [table.column(k) for k in keys]
    groups: Dict[Row, List[int]] = {}
    if len(key_cols) == 1:
        col = key_cols[0]
        for i in range(n):
            key = (col[i],)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [i]
            else:
                bucket.append(i)
        return groups
    for i, key in enumerate(zip(*key_cols)):
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [i]
        else:
            bucket.append(i)
    return groups


def accumulate_groups(
    table: Table,
    groups: Dict[Row, List[int]],
    aggregates: Sequence[AggregateSpec],
) -> Dict[Row, List[Accumulator]]:
    """Per-group accumulator lists fed from gathered column slices."""
    arg_cols: List[Optional[List[Value]]] = [
        table.column(a.argument) if a.argument is not None else None
        for a in aggregates
    ]
    out: Dict[Row, List[Accumulator]] = {}
    for key, indices in groups.items():
        accs = [a.make_accumulator() for a in aggregates]
        for acc, col in zip(accs, arg_cols):
            if col is None:
                acc.add_repeat(None, len(indices))
            else:
                acc.add_many(col[i] for i in indices)
        out[key] = accs
    return out


def group_by(
    table: Table,
    keys: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """Group *table* by *keys* and compute *aggregates* per group.

    With an empty key list the result is a single row of grand totals
    (even over an empty input, matching SQL's scalar aggregates).
    Aggregate aliases must not clash with key columns.
    """
    aliases = _validate(keys, aggregates)
    out_columns = list(keys) + aliases
    n_aggs = len(aggregates)

    if keys and all(a.kind == "count_star" for a in aggregates):
        # COUNT(*)-only fast path: a Counter over zipped key columns
        # replaces per-group accumulator objects entirely.
        key_cols = [table.column(k) for k in keys]
        counts = Counter(zip(*key_cols))
        out_rows = [
            key + (count,) * n_aggs for key, count in counts.items()
        ]
        return Table._trusted(out_columns, rows=out_rows)

    groups = group_rows(table, keys)
    states = accumulate_groups(table, groups, aggregates)
    if not keys and not states:
        # Scalar aggregate over empty input: one row of defaults.
        states[()] = [a.make_accumulator() for a in aggregates]
    out_rows = [
        key + tuple(acc.result() for acc in accs)
        for key, accs in states.items()
    ]
    return Table._trusted(out_columns, rows=out_rows)


def group_by_rowwise(
    table: Table,
    keys: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """The original row-at-a-time group-by (oracle/baseline).

    Semantically identical to :func:`group_by`; kept for property
    tests and the columnar-speedup benchmark.
    """
    aliases = _validate(keys, aggregates)

    key_pos = table.positions(keys)
    arg_pos: List[Optional[int]] = [
        table.position(a.argument) if a.argument is not None else None
        for a in aggregates
    ]

    groups: Dict[Row, List[Accumulator]] = {}
    for row in table.rows():
        key = tuple(row[i] for i in key_pos)
        accs = groups.get(key)
        if accs is None:
            accs = [a.make_accumulator() for a in aggregates]
            groups[key] = accs
        for acc, pos in zip(accs, arg_pos):
            acc.add(row[pos] if pos is not None else None)

    if not keys and not groups:
        groups[()] = [a.make_accumulator() for a in aggregates]

    out_columns = list(keys) + aliases
    out_rows = [
        key + tuple(acc.result() for acc in accs)
        for key, accs in groups.items()
    ]
    return Table(out_columns, out_rows)


def scalar_aggregate(table: Table, aggregate: AggregateSpec) -> Value:
    """A single aggregate over the whole table (no grouping)."""
    result = group_by(table, (), (aggregate,))
    return result.rows()[0][0]
