"""Hash group-by over :class:`~repro.engine.table.Table`.

``group_by(table, keys, aggregates)`` produces one output row per
distinct combination of key values, with one extra column per
aggregate.  The cube operator (:mod:`repro.engine.cube`) reuses this
for each grouping set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import QueryError
from .aggregates import Accumulator, AggregateSpec
from .table import Table
from .types import Row, Value


def group_by(
    table: Table,
    keys: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """Group *table* by *keys* and compute *aggregates* per group.

    With an empty key list the result is a single row of grand totals
    (even over an empty input, matching SQL's scalar aggregates).
    Aggregate aliases must not clash with key columns.
    """
    if not aggregates:
        raise QueryError("group_by requires at least one aggregate")
    aliases = [a.alias for a in aggregates]
    if len(set(aliases)) != len(aliases):
        raise QueryError(f"duplicate aggregate aliases: {aliases}")
    clash = set(aliases) & set(keys)
    if clash:
        raise QueryError(f"aggregate aliases clash with keys: {sorted(clash)}")

    key_pos = table.positions(keys)
    arg_pos: List[Optional[int]] = [
        table.position(a.argument) if a.argument is not None else None
        for a in aggregates
    ]

    groups: Dict[Row, List[Accumulator]] = {}
    for row in table.rows():
        key = tuple(row[i] for i in key_pos)
        accs = groups.get(key)
        if accs is None:
            accs = [a.make_accumulator() for a in aggregates]
            groups[key] = accs
        for acc, pos in zip(accs, arg_pos):
            acc.add(row[pos] if pos is not None else None)

    if not keys and not groups:
        # Scalar aggregate over empty input: one row of defaults.
        groups[()] = [a.make_accumulator() for a in aggregates]

    out_columns = list(keys) + aliases
    out_rows = [
        key + tuple(acc.result() for acc in accs)
        for key, accs in groups.items()
    ]
    return Table(out_columns, out_rows)


def scalar_aggregate(table: Table, aggregate: AggregateSpec) -> Value:
    """A single aggregate over the whole table (no grouping)."""
    result = group_by(table, (), (aggregate,))
    return result.rows()[0][0]
