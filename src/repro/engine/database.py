"""Database instances and interventions (tuple-set deltas).

A :class:`Database` is a schema plus one :class:`Relation` per schema
relation.  A :class:`Delta` is "a set of tuples to be deleted from D"
(Section 2.2): one subset per relation.  The intervention fixpoint in
:mod:`repro.core.intervention` manipulates Deltas; ``D - delta`` is
:meth:`Database.subtract`.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from ..errors import IntegrityError, SchemaError
from .relation import Relation
from .schema import DatabaseSchema
from .types import Row, Value, is_dummy, is_null


class Database:
    """A database instance: one relation per schema relation."""

    def __init__(
        self,
        schema: DatabaseSchema,
        relations: Optional[Mapping[str, Iterable[Sequence[Value]]]] = None,
    ) -> None:
        self.schema = schema
        self.relations: Dict[str, Relation] = {
            rs.name: Relation(rs) for rs in schema.relations
        }
        if relations is not None:
            for name, rows in relations.items():
                self.relation(name).insert_many(rows)

    # -- access ---------------------------------------------------------

    def relation(self, name: str) -> Relation:
        """The relation instance called *name*."""
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r}") from None

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """Relation names in schema order."""
        return self.schema.relation_names

    def total_rows(self) -> int:
        """Total number of tuples across all relations (the paper's n)."""
        return sum(len(r) for r in self.relations.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self.schema == other.schema and all(
            self.relations[n] == other.relations[n] for n in self.relation_names
        )

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{n}={len(r)}" for n, r in self.relations.items()
        )
        return f"Database({sizes})"

    # -- identity ---------------------------------------------------------

    def content_fingerprint(self) -> str:
        """A stable SHA-256 digest of the schema and every tuple.

        Two databases with the same schema and the same rows produce
        the same fingerprint regardless of insertion order, process,
        or platform — it is the content-addressed identity used by the
        service-layer result cache (:mod:`repro.service`).  The digest
        is memoized against the relations' mutation counters, so
        repeated calls are cheap and any mutation (insert, delete,
        clear, or swapping a relation object) invalidates it.
        """
        token = tuple(
            (name, id(rel), rel.version, len(rel))
            for name, rel in ((n, self.relations[n]) for n in self.relation_names)
        )
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is not None and cached[0] == token:
            return cached[1]
        digest = self.fingerprint_from_digests(
            {
                name: (_row_digest(row) for row in self.relations[name].row_list())
                for name in self.relation_names
            }
        )
        self._fingerprint_cache = (token, digest)
        return digest

    def fingerprint_from_digests(
        self, digests: Mapping[str, Iterable[bytes]]
    ) -> str:
        """The content fingerprint, given per-relation row digests.

        ``digests`` maps every relation name to an iterable of
        :func:`_row_digest` values (one per stored row, multiplicity
        preserved).  Sorting the per-row digests keeps the result
        independent of storage order, so this produces exactly the
        hash :meth:`content_fingerprint` would compute from the rows
        themselves — callers that maintain digests incrementally (the
        incremental mutation log) can rebase in O(changed rows) and
        :meth:`prime_fingerprint` the memo with the result.
        """
        h = hashlib.sha256()
        h.update(str(self.schema).encode("utf-8"))
        for fk in self.schema.foreign_keys:
            h.update(str(fk).encode("utf-8"))
        for name in self.relation_names:
            h.update(b"\x00R")
            h.update(name.encode("utf-8"))
            # sorted() is near-linear when the caller hands us an
            # already-sorted list (the mutation log does); one joined
            # update call keeps the hashing itself at C speed.
            h.update(b"".join(sorted(digests[name])))
        return h.hexdigest()

    def prime_fingerprint(self, digest: str) -> None:
        """Seed the fingerprint memo with an externally computed digest.

        The caller asserts ``digest`` equals what
        :meth:`content_fingerprint` would return for the current
        contents; subsequent calls then return it without re-hashing
        every row.  Used by the incremental mutation log, which tracks
        row digests as mutations arrive.
        """
        token = tuple(
            (name, id(rel), rel.version, len(rel))
            for name, rel in ((n, self.relations[n]) for n in self.relation_names)
        )
        self._fingerprint_cache = (token, digest)

    # -- integrity --------------------------------------------------------

    def check_integrity(self) -> None:
        """Verify every foreign key references an existing target tuple.

        Raises :class:`IntegrityError` on the first dangling reference.
        Primary keys are enforced at insertion time by
        :class:`Relation`, so only referential integrity is checked
        here.
        """
        for fk in self.schema.foreign_keys:
            source = self.relation(fk.source)
            target = self.relation(fk.target)
            target_keys = {
                tuple(row[i] for i in target.schema.indexes_of(fk.target_attrs))
                for row in target
            }
            src_pos = source.schema.indexes_of(fk.source_attrs)
            for row in source:
                key = tuple(row[i] for i in src_pos)
                if key not in target_keys:
                    raise IntegrityError(
                        f"dangling foreign key {fk}: {fk.source} row {row} "
                        f"references missing key {key}"
                    )

    # -- copying / mutation ------------------------------------------------

    def copy(self) -> "Database":
        """A deep copy (rows are immutable, so sharing them is safe)."""
        clone = Database(self.schema)
        for name, rel in self.relations.items():
            clone.relations[name] = rel.copy()
        return clone

    def subtract(self, delta: "Delta") -> "Database":
        """The residual database ``D - delta`` (non-destructive)."""
        residual = Database(self.schema)
        for name, rel in self.relations.items():
            residual.relations[name] = rel.without(delta.rows_for(name))
        return residual


def _fingerprint_value(value: Value) -> str:
    """A canonical text form of one engine value for hashing."""
    if is_null(value):
        return "n:"
    if is_dummy(value):
        return "d:"
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value!r}"
    return f"s:{value}"


def _row_digest(row: Row) -> bytes:
    """A fixed-width order-independent-safe digest of one row."""
    text = "\x1f".join(_fingerprint_value(v) for v in row)
    return hashlib.sha256(text.encode("utf-8")).digest()


class Delta:
    """An intervention: one set of rows to delete per relation.

    Deltas are immutable-by-convention value objects; all combining
    operations return new instances.  They support the subset ordering
    used by the minimality statements of Theorem 3.3.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        parts: Optional[Mapping[str, Iterable[Sequence[Value]]]] = None,
    ) -> None:
        self.schema = schema
        self._parts: Dict[str, FrozenSet[Row]] = {
            name: frozenset() for name in schema.relation_names
        }
        if parts is not None:
            for name, rows in parts.items():
                if name not in self._parts:
                    raise SchemaError(f"delta names unknown relation {name!r}")
                self._parts[name] = frozenset(tuple(r) for r in rows)

    @classmethod
    def empty(cls, schema: DatabaseSchema) -> "Delta":
        """The empty intervention."""
        return cls(schema)

    @classmethod
    def all_of(cls, database: Database) -> "Delta":
        """The trivial intervention that deletes the whole database."""
        return cls(
            database.schema,
            {name: rel.rows() for name, rel in database.relations.items()},
        )

    # -- access -----------------------------------------------------------

    def rows_for(self, relation: str) -> FrozenSet[Row]:
        """The rows to delete from *relation*."""
        try:
            return self._parts[relation]
        except KeyError:
            raise SchemaError(f"no relation named {relation!r}") from None

    def __getitem__(self, relation: str) -> FrozenSet[Row]:
        return self.rows_for(relation)

    def size(self) -> int:
        """Total number of tuples deleted."""
        return sum(len(rows) for rows in self._parts.values())

    def is_empty(self) -> bool:
        """True iff nothing is deleted."""
        return all(not rows for rows in self._parts.values())

    def parts(self) -> Dict[str, FrozenSet[Row]]:
        """A copy of the per-relation row sets."""
        return dict(self._parts)

    # -- algebra ------------------------------------------------------------

    def union(self, other: "Delta") -> "Delta":
        """Per-relation set union."""
        self._check_schema(other)
        merged = {
            name: self._parts[name] | other._parts[name]
            for name in self._parts
        }
        return Delta(self.schema, merged)

    def with_rows(
        self, relation: str, rows: Iterable[Sequence[Value]]
    ) -> "Delta":
        """A new delta with *rows* added to *relation*'s part."""
        if relation not in self._parts:
            raise SchemaError(f"no relation named {relation!r}")
        merged = dict(self._parts)
        merged[relation] = self._parts[relation] | {
            tuple(r) for r in rows
        }
        return Delta(self.schema, merged)

    def issubset(self, other: "Delta") -> bool:
        """Per-relation subset test (the minimality order)."""
        self._check_schema(other)
        return all(
            self._parts[name] <= other._parts[name] for name in self._parts
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Delta):
            return NotImplemented
        return self.schema == other.schema and self._parts == other._parts

    def __le__(self, other: "Delta") -> bool:
        return self.issubset(other)

    def __or__(self, other: "Delta") -> "Delta":
        return self.union(other)

    def _check_schema(self, other: "Delta") -> None:
        if self.schema.relation_names != other.schema.relation_names:
            raise SchemaError("deltas over different schemas are incomparable")

    def __repr__(self) -> str:
        nonempty = {
            name: len(rows) for name, rows in self._parts.items() if rows
        }
        return f"Delta({nonempty or 'empty'})"

    def describe(self) -> str:
        """A readable multi-line listing of the deleted tuples."""
        lines = []
        for name in self.schema.relation_names:
            rows = self._parts[name]
            if rows:
                listing = ", ".join(str(r) for r in sorted(rows, key=str))
                lines.append(f"  {name}: {listing}")
            else:
                lines.append(f"  {name}: (none)")
        return "Delta[\n" + "\n".join(lines) + "\n]"
