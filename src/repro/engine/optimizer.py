"""A small rule-based plan optimizer.

Rewrites :mod:`repro.engine.plan` trees into equivalent, cheaper ones.
Rules (applied to fixpoint, top-down):

* **merge-selects** — ``Select(Select(x, p), q)`` → ``Select(x, p ∧ q)``;
* **push-select-through-project** — when the predicate only reads
  retained columns;
* **push-select-below-join** — split a conjunction by which join side
  its columns come from; conjuncts touching only one side move below
  the join (the classic selection push-down, which shrinks hash-join
  inputs);
* **prune-topk-below-distinct**? — not needed for our plan shapes.

The optimizer never changes results: every rewrite preserves the bag
semantics of the original plan, which the tests verify by executing
both plans.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from .database import Database
from .expressions import And, Expression, conj
from .plan import (
    AntiJoin,
    CubePlan,
    Distinct,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Rename,
    Scan,
    Select,
    SemiJoin,
    TopK,
)


def _conjuncts(expr: Expression) -> Tuple[Expression, ...]:
    if isinstance(expr, And):
        return expr.operands
    return (expr,)


def _columns_of_side(
    node: PlanNode, database: Optional[Database]
) -> Optional[Set[str]]:
    """Statically known output columns of a plan node, or None.

    Scans resolve against *database* when one is supplied to
    :func:`optimize`; Projects and Renames carry their columns in the
    plan itself.
    """
    if isinstance(node, Scan) and database is not None:
        rs = database.schema.relation(node.relation)
        if node.qualify:
            return {f"{node.relation}.{a}" for a in rs.attribute_names}
        return set(rs.attribute_names)
    if isinstance(node, Project):
        return set(node.columns)
    if isinstance(node, Rename):
        inner = _columns_of_side(node.child, database)
        if inner is None:
            return None
        mapping = dict(node.mapping)
        return {mapping.get(c, c) for c in inner}
    if isinstance(node, Select):
        return _columns_of_side(node.child, database)
    if isinstance(node, (Join,)):
        left = _columns_of_side(node.left, database)
        right = _columns_of_side(node.right, database)
        if left is None or right is None:
            return None
        return left | {c for c in right if c not in set(node.right_on)}
    return None


def optimize(plan: PlanNode, database: Optional[Database] = None) -> PlanNode:
    """Apply the rewrite rules until no rule fires.

    ``database`` (optional) lets the optimizer resolve Scan columns,
    enabling selection push-down below joins over base relations.
    """
    changed = True
    current = plan
    while changed:
        current, changed = _rewrite(current, database)
    return current


def _rewrite(
    node: PlanNode, database: Optional[Database] = None
) -> Tuple[PlanNode, bool]:
    # Bottom-up: rewrite children first.
    changed = False
    if isinstance(node, Select):
        child, child_changed = _rewrite(node.child, database)
        node = Select(child, node.predicate)
        changed |= child_changed
        rewritten = _rewrite_select(node, database)
        if rewritten is not None:
            return rewritten, True
        return node, changed
    if isinstance(node, Project):
        child, child_changed = _rewrite(node.child, database)
        return Project(child, node.columns, node.distinct), child_changed
    if isinstance(node, Rename):
        child, child_changed = _rewrite(node.child, database)
        return Rename(child, node.mapping), child_changed
    if isinstance(node, Distinct):
        child, child_changed = _rewrite(node.child, database)
        return Distinct(child), child_changed
    if isinstance(node, GroupBy):
        child, child_changed = _rewrite(node.child, database)
        return GroupBy(child, node.keys, node.aggregates), child_changed
    if isinstance(node, CubePlan):
        child, child_changed = _rewrite(node.child, database)
        return CubePlan(child, node.dimensions, node.aggregates), child_changed
    if isinstance(node, TopK):
        child, child_changed = _rewrite(node.child, database)
        return (
            TopK(child, node.by, node.k, node.descending),
            child_changed,
        )
    if isinstance(node, (Join, SemiJoin, AntiJoin)):
        left, lc = _rewrite(node.left, database)
        right, rc = _rewrite(node.right, database)
        cls = type(node)
        return (
            cls(left, right, node.left_on, node.right_on),
            lc or rc,
        )
    return node, False


def _rewrite_select(
    node: Select, database: Optional[Database] = None
) -> Optional[PlanNode]:
    child = node.child
    # merge-selects
    if isinstance(child, Select):
        merged = conj(
            *(_conjuncts(child.predicate) + _conjuncts(node.predicate))
        )
        return Select(child.child, merged)
    # push-select-through-project (predicate must only read kept columns)
    if isinstance(child, Project):
        needed = set(node.predicate.columns())
        if needed <= set(child.columns) and not child.distinct:
            return Project(
                Select(child.child, node.predicate),
                child.columns,
                child.distinct,
            )
        if needed <= set(child.columns) and child.distinct:
            # Selection commutes with duplicate elimination too.
            return Project(
                Select(child.child, node.predicate),
                child.columns,
                True,
            )
    # push-select-below-join
    if isinstance(child, Join):
        left_cols = _columns_of_side(child.left, database)
        right_cols = _columns_of_side(child.right, database)
        if left_cols is not None or right_cols is not None:
            left_parts: List[Expression] = []
            right_parts: List[Expression] = []
            keep_parts: List[Expression] = []
            for part in _conjuncts(node.predicate):
                cols = set(part.columns())
                if left_cols is not None and cols <= left_cols:
                    left_parts.append(part)
                elif right_cols is not None and cols <= right_cols:
                    right_parts.append(part)
                else:
                    keep_parts.append(part)
            if left_parts or right_parts:
                new_left = (
                    Select(child.left, conj(*left_parts))
                    if left_parts
                    else child.left
                )
                new_right = (
                    Select(child.right, conj(*right_parts))
                    if right_parts
                    else child.right
                )
                new_join = Join(
                    new_left, new_right, child.left_on, child.right_on
                )
                if keep_parts:
                    return Select(new_join, conj(*keep_parts))
                return new_join
    return None
