"""Durable storage: schemas as JSON, databases as directories of CSVs.

A saved database is a directory containing ``schema.json`` plus one
``<Relation>.csv`` per relation.  The JSON carries everything the
engine needs to rebuild the schema — attributes with dtypes, primary
keys, and foreign keys including the back-and-forth flag — so a
round-tripped database is equal to the original.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from ..errors import SchemaError
from .csvio import dump_relation, load_relation
from .database import Database
from .schema import (
    Attribute,
    DatabaseSchema,
    ForeignKey,
    RelationSchema,
)

PathLike = Union[str, Path]

SCHEMA_FILENAME = "schema.json"
FORMAT_VERSION = 1


def schema_to_dict(schema: DatabaseSchema) -> Dict:
    """A JSON-serializable description of *schema*."""
    return {
        "version": FORMAT_VERSION,
        "relations": [
            {
                "name": rs.name,
                "attributes": [
                    {"name": a.name, "dtype": a.dtype} for a in rs.attributes
                ],
                "primary_key": list(rs.primary_key),
            }
            for rs in schema.relations
        ],
        "foreign_keys": [
            {
                "source": fk.source,
                "source_attrs": list(fk.source_attrs),
                "target": fk.target,
                "target_attrs": list(fk.target_attrs),
                "back_and_forth": fk.back_and_forth,
            }
            for fk in schema.foreign_keys
        ],
    }


def schema_from_dict(data: Dict) -> DatabaseSchema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported schema format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    relations = tuple(
        RelationSchema(
            r["name"],
            tuple(Attribute(a["name"], a["dtype"]) for a in r["attributes"]),
            tuple(r["primary_key"]),
        )
        for r in data["relations"]
    )
    foreign_keys = tuple(
        ForeignKey(
            fk["source"],
            tuple(fk["source_attrs"]),
            fk["target"],
            tuple(fk["target_attrs"]),
            fk["back_and_forth"],
        )
        for fk in data["foreign_keys"]
    )
    return DatabaseSchema(relations, foreign_keys)


def save_schema(schema: DatabaseSchema, path: PathLike) -> None:
    """Write a schema to a JSON file."""
    with open(path, "w") as handle:
        json.dump(schema_to_dict(schema), handle, indent=2, sort_keys=True)


def load_schema(path: PathLike) -> DatabaseSchema:
    """Read a schema from a JSON file."""
    with open(path) as handle:
        return schema_from_dict(json.load(handle))


def save_database(database: Database, directory: PathLike) -> None:
    """Save a database as ``directory/schema.json`` + per-relation CSVs.

    The directory is created if missing; existing files are
    overwritten.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_schema(database.schema, directory / SCHEMA_FILENAME)
    for name, relation in database.relations.items():
        dump_relation(relation, directory / f"{name}.csv")


def load_database(
    directory: PathLike, *, check_integrity: bool = True
) -> Database:
    """Load a database saved by :func:`save_database`.

    ``check_integrity`` (default) verifies all foreign keys after
    loading, so a manually edited directory cannot smuggle in dangling
    references.
    """
    directory = Path(directory)
    schema_path = directory / SCHEMA_FILENAME
    if not schema_path.exists():
        raise SchemaError(f"{directory} has no {SCHEMA_FILENAME}")
    schema = load_schema(schema_path)
    database = Database(schema)
    for rs in schema.relations:
        csv_path = directory / f"{rs.name}.csv"
        if not csv_path.exists():
            raise SchemaError(f"missing relation file {csv_path}")
        database.relations[rs.name] = load_relation(rs, csv_path)
    if check_integrity:
        database.check_integrity()
    return database
