"""FK cascade closure index: Δ^φ by index probes instead of iteration.

Program **P** (:mod:`repro.core.intervention`) reaches Δ^φ by a
fixpoint loop whose worst case is Θ(n) iterations (Example 3.7's
back-and-forth chains).  Most of that work is *data independent*: the
tuples a single deletion transitively forces — through the standard
cascade (deleting a referenced tuple deletes its referencing tuples)
and the back-and-forth cascade (deleting a referencing tuple deletes
the tuple it references, Definition 2.5) — depend only on the database
instance, never on φ.  This module precomputes them once per database:

* every stored tuple gets a dense integer id (relations are laid out
  contiguously, so per-relation id ranges are intervals);
* the cascade edges form a directed graph over those ids; strongly
  connected components (every back-and-forth pair is a 2-cycle) are
  condensed with an iterative Tarjan pass;
* per component, the *reachable set* — the full transitive deletion
  closure — is materialized bottom-up over the condensation DAG and
  stored as a **posting list of id intervals** (sorted, disjoint,
  inclusive runs), the same index-friendly encoding DMR-style XPath
  accelerators use for tree axes.

What closures cannot precompute is Rule (ii)'s *support loss*: a tuple
dies when its **last** join partner dies, which depends on how many
partners φ's seeds happened to hit.  :meth:`ClosureIndex.delta_from_seeds`
therefore alternates closure probes with a bounded semijoin repair
(the Yannakakis full reducer of :mod:`repro.engine.reduction`): union
the closures of all newly deleted tuples, reduce the residual, feed
the dropped tuples' closures back in, and stop at quiescence.  All of
program P's rules are monotone (Proposition 3.1), so this chaotic
schedule reaches the **same least fixpoint** — byte-identical deltas,
and therefore byte-identical explanation tables — while each repair
round makes at least one naive iteration of progress, so the round
count never exceeds the certified fixpoint bound.

The index is cached per database content version
(:func:`ClosureIndex.for_database`) and eagerly invalidated through
the relation mutation-subscriber API, so service deployments running
``POST /v1/mutate`` never probe a stale closure.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..errors import ReproError
from ..obs import get_registry, phase
from .database import Database, Delta
from .reduction import RowSets, reduce_row_sets
from .relation import Relation
from .schema import DatabaseSchema
from .types import Row
from .universal import JoinTree

#: Inclusive ``(start, stop)`` id intervals — the posting-list encoding.
Runs = Tuple[Tuple[int, int], ...]

_BUILD_NODES = get_registry().histogram(
    "repro_closure_build_nodes",
    buckets=(8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0, 32768.0),
    help="Tuples (graph nodes) per closure-index build.",
)
_PROBE_ROWS = get_registry().histogram(
    "repro_closure_probe_rows",
    buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0, 1024.0),
    help="Tuples contributed by one closure probe (one seed's runs).",
)
_REPAIR_ROUNDS = get_registry().histogram(
    "repro_closure_repair_rounds",
    buckets=(0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0),
    help="Semijoin repair rounds per closure-strategy delta.",
)


class StaleClosureIndexError(ReproError):
    """A probe hit a closure index whose database has since mutated."""


@dataclass(frozen=True)
class ClosureDelta:
    """One Δ^φ computed by closure probes plus semijoin repair.

    ``rounds`` counts *productive* repair rounds (rounds that added at
    least one tuple), mirroring program P's productive-iteration
    counting; ``new_by_round`` maps each round's rule labels
    ("seed", "closure", "reduce") to the tuples it contributed.
    """

    delta: Delta
    rounds: int
    new_by_round: Tuple[Dict[str, int], ...]
    probes: int


class ClosureIndex:
    """Per-tuple transitive deletion closures for one database snapshot.

    Construction cost is one pass to build the cascade graph plus a
    linear-time SCC condensation and a bottom-up reachability sweep;
    memory is the sum of all closure posting lists (interval-compressed,
    so a chain whose head forces the whole database stores one run).
    """

    def __init__(self, database: Database) -> None:
        self.schema: DatabaseSchema = database.schema
        self._stale = False
        self._db_ref: "weakref.ref[Database]" = weakref.ref(database)
        with phase("closure.build") as ph:
            self._assign_ids(database)
            edges = self._cascade_edges(database)
            scc_of, components = _condense(self._n, edges)
            self._scc_of = scc_of
            self._runs = _reachable_runs(components, scc_of, edges)
            ph.annotate(
                nodes=self._n,
                edges=sum(len(targets) for targets in edges),
                components=len(components),
                runs=sum(len(r) for r in self._runs),
            )
        _BUILD_NODES.observe(float(self._n))
        self._subscribed: List[Relation] = []
        self._invalidator = self._make_invalidator()
        for name in self.schema.relation_names:
            rel = database.relation(name)
            rel.subscribe(self._invalidator)
            self._subscribed.append(rel)

    # -- construction ------------------------------------------------------

    def _assign_ids(self, database: Database) -> None:
        """Dense ids, one contiguous interval per relation."""
        self._ids: Dict[str, Dict[Row, int]] = {}
        self._entries: List[Tuple[str, Row]] = []
        self._snapshot: Dict[str, List[Row]] = {}
        self._offsets: Dict[str, int] = {}
        next_id = 0
        for name in self.schema.relation_names:
            rows = database.relation(name).row_list()
            self._offsets[name] = next_id
            self._snapshot[name] = rows
            idmap: Dict[Row, int] = {}
            for row in rows:
                idmap[row] = next_id
                self._entries.append((name, row))
                next_id += 1
            self._ids[name] = idmap
        self._n = next_id

    def _cascade_edges(self, database: Database) -> List[Set[int]]:
        """``u -> v`` iff deleting tuple *u* deterministically deletes *v*."""
        edges: List[Set[int]] = [set() for _ in range(self._n)]
        for fk in self.schema.foreign_keys:
            source_rel = database.relation(fk.source)
            target_rel = database.relation(fk.target)
            src_pos = source_rel.schema.indexes_of(fk.source_attrs)
            tgt_pos = target_rel.schema.indexes_of(fk.target_attrs)
            target_ids: Dict[Row, List[int]] = {}
            tgt_idmap = self._ids[fk.target]
            for row in self._snapshot[fk.target]:
                key = tuple(row[i] for i in tgt_pos)
                target_ids.setdefault(key, []).append(tgt_idmap[row])
            src_idmap = self._ids[fk.source]
            for row in self._snapshot[fk.source]:
                key = tuple(row[i] for i in src_pos)
                sid = src_idmap[row]
                for tid in target_ids.get(key, ()):
                    # Standard cascade: target gone => source gone.
                    edges[tid].add(sid)
                    if fk.back_and_forth:
                        # Back-and-forth cascade: source gone => target
                        # gone.  Together these form a 2-cycle, which
                        # is why the condensation pass matters.
                        edges[sid].add(tid)
        return edges

    # -- caching / invalidation --------------------------------------------

    @classmethod
    def for_database(cls, database: Database) -> "ClosureIndex":
        """The (cached) closure index for *database*'s current contents.

        Memoized against the relations' mutation counters exactly like
        :meth:`Database.content_fingerprint`; additionally the index
        subscribes to every relation, so the first mutation *eagerly*
        drops the cache entry instead of waiting for the next token
        mismatch.
        """
        token = _version_token(database)
        cached = getattr(database, "_closure_index_cache", None)
        if cached is not None and cached[0] == token:
            index: ClosureIndex = cached[1]
            if not index.stale:
                return index
        index = cls(database)
        setattr(database, "_closure_index_cache", (token, index))
        return index

    def _make_invalidator(
        self,
    ) -> Callable[[Relation, Tuple[Row, ...], Tuple[Row, ...]], None]:
        index_ref = weakref.ref(self)

        def _invalidate(
            relation: Relation,
            inserted: Tuple[Row, ...],
            deleted: Tuple[Row, ...],
        ) -> None:
            index = index_ref()
            if index is not None:
                index.invalidate()

        return _invalidate

    def invalidate(self) -> None:
        """Mark the index stale and detach it from its database."""
        if self._stale:
            return
        self._stale = True
        for rel in self._subscribed:
            rel.unsubscribe(self._invalidator)
        self._subscribed = []
        database = self._db_ref()
        if database is not None:
            cached = getattr(database, "_closure_index_cache", None)
            if cached is not None and cached[1] is self:
                setattr(database, "_closure_index_cache", None)

    @property
    def stale(self) -> bool:
        """True once the underlying database has mutated."""
        return self._stale

    # -- probes ------------------------------------------------------------

    @property
    def tuple_count(self) -> int:
        """Indexed tuples (the paper's n at build time)."""
        return self._n

    def closure_runs(self, relation: str, row: Row) -> Runs:
        """The id-interval posting list of one tuple's deletion closure."""
        self._check_fresh()
        try:
            rid = self._ids[relation][row]
        except KeyError:
            raise ReproError(
                f"tuple {row!r} is not in relation {relation!r}"
            ) from None
        return self._runs[self._scc_of[rid]]

    def closure_rows(
        self, relation: str, row: Row
    ) -> Dict[str, Set[Row]]:
        """One tuple's deletion closure as per-relation row sets."""
        parts: Dict[str, Set[Row]] = {
            name: set() for name in self.schema.relation_names
        }
        for start, stop in self.closure_runs(relation, row):
            for rid in range(start, stop + 1):
                name, entry = self._entries[rid]
                parts[name].add(entry)
        return parts

    def _check_fresh(self) -> None:
        if self._stale:
            raise StaleClosureIndexError(
                "closure index is stale: the database mutated after the "
                "index was built; rebuild via ClosureIndex.for_database"
            )

    # -- Δ^φ ---------------------------------------------------------------

    def delta_from_seeds(
        self,
        seeds: Delta,
        *,
        join_tree: Optional[JoinTree] = None,
    ) -> ClosureDelta:
        """The least fixpoint of program P above *seeds*, by probing.

        Each round (1) unions the precomputed closures of every tuple
        newly deleted since the last round and (2) runs one full
        semijoin reduction of the residual to catch support-loss
        deletions, whose closures feed the next round.  Quiescence is
        reached within the certified fixpoint bound (each round
        dominates one naive iteration), and typically in one round —
        the whole Example 3.7 zig-zag is a single closure.
        """
        self._check_fresh()
        with phase("closure.delta") as ph:
            deleted: Set[int] = set()
            extra: Dict[str, Set[Row]] = {}
            queue: List[int] = []
            seed_new = 0
            for name, rows in seeds.parts().items():
                idmap = self._ids[name]
                for row in rows:
                    seed_new += 1
                    rid = idmap.get(row)
                    if rid is None:
                        # Seeds outside D (possible with caller-supplied
                        # deltas) are kept verbatim; they cascade nothing.
                        extra.setdefault(name, set()).add(row)
                    elif rid not in deleted:
                        deleted.add(rid)
                        queue.append(rid)
            tree = join_tree or JoinTree(self.schema)
            new_by_round: List[Dict[str, int]] = []
            rounds = 0
            probes = 0
            first = True
            while True:
                closure_new = 0
                for rid in queue:
                    probes += 1
                    contributed = 0
                    for start, stop in self._runs[self._scc_of[rid]]:
                        for i in range(start, stop + 1):
                            if i not in deleted:
                                deleted.add(i)
                                contributed += 1
                    _PROBE_ROWS.observe(float(contributed))
                    closure_new += contributed
                reduce_new, queue = self._repair(deleted, tree)
                new_by_rule = {
                    label: count
                    for label, count in (
                        ("seed", seed_new if first else 0),
                        ("closure", closure_new),
                        ("reduce", reduce_new),
                    )
                    if count
                }
                first = False
                if new_by_rule:
                    rounds += 1
                    new_by_round.append(new_by_rule)
                if not queue:
                    break
            parts: Dict[str, Set[Row]] = {
                name: set(rows) for name, rows in extra.items()
            }
            for rid in deleted:
                name, row = self._entries[rid]
                parts.setdefault(name, set()).add(row)
            ph.annotate(
                rounds=rounds,
                probes=probes,
                rows=sum(len(rows) for rows in parts.values()),
            )
        _REPAIR_ROUNDS.observe(float(rounds))
        return ClosureDelta(
            delta=Delta(self.schema, parts),
            rounds=rounds,
            new_by_round=tuple(new_by_round),
            probes=probes,
        )

    def _repair(
        self, deleted: Set[int], tree: JoinTree
    ) -> Tuple[int, List[int]]:
        """One full semijoin reduction; returns (count, newly dead ids)."""
        residual: RowSets = {}
        for name in self.schema.relation_names:
            offset = self._offsets[name]
            residual[name] = {
                row
                for i, row in enumerate(self._snapshot[name], start=offset)
                if i not in deleted
            }
        probe = {name: set(rows) for name, rows in residual.items()}
        reduce_row_sets(self.schema, probe, tree)
        dropped: List[int] = []
        for name in self.schema.relation_names:
            idmap = self._ids[name]
            for row in residual[name] - probe[name]:
                rid = idmap[row]
                if rid not in deleted:
                    deleted.add(rid)
                    dropped.append(rid)
        return len(dropped), dropped


# -- graph plumbing ---------------------------------------------------------


def _version_token(
    database: Database,
) -> Tuple[Tuple[str, int, int, int], ...]:
    return tuple(
        (name, id(rel), rel.version, len(rel))
        for name, rel in (
            (n, database.relations[n]) for n in database.relation_names
        )
    )


def _condense(
    n: int, edges: List[Set[int]]
) -> Tuple[List[int], List[List[int]]]:
    """Iterative Tarjan SCC.  Components come out in reverse
    topological order of the condensation (every successor component
    before its predecessors), which is exactly the order the
    reachability sweep needs."""
    index_of = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    scc_of = [-1] * n
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0
    for root in range(n):
        if index_of[root] != -1:
            continue
        work: List[Tuple[int, Iterable[int]]] = [(root, iter(edges[root]))]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            v, children = work[-1]
            advanced = False
            for w in children:
                if index_of[w] == -1:
                    index_of[w] = low[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, iter(edges[w])))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index_of[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index_of[v]:
                component: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    scc_of[w] = len(components)
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
    return scc_of, components


def _reachable_runs(
    components: List[List[int]],
    scc_of: List[int],
    edges: List[Set[int]],
) -> List[Runs]:
    """Per component, the reachable tuple ids as interval posting lists.

    Processed in Tarjan emission order, so every successor component's
    closure is already final when a component unions it in.
    """
    closures: List[Set[int]] = []
    runs: List[Runs] = []
    for scc_id, members in enumerate(components):
        reach: Set[int] = set(members)
        for v in members:
            for w in edges[v]:
                target = scc_of[w]
                if target != scc_id:
                    reach |= closures[target]
        closures.append(reach)
        runs.append(_compress(reach))
    return runs


def _compress(ids: Iterable[int]) -> Runs:
    """Sorted inclusive ``(start, stop)`` runs covering *ids*."""
    out: List[List[int]] = []
    for i in sorted(ids):
        if out and i == out[-1][1] + 1:
            out[-1][1] = i
        else:
            out.append([i, i])
    return tuple((a, b) for a, b in out)
