"""``GROUP BY ... WITH CUBE`` — the data-cube operator (Section 4).

The cube over grouping attributes ``g1 … gd`` is the union of the
group-bys over all ``2^d`` subsets of the attributes, with the
attributes *outside* each subset set to NULL ("don't care").  Each cube
row therefore corresponds to one candidate explanation: the non-NULL
(attribute, value) pairs are the equality predicates of the conjunction
(Example 4.1).

Two implementations are provided:

* :func:`cube` — the production single-pass algorithm: one hash pass
  over the input feeding all ``2^d`` grouping sets at once.
* :func:`cube_bruteforce` — ``2^d`` independent group-bys; quadratic
  work but trivially correct, kept as the test oracle.

Section 4.2's optimization — rewriting NULL markers to the DUMMY
constant so the m cubes can be equi-joined — lives in
:func:`dummy_rewrite`.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import QueryError
from .aggregates import Accumulator, AggregateSpec
from .groupby import group_by
from .table import Table
from .types import DUMMY, NULL, Row, Value


def grouping_sets(dimensions: Sequence[str]) -> List[Tuple[str, ...]]:
    """All ``2^d`` subsets of *dimensions*, largest first.

    The full grouping set comes first and the empty (grand total) set
    last, mirroring the presentation order of SQL Server's WITH CUBE.
    """
    dims = tuple(dimensions)
    sets: List[Tuple[str, ...]] = []
    for size in range(len(dims), -1, -1):
        sets.extend(combinations(dims, size))
    return sets


def rollup_sets(dimensions: Sequence[str]) -> List[Tuple[str, ...]]:
    """The ``d + 1`` prefixes of *dimensions* (``WITH ROLLUP``).

    ``(a, b, c)`` yields ``(a,b,c), (a,b), (a,), ()`` — the hierarchy
    drill-up, a strict subset of the cube's grouping sets.
    """
    dims = tuple(dimensions)
    return [dims[:size] for size in range(len(dims), -1, -1)]


def grouping_sets_aggregate(
    table: Table,
    sets: Sequence[Sequence[str]],
    aggregates: Sequence[AggregateSpec],
    dimensions: Optional[Sequence[str]] = None,
) -> Table:
    """``GROUP BY GROUPING SETS (…)`` — aggregate over explicit sets.

    Output columns are the union of all grouping attributes (in
    ``dimensions`` order if given, else first-appearance order), with
    NULL marking attributes outside a row's grouping set.  Both
    :func:`cube` and ``WITH ROLLUP`` are special cases.
    """
    if dimensions is None:
        seen: Dict[str, None] = {}
        for s in sets:
            for a in s:
                seen.setdefault(a)
        dimensions = list(seen)
    for s in sets:
        unknown = set(s) - set(dimensions)
        if unknown:
            raise QueryError(
                f"grouping set {tuple(s)} uses attributes outside the "
                f"dimension list: {sorted(unknown)}"
            )
    dim_pos = table.positions(dimensions)
    arg_pos: List[Optional[int]] = [
        table.position(a.argument) if a.argument is not None else None
        for a in aggregates
    ]
    aliases = [a.alias for a in aggregates]
    if len(set(aliases)) != len(aliases):
        raise QueryError(f"duplicate aggregate aliases: {aliases}")
    # Deduplicate grouping sets (SQL allows repeats; one output each).
    masks = list(
        dict.fromkeys(
            tuple(d in set(s) for d in dimensions) for s in sets
        )
    )
    groups: Dict[Row, List[Accumulator]] = {}
    for row in table.rows():
        dim_values = tuple(row[i] for i in dim_pos)
        _reject_null_dimensions(dim_values, dimensions)
        arg_values = tuple(
            row[i] if i is not None else None for i in arg_pos
        )
        for mask in masks:
            key = tuple(
                v if keep else NULL for v, keep in zip(dim_values, mask)
            )
            accs = groups.get(key)
            if accs is None:
                accs = [a.make_accumulator() for a in aggregates]
                groups[key] = accs
            for acc, v in zip(accs, arg_values):
                acc.add(v)
    if not groups and () in [tuple(s) for s in sets] or (
        not table.rows() and any(not s for s in sets)
    ):
        groups[(NULL,) * len(dimensions)] = [
            a.make_accumulator() for a in aggregates
        ]
    out_rows = [
        key + tuple(acc.result() for acc in accs)
        for key, accs in groups.items()
    ]
    return Table(list(dimensions) + aliases, out_rows)


def rollup(
    table: Table,
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """``GROUP BY … WITH ROLLUP`` over the dimension hierarchy."""
    return grouping_sets_aggregate(
        table, rollup_sets(dimensions), aggregates, dimensions
    )


def cube(
    table: Table,
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """Single-pass data cube.

    Output columns are ``dimensions + aggregate aliases``; "don't care"
    dimensions carry NULL.  Groups are only emitted for value
    combinations present in the data (plus the grand-total row, which
    always exists, even on empty input).
    """
    if len(set(dimensions)) != len(dimensions):
        raise QueryError(f"duplicate cube dimensions: {dimensions}")
    dim_pos = table.positions(dimensions)
    arg_pos: List[Optional[int]] = [
        table.position(a.argument) if a.argument is not None else None
        for a in aggregates
    ]
    aliases = [a.alias for a in aggregates]
    if len(set(aliases)) != len(aliases):
        raise QueryError(f"duplicate aggregate aliases: {aliases}")
    if set(aliases) & set(dimensions):
        raise QueryError("aggregate aliases clash with cube dimensions")

    sets = grouping_sets(dimensions)
    masks = [
        tuple(d in s for d in dimensions)
        for s in sets
    ]
    groups: Dict[Row, List[Accumulator]] = {}
    for row in table.rows():
        dim_values = tuple(row[i] for i in dim_pos)
        _reject_null_dimensions(dim_values, dimensions)
        arg_values = tuple(
            row[i] if i is not None else None for i in arg_pos
        )
        for mask in masks:
            key = tuple(
                v if keep else NULL for v, keep in zip(dim_values, mask)
            )
            accs = groups.get(key)
            if accs is None:
                accs = [a.make_accumulator() for a in aggregates]
                groups[key] = accs
            for acc, v in zip(accs, arg_values):
                acc.add(v)

    grand_total: Row = (NULL,) * len(dimensions)
    if grand_total not in groups:
        groups[grand_total] = [a.make_accumulator() for a in aggregates]

    out_rows = [
        key + tuple(acc.result() for acc in accs)
        for key, accs in groups.items()
    ]
    return Table(list(dimensions) + aliases, out_rows)


def _reject_null_dimensions(
    dim_values: Row, dimensions: Sequence[str]
) -> None:
    """NULL *data* in a grouping column would be indistinguishable from
    the cube's NULL "don't care" marker (SQL disambiguates with the
    GROUPING() function; we simply forbid it — the explanation pipeline
    never groups by nullable columns)."""
    for value, name in zip(dim_values, dimensions):
        if value is NULL:
            raise QueryError(
                f"cube dimension {name!r} contains NULL; NULL grouping "
                "values are ambiguous with the cube's don't-care marker"
            )


def cube_bruteforce(
    table: Table,
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """Reference cube: one :func:`group_by` per grouping set.

    Used as the correctness oracle in tests; also the natural shape of
    the 'No Cube' baseline in Figure 12 when fed pre-filtered inputs.
    """
    if len(table) and dimensions:
        pos = table.positions(dimensions)
        for row in table.rows():
            _reject_null_dimensions(
                tuple(row[i] for i in pos), dimensions
            )
    aliases = [a.alias for a in aggregates]
    out_columns = list(dimensions) + aliases
    out_rows: List[Row] = []
    seen_keys = set()
    for gset in grouping_sets(dimensions):
        grouped = group_by(table, gset, aggregates)
        positions = {c: grouped.position(c) for c in grouped.columns}
        for row in grouped.rows():
            key = tuple(
                row[positions[d]] if d in gset else NULL for d in dimensions
            )
            if not gset and key in seen_keys:
                continue
            seen_keys.add(key)
            out_rows.append(
                key + tuple(row[positions[a]] for a in aliases)
            )
    return Table(out_columns, out_rows)


def dummy_rewrite(cube_table: Table, dimensions: Sequence[str]) -> Table:
    """Replace NULL with DUMMY in the dimension columns (Section 4.2).

    After the rewrite the cube can participate in plain equi-joins:
    ``NULL = NULL`` is false but ``DUMMY = DUMMY`` is true, so two
    cubes join exactly on identical explanations.
    """
    pos = set(cube_table.positions(dimensions))
    rows = [
        tuple(
            DUMMY if (i in pos and v is NULL) else v
            for i, v in enumerate(row)
        )
        for row in cube_table.rows()
    ]
    return Table(cube_table.columns, rows)


def undummy(table: Table, dimensions: Sequence[str]) -> Table:
    """Inverse of :func:`dummy_rewrite` for presenting results."""
    pos = set(table.positions(dimensions))
    rows = [
        tuple(
            NULL if (i in pos and v is DUMMY) else v
            for i, v in enumerate(row)
        )
        for row in table.rows()
    ]
    return Table(table.columns, rows)
