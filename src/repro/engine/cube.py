"""``GROUP BY ... WITH CUBE`` — the data-cube operator (Section 4).

The cube over grouping attributes ``g1 … gd`` is the union of the
group-bys over all ``2^d`` subsets of the attributes, with the
attributes *outside* each subset set to NULL ("don't care").  Each cube
row therefore corresponds to one candidate explanation: the non-NULL
(attribute, value) pairs are the equality predicates of the conjunction
(Example 4.1).

Three implementations are provided:

* :func:`cube` — the production columnar algorithm: group the zipped
  dimension columns at full granularity once, then *roll the partial
  aggregate states up* into all ``2^d`` grouping sets via accumulator
  merges.  Work is ``O(rows + 2^d · distinct_keys)`` instead of the
  row-at-a-time ``O(rows · 2^d)``.  When every aggregate is COUNT(*),
  the whole pass collapses to a ``Counter`` over the key columns.
* :func:`cube_rowwise` — the previous single-pass row-tuple algorithm,
  kept as the benchmark baseline for the columnar speedup gate.
* :func:`cube_bruteforce` — ``2^d`` independent row-wise group-bys;
  quadratic work but trivially correct, kept as the test oracle.

Section 4.2's optimization — rewriting NULL markers to the DUMMY
constant so the m cubes can be equi-joined — lives in
:func:`dummy_rewrite`.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import QueryError
from ..obs import phase
from .aggregates import Accumulator, AggregateSpec
from .groupby import accumulate_groups, group_by_rowwise, group_rows
from .table import Table
from .types import DUMMY, NULL, Row, Value


def grouping_sets(dimensions: Sequence[str]) -> List[Tuple[str, ...]]:
    """All ``2^d`` subsets of *dimensions*, largest first.

    The full grouping set comes first and the empty (grand total) set
    last, mirroring the presentation order of SQL Server's WITH CUBE.
    """
    dims = tuple(dimensions)
    sets: List[Tuple[str, ...]] = []
    for size in range(len(dims), -1, -1):
        sets.extend(combinations(dims, size))
    return sets


def rollup_sets(dimensions: Sequence[str]) -> List[Tuple[str, ...]]:
    """The ``d + 1`` prefixes of *dimensions* (``WITH ROLLUP``).

    ``(a, b, c)`` yields ``(a,b,c), (a,b), (a,), ()`` — the hierarchy
    drill-up, a strict subset of the cube's grouping sets.
    """
    dims = tuple(dimensions)
    return [dims[:size] for size in range(len(dims), -1, -1)]


# One group's rolled-up state: a plain int on the COUNT(*)-only fast
# path, a list of accumulators otherwise.
_GroupState = Union[int, List[Accumulator]]

#: Public alias for the shard/merge API (the parallel executor passes
#: these across process boundaries).
GroupState = _GroupState

#: A pluggable replacement for the serial base-grouping pass: given
#: ``(table, dimensions, aggregates)`` it either returns the merged
#: full-granularity states (plus the count-only flag) or ``None`` to
#: decline, in which case the serial pass runs.  The partition-parallel
#: executor (:mod:`repro.parallel`) installs one to fan the base pass
#: out across worker processes.
BaseStatesHook = Callable[
    [Table, Sequence[str], Sequence[AggregateSpec]],
    Optional[Tuple[Dict[Row, _GroupState], bool]],
]

_BASE_STATES_HOOK: Optional[BaseStatesHook] = None


def set_parallel_base_hook(
    hook: Optional[BaseStatesHook],
) -> Optional[BaseStatesHook]:
    """Install (or clear, with None) the parallel base-grouping hook.

    Returns the previously installed hook so callers can restore it.
    The hook is consulted by every cube/rollup/grouping-sets call in
    this process; it must produce states identical to
    :func:`base_states` on the same input.
    """
    global _BASE_STATES_HOOK
    previous = _BASE_STATES_HOOK
    _BASE_STATES_HOOK = hook
    return previous


def base_states(
    table: Table,
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Tuple[Dict[Row, _GroupState], bool]:
    """Full-granularity partial states: one entry per distinct key.

    The shardable half of the cube: groups the table once at full
    dimension granularity (a ``Counter`` over the zipped dimension
    columns when every aggregate is COUNT(*)) and rejects NULL
    dimension values.  Because every state supports ``merge``
    (integer addition / :meth:`Accumulator.merge`), the states of any
    row partition of *table* combine via :func:`merge_states` into
    exactly the states of the whole table — which is what makes
    partition-parallel cube execution exact rather than approximate.
    Returns the state map and whether the fast count path was taken.
    """
    dims = list(dimensions)
    d = len(dims)
    count_only = all(a.kind == "count_star" for a in aggregates)

    base: Dict[Row, _GroupState]
    with phase("cube.base_groups", rows=len(table), dims=d) as base_ph:
        if count_only:
            if d:
                key_cols = [table.column(dim) for dim in dims]
                base = dict(Counter(zip(*key_cols)))
            else:
                n = len(table)
                base = {(): n} if n else {}
            for key in base:
                _reject_null_dimensions(key, dims)
        else:
            groups = group_rows(table, dims)
            for key in groups:
                _reject_null_dimensions(key, dims)
            base = accumulate_groups(table, groups, aggregates)
        base_ph.annotate(groups=len(base), count_only=count_only)
    return base, count_only


def merge_states(
    dst: Dict[Row, _GroupState],
    src: Dict[Row, _GroupState],
    aggregates: Sequence[AggregateSpec],
    count_only: bool,
) -> None:
    """Fold the base states *src* into *dst* in place.

    Keys present in both merge via integer addition (count-only path)
    or :meth:`Accumulator.merge`; keys only in *src* are adopted, so
    *dst* takes ownership of their accumulator objects.  The operation
    is associative and commutative up to dict ordering — the property
    the parallel reduction tree relies on.
    """
    if count_only:
        for key, count in src.items():
            existing = dst.get(key)
            if existing is None:
                dst[key] = count
            else:
                dst[key] = existing + count  # type: ignore[operator]
    else:
        for key, parts in src.items():
            accs = dst.get(key)
            if accs is None:
                dst[key] = parts
            else:
                for acc, part in zip(accs, parts):  # type: ignore[arg-type]
                    acc.merge(part)


def rollup_states(
    base: Dict[Row, _GroupState],
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
    masks: Sequence[Tuple[bool, ...]],
    count_only: bool,
) -> Dict[Row, _GroupState]:
    """Merge full-granularity *base* states into one entry per *mask*.

    Each mask is a boolean keep-vector over ``dimensions``; dropped
    positions become NULL ("don't care").  The full mask reuses the
    base states without copying.
    """
    dims = list(dimensions)
    d = len(dims)
    out: Dict[Row, _GroupState] = {}
    for mask in masks:
        kept = ",".join(dim for dim, keep in zip(dims, mask) if keep)
        with phase("cube.grouping_set") as set_ph:
            before = len(out)
            if d == 0 or all(mask):
                # Full granularity: share the base states as-is.  Masked
                # keys always contain at least one NULL while base keys
                # never do, so nothing ever merges into these entries.
                out.update(base)
            elif count_only:
                for key, count in base.items():
                    masked = tuple(
                        v if keep else NULL for v, keep in zip(key, mask)
                    )
                    out[masked] = out.get(masked, 0) + count
            else:
                for key, parts in base.items():
                    masked = tuple(
                        v if keep else NULL for v, keep in zip(key, mask)
                    )
                    accs = out.get(masked)
                    if accs is None:
                        accs = [a.make_accumulator() for a in aggregates]
                        out[masked] = accs
                    for acc, part in zip(accs, parts):
                        acc.merge(part)
            set_ph.annotate(set=f"({kept})", groups=len(out) - before)
    return out


def _base_states_via_hook(
    table: Table,
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Tuple[Dict[Row, _GroupState], bool]:
    """Base states through the parallel hook when one is installed."""
    hook = _BASE_STATES_HOOK
    if hook is not None:
        result = hook(table, dimensions, aggregates)
        if result is not None:
            return result
    return base_states(table, dimensions, aggregates)


def _masked_rollup(
    table: Table,
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
    masks: Sequence[Tuple[bool, ...]],
) -> Tuple[Dict[Row, _GroupState], bool]:
    """The single-pass columnar core shared by cube and grouping sets:
    one base-grouping pass (possibly fanned out via the parallel hook)
    rolled up into one entry per mask."""
    base, count_only = _base_states_via_hook(table, dimensions, aggregates)
    out = rollup_states(base, dimensions, aggregates, masks, count_only)
    return out, count_only


def cube_from_base_states(
    base: Dict[Row, _GroupState],
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
    count_only: bool,
) -> Table:
    """Finish a cube from full-granularity base states.

    The second half of :func:`cube`: roll the states up into all
    ``2^d`` grouping sets, add the always-present grand-total row, and
    emit the result table.  The parallel executor feeds this with
    states merged across shards; running the *identical* rollup/emit
    code is what keeps sharded results byte-identical in content to
    serial ones.
    """
    masks = [
        tuple(d in s for d in dimensions)
        for s in grouping_sets(dimensions)
    ]
    groups = rollup_states(base, dimensions, aggregates, masks, count_only)
    grand_total: Row = (NULL,) * len(dimensions)
    if grand_total not in groups:
        groups[grand_total] = _default_state(aggregates, count_only)
    return _emit(dimensions, aggregates, groups, count_only)


def _emit(
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
    groups: Dict[Row, _GroupState],
    count_only: bool,
) -> Table:
    aliases = [a.alias for a in aggregates]
    n_aggs = len(aggregates)
    if count_only:
        out_rows = [
            key + (count,) * n_aggs for key, count in groups.items()
        ]
    else:
        out_rows = [
            key + tuple(acc.result() for acc in accs)
            for key, accs in groups.items()
        ]
    return Table._trusted(list(dimensions) + aliases, rows=out_rows)


def _default_state(
    aggregates: Sequence[AggregateSpec], count_only: bool
) -> _GroupState:
    if count_only:
        return 0
    return [a.make_accumulator() for a in aggregates]


def _validate_aggregates(
    table: Table, aggregates: Sequence[AggregateSpec]
) -> List[str]:
    aliases = [a.alias for a in aggregates]
    if len(set(aliases)) != len(aliases):
        raise QueryError(f"duplicate aggregate aliases: {aliases}")
    for a in aggregates:
        if a.argument is not None:
            table.position(a.argument)  # raise early on unknown columns
    return aliases


def grouping_sets_aggregate(
    table: Table,
    sets: Sequence[Sequence[str]],
    aggregates: Sequence[AggregateSpec],
    dimensions: Optional[Sequence[str]] = None,
) -> Table:
    """``GROUP BY GROUPING SETS (…)`` — aggregate over explicit sets.

    Output columns are the union of all grouping attributes (in
    ``dimensions`` order if given, else first-appearance order), with
    NULL marking attributes outside a row's grouping set.  Both
    :func:`cube` and ``WITH ROLLUP`` are special cases.
    """
    if dimensions is None:
        seen: Dict[str, None] = {}
        for s in sets:
            for a in s:
                seen.setdefault(a)
        dimensions = list(seen)
    for s in sets:
        unknown = set(s) - set(dimensions)
        if unknown:
            raise QueryError(
                f"grouping set {tuple(s)} uses attributes outside the "
                f"dimension list: {sorted(unknown)}"
            )
    table.positions(dimensions)
    _validate_aggregates(table, aggregates)
    # Deduplicate grouping sets (SQL allows repeats; one output each).
    masks = list(
        dict.fromkeys(
            tuple(d in set(s) for d in dimensions) for s in sets
        )
    )
    groups, count_only = _masked_rollup(table, dimensions, aggregates, masks)
    if len(table) == 0 and any(not tuple(s) for s in sets):
        # Empty input + empty grouping set: SQL still emits one grand
        # total row of aggregate defaults.
        groups[(NULL,) * len(dimensions)] = _default_state(
            aggregates, count_only
        )
    return _emit(dimensions, aggregates, groups, count_only)


def rollup(
    table: Table,
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """``GROUP BY … WITH ROLLUP`` over the dimension hierarchy."""
    return grouping_sets_aggregate(
        table, rollup_sets(dimensions), aggregates, dimensions
    )


def validate_cube_args(
    table: Table,
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> None:
    """The shared argument checks of :func:`cube`.

    Raises :class:`~repro.errors.QueryError` for duplicate dimensions,
    unknown columns, duplicate aggregate aliases, or aliases clashing
    with dimensions.  Exposed so the partition-parallel executor can
    validate before scattering work to the pool.
    """
    if len(set(dimensions)) != len(dimensions):
        raise QueryError(f"duplicate cube dimensions: {dimensions}")
    table.positions(dimensions)
    aliases = _validate_aggregates(table, aggregates)
    if set(aliases) & set(dimensions):
        raise QueryError("aggregate aliases clash with cube dimensions")


def cube(
    table: Table,
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """Single-pass columnar data cube.

    Output columns are ``dimensions + aggregate aliases``; "don't care"
    dimensions carry NULL.  Groups are only emitted for value
    combinations present in the data (plus the grand-total row, which
    always exists, even on empty input).
    """
    validate_cube_args(table, dimensions, aggregates)

    with phase("cube", rows=len(table), dims=len(dimensions)) as ph:
        base, count_only = _base_states_via_hook(
            table, dimensions, aggregates
        )
        result = cube_from_base_states(
            base, dimensions, aggregates, count_only
        )
        ph.annotate(groups=len(result))
    return result


def cube_rowwise(
    table: Table,
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """The previous row-at-a-time single-pass cube (baseline).

    Semantically identical to :func:`cube`: one pass over the row
    tuples, feeding every grouping-set key per row.  Kept as the "row
    path" baseline that the columnar speedup benchmark gates against,
    and as a second oracle alongside :func:`cube_bruteforce`.
    """
    if len(set(dimensions)) != len(dimensions):
        raise QueryError(f"duplicate cube dimensions: {dimensions}")
    dim_pos = table.positions(dimensions)
    arg_pos: List[Optional[int]] = [
        table.position(a.argument) if a.argument is not None else None
        for a in aggregates
    ]
    aliases = [a.alias for a in aggregates]
    if len(set(aliases)) != len(aliases):
        raise QueryError(f"duplicate aggregate aliases: {aliases}")
    if set(aliases) & set(dimensions):
        raise QueryError("aggregate aliases clash with cube dimensions")

    sets = grouping_sets(dimensions)
    masks = [
        tuple(d in s for d in dimensions)
        for s in sets
    ]
    groups: Dict[Row, List[Accumulator]] = {}
    for row in table.rows():
        dim_values = tuple(row[i] for i in dim_pos)
        _reject_null_dimensions(dim_values, dimensions)
        arg_values = tuple(
            row[i] if i is not None else None for i in arg_pos
        )
        for mask in masks:
            key = tuple(
                v if keep else NULL for v, keep in zip(dim_values, mask)
            )
            accs = groups.get(key)
            if accs is None:
                accs = [a.make_accumulator() for a in aggregates]
                groups[key] = accs
            for acc, v in zip(accs, arg_values):
                acc.add(v)

    grand_total: Row = (NULL,) * len(dimensions)
    if grand_total not in groups:
        groups[grand_total] = [a.make_accumulator() for a in aggregates]

    out_rows = [
        key + tuple(acc.result() for acc in accs)
        for key, accs in groups.items()
    ]
    return Table(list(dimensions) + aliases, out_rows)


def _reject_null_dimensions(
    dim_values: Row, dimensions: Sequence[str]
) -> None:
    """NULL *data* in a grouping column would be indistinguishable from
    the cube's NULL "don't care" marker (SQL disambiguates with the
    GROUPING() function; we simply forbid it — the explanation pipeline
    never groups by nullable columns)."""
    for value, name in zip(dim_values, dimensions):
        if value is NULL:
            raise QueryError(
                f"cube dimension {name!r} contains NULL; NULL grouping "
                "values are ambiguous with the cube's don't-care marker"
            )


def cube_bruteforce(
    table: Table,
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """Reference cube: one row-wise group-by per grouping set.

    Used as the correctness oracle in tests (deliberately built on the
    row-oriented :func:`~repro.engine.groupby.group_by_rowwise` so it
    shares no code with the columnar production path); also the
    natural shape of the 'No Cube' baseline in Figure 12 when fed
    pre-filtered inputs.
    """
    if len(table) and dimensions:
        pos = table.positions(dimensions)
        for row in table.rows():
            _reject_null_dimensions(
                tuple(row[i] for i in pos), dimensions
            )
    aliases = [a.alias for a in aggregates]
    out_columns = list(dimensions) + aliases
    out_rows: List[Row] = []
    seen_keys = set()
    for gset in grouping_sets(dimensions):
        grouped = group_by_rowwise(table, gset, aggregates)
        positions = {c: grouped.position(c) for c in grouped.columns}
        for row in grouped.rows():
            key = tuple(
                row[positions[d]] if d in gset else NULL for d in dimensions
            )
            if not gset and key in seen_keys:
                continue
            seen_keys.add(key)
            out_rows.append(
                key + tuple(row[positions[a]] for a in aliases)
            )
    return Table(out_columns, out_rows)


def dummy_rewrite(cube_table: Table, dimensions: Sequence[str]) -> Table:
    """Replace NULL with DUMMY in the dimension columns (Section 4.2).

    After the rewrite the cube can participate in plain equi-joins:
    ``NULL = NULL`` is false but ``DUMMY = DUMMY`` is true, so two
    cubes join exactly on identical explanations.  Untouched columns
    are shared with the input (zero copy).
    """
    return _swap_in_columns(cube_table, dimensions, NULL, DUMMY)


def undummy(table: Table, dimensions: Sequence[str]) -> Table:
    """Inverse of :func:`dummy_rewrite` for presenting results."""
    return _swap_in_columns(table, dimensions, DUMMY, NULL)


def _swap_in_columns(
    table: Table, columns: Sequence[str], old: Value, new: Value
) -> Table:
    pos = set(table.positions(columns))
    store = table.store()
    data: List[List[Value]] = []
    for i in range(len(table.columns)):
        col = store.column(i)
        if i in pos:
            col = [new if v is old else v for v in col]
        data.append(col)
    return Table.from_columns(table.columns, data, nrows=len(table))
