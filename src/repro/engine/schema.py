"""Schema objects: attributes, relation schemas, foreign keys, databases.

The paper's framework (Section 2) assumes a database of relations
``R_1 … R_k``, each with a primary key, connected by foreign keys of two
flavours:

* **standard** foreign keys ``R_j.fk -> R_i.pk`` with SQL cascade-delete
  semantics: deleting the referenced tuple deletes the referencing one;
* **back-and-forth** foreign keys ``R_j.fk <-> R_i.pk`` where in
  addition deleting the referencing tuple deletes the referenced one
  (every member of a collection is necessary for the collection).

A :class:`DatabaseSchema` validates itself on construction and exposes
the *schema causal graph* (Definition 3.8) through
:mod:`repro.core.causality`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SchemaError


@dataclass(frozen=True)
class Attribute:
    """A named, informally typed attribute of a relation.

    ``dtype`` is advisory ("int", "float", "str", "bool", "any"); the
    engine stores plain Python values and only uses dtype for CSV
    parsing and pretty printing.
    """

    name: str
    dtype: str = "any"

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid attribute name: {self.name!r}")
        if self.dtype not in ("any", "int", "float", "str", "bool"):
            raise SchemaError(f"invalid dtype {self.dtype!r} for {self.name}")


@dataclass(frozen=True)
class RelationSchema:
    """Schema of one relation: name, ordered attributes, primary key.

    The primary key is a subset of the attributes; the paper assumes
    every relation has one (Section 2).
    """

    name: str
    attributes: Tuple[Attribute, ...]
    primary_key: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid relation name: {self.name!r}")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {self.name}: {names}")
        if not self.primary_key:
            raise SchemaError(f"relation {self.name} must declare a primary key")
        for key_attr in self.primary_key:
            if key_attr not in names:
                raise SchemaError(
                    f"primary key attribute {key_attr!r} not in relation {self.name}"
                )
        if len(set(self.primary_key)) != len(self.primary_key):
            raise SchemaError(f"duplicate primary key attributes in {self.name}")

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """The attribute names in declaration order."""
        return tuple(a.name for a in self.attributes)

    def index_of(self, attribute: str) -> int:
        """Position of *attribute* in the row tuples.

        Raises :class:`SchemaError` for unknown attributes.
        """
        for i, a in enumerate(self.attributes):
            if a.name == attribute:
                return i
        raise SchemaError(f"relation {self.name} has no attribute {attribute!r}")

    def indexes_of(self, attributes: Sequence[str]) -> Tuple[int, ...]:
        """Positions of several attributes, in the given order."""
        return tuple(self.index_of(a) for a in attributes)

    @property
    def pk_indexes(self) -> Tuple[int, ...]:
        """Positions of the primary-key attributes."""
        return self.indexes_of(self.primary_key)

    def has_attribute(self, attribute: str) -> bool:
        """True iff this relation declares *attribute*."""
        return any(a.name == attribute for a in self.attributes)

    def __str__(self) -> str:
        cols = ", ".join(
            f"{a.name}*" if a.name in self.primary_key else a.name
            for a in self.attributes
        )
        return f"{self.name}({cols})"


def make_schema(
    name: str,
    columns: Sequence[str],
    primary_key: Sequence[str],
    dtypes: Optional[Dict[str, str]] = None,
) -> RelationSchema:
    """Convenience constructor from plain column-name lists.

    ``make_schema("Author", ["id", "name"], ["id"])`` is the short form
    of spelling out :class:`Attribute` objects by hand.
    """
    dtypes = dtypes or {}
    attrs = tuple(Attribute(c, dtypes.get(c, "any")) for c in columns)
    return RelationSchema(name, attrs, tuple(primary_key))


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key ``source.source_attrs -> target.target_attrs``.

    ``back_and_forth=True`` turns it into the paper's back-and-forth
    foreign key ``source.fk <-> target.pk`` (Section 2.2): in addition
    to the ordinary cascade (deleting the target tuple deletes its
    referencing source tuples), deleting a source tuple deletes the
    target tuple it references.
    """

    source: str
    source_attrs: Tuple[str, ...]
    target: str
    target_attrs: Tuple[str, ...]
    back_and_forth: bool = False

    def __post_init__(self) -> None:
        if len(self.source_attrs) != len(self.target_attrs):
            raise SchemaError(
                f"foreign key {self} has mismatched attribute counts"
            )
        if not self.source_attrs:
            raise SchemaError("foreign key must reference at least one attribute")
        if self.source == self.target:
            raise SchemaError(
                f"self-referencing foreign key on {self.source} is not supported"
            )

    def __str__(self) -> str:
        arrow = "<->" if self.back_and_forth else "->"
        return (
            f"{self.source}.({','.join(self.source_attrs)}) {arrow} "
            f"{self.target}.({','.join(self.target_attrs)})"
        )


def foreign_key(
    source: str,
    source_attr: str,
    target: str,
    target_attr: str,
    *,
    back_and_forth: bool = False,
) -> ForeignKey:
    """Single-attribute foreign key shorthand."""
    return ForeignKey(
        source, (source_attr,), target, (target_attr,), back_and_forth
    )


@dataclass(frozen=True)
class DatabaseSchema:
    """A database schema: relations plus foreign keys.

    Validation performed on construction:

    * relation names are unique;
    * every foreign key references existing relations and attributes;
    * every foreign key targets the *full primary key* of its target
      (the paper's foreign keys always point at primary keys);
    * the join graph induced by the foreign keys is connected and
      acyclic when ``require_acyclic`` (the default), matching the
      paper's standing assumption (Section 2) that the universal
      relation is well defined.
    """

    relations: Tuple[RelationSchema, ...]
    foreign_keys: Tuple[ForeignKey, ...] = field(default_factory=tuple)
    require_acyclic: bool = True

    def __post_init__(self) -> None:
        names = [r.name for r in self.relations]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate relation names: {names}")
        if not self.relations:
            raise SchemaError("a database schema needs at least one relation")
        by_name = {r.name: r for r in self.relations}
        for fk in self.foreign_keys:
            if fk.source not in by_name:
                raise SchemaError(f"foreign key source {fk.source!r} unknown")
            if fk.target not in by_name:
                raise SchemaError(f"foreign key target {fk.target!r} unknown")
            src, tgt = by_name[fk.source], by_name[fk.target]
            for a in fk.source_attrs:
                if not src.has_attribute(a):
                    raise SchemaError(f"{fk}: {fk.source} has no attribute {a!r}")
            for a in fk.target_attrs:
                if not tgt.has_attribute(a):
                    raise SchemaError(f"{fk}: {fk.target} has no attribute {a!r}")
            if tuple(sorted(fk.target_attrs)) != tuple(sorted(tgt.primary_key)):
                raise SchemaError(
                    f"{fk}: target attributes must be the primary key "
                    f"{tgt.primary_key} of {tgt.name}"
                )
        if self.require_acyclic and len(self.relations) > 1:
            self._check_join_graph(by_name)

    def _check_join_graph(self, by_name: Dict[str, RelationSchema]) -> None:
        """Reject disconnected or cyclic foreign-key join graphs."""
        adjacency: Dict[str, List[str]] = {r.name: [] for r in self.relations}
        edges: Dict[frozenset, "ForeignKey"] = {}
        for fk in self.foreign_keys:
            edge = frozenset((fk.source, fk.target))
            first = edges.get(edge)
            if first is not None:
                # Two FKs between the same pair of relations create a
                # cycle in the undirected join graph.
                raise SchemaError(
                    f"multiple foreign keys between {fk.source} and "
                    f"{fk.target} ({first} and {fk}); the schema causal "
                    f"graph must be simple"
                )
            edges[edge] = fk
            adjacency[fk.source].append(fk.target)
            adjacency[fk.target].append(fk.source)
        # A connected acyclic undirected graph on k nodes has k-1 edges.
        if len(edges) != len(self.relations) - 1:
            declared = "; ".join(str(fk) for fk in self.foreign_keys) or "none"
            raise SchemaError(
                f"foreign-key join graph must be a tree: "
                f"{len(self.relations)} relations need "
                f"{len(self.relations) - 1} foreign keys, got {len(edges)} "
                f"(declared: {declared})"
            )
        seen = set()
        stack = [self.relations[0].name]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency[node])
        if len(seen) != len(self.relations):
            missing = sorted(set(by_name) - seen)
            raise SchemaError(f"join graph is disconnected; unreachable: {missing}")

    # -- lookups -------------------------------------------------------

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """Relation names in declaration order."""
        return tuple(r.name for r in self.relations)

    def relation(self, name: str) -> RelationSchema:
        """The schema of relation *name* (raises SchemaError if unknown)."""
        for r in self.relations:
            if r.name == name:
                return r
        raise SchemaError(f"no relation named {name!r}")

    def has_relation(self, name: str) -> bool:
        """True iff a relation called *name* exists."""
        return any(r.name == name for r in self.relations)

    def foreign_keys_from(self, source: str) -> Tuple[ForeignKey, ...]:
        """All foreign keys whose referencing side is *source*."""
        return tuple(fk for fk in self.foreign_keys if fk.source == source)

    def foreign_keys_to(self, target: str) -> Tuple[ForeignKey, ...]:
        """All foreign keys whose referenced side is *target*."""
        return tuple(fk for fk in self.foreign_keys if fk.target == target)

    @property
    def join_graph_is_tree(self) -> bool:
        """Is the undirected foreign-key join graph a (connected) tree?

        Always true for ``require_acyclic`` schemas (construction
        enforces it); ``require_acyclic=False`` schemas such as TPC-H
        answer false when the declared keys close a cycle.  The sharper
        convergence propositions (3.5/3.10/3.11) assume a join tree, so
        :mod:`repro.analysis.fkgraph` gates on this property.
        """
        if len(self.relations) == 1:
            return not self.foreign_keys
        edges = {frozenset((fk.source, fk.target)) for fk in self.foreign_keys}
        if len(self.foreign_keys) != len(edges):
            return False  # multi-edge between one relation pair
        if len(edges) != len(self.relations) - 1:
            return False
        adjacency: Dict[str, List[str]] = {r.name: [] for r in self.relations}
        for fk in self.foreign_keys:
            adjacency[fk.source].append(fk.target)
            adjacency[fk.target].append(fk.source)
        seen = {self.relations[0].name}
        stack = [self.relations[0].name]
        while stack:
            for neighbour in adjacency[stack.pop()]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return len(seen) == len(self.relations)

    @property
    def back_and_forth_keys(self) -> Tuple[ForeignKey, ...]:
        """Only the back-and-forth foreign keys."""
        return tuple(fk for fk in self.foreign_keys if fk.back_and_forth)

    @property
    def has_back_and_forth(self) -> bool:
        """True iff any foreign key is back-and-forth."""
        return any(fk.back_and_forth for fk in self.foreign_keys)

    def attribute_owner(self, attribute: str) -> Tuple[str, ...]:
        """Names of all relations declaring *attribute*.

        Attribute names shared between relations are how natural joins
        find their join columns, so several owners are legal.
        """
        return tuple(
            r.name for r in self.relations if r.has_attribute(attribute)
        )

    def qualified(self, spec: str) -> Tuple[str, str]:
        """Resolve ``"Relation.attr"`` or a bare ``"attr"`` to a pair.

        Bare attribute names are accepted when exactly one relation
        declares them.
        """
        if "." in spec:
            rel, attr = spec.split(".", 1)
            if not self.has_relation(rel):
                raise SchemaError(f"no relation named {rel!r} in {spec!r}")
            if not self.relation(rel).has_attribute(attr):
                raise SchemaError(f"relation {rel} has no attribute {attr!r}")
            return rel, attr
        owners = self.attribute_owner(spec)
        if not owners:
            raise SchemaError(f"no relation declares attribute {spec!r}")
        if len(owners) > 1:
            raise SchemaError(
                f"attribute {spec!r} is ambiguous (in {owners}); qualify it"
            )
        return owners[0], spec

    def __str__(self) -> str:
        rels = "; ".join(str(r) for r in self.relations)
        fks = "; ".join(str(fk) for fk in self.foreign_keys)
        return f"Schema[{rels} | {fks}]"


def single_table_schema(
    name: str,
    columns: Sequence[str],
    primary_key: Sequence[str],
    dtypes: Optional[Dict[str, str]] = None,
) -> DatabaseSchema:
    """A one-relation database schema (the natality experiments use one)."""
    return DatabaseSchema((make_schema(name, columns, primary_key, dtypes),))
