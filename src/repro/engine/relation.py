"""The :class:`Relation` tuple store.

A relation is a *set* of rows (tuples of engine values) under a
:class:`~repro.engine.schema.RelationSchema`.  Rows are deduplicated on
insertion and the primary-key constraint is enforced.  A hash index on
the primary key is always maintained; secondary hash indexes on
arbitrary attribute subsets are built lazily and cached, which is what
makes the semijoin reducer and the fixpoint program fast enough for the
paper's scaling experiments.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..errors import IntegrityError
from .schema import RelationSchema
from .types import Row, Value, is_null, sort_key

#: Signature of a mutation subscriber: ``(relation, inserted, deleted)``.
#: Each call describes one *effective* batch — rows that were actually
#: added and rows that were actually removed, never no-ops.
MutationSubscriber = Callable[["Relation", Tuple[Row, ...], Tuple[Row, ...]], None]

#: A row predicate: either a callable over an attribute->value mapping
#: or a boolean :class:`~repro.engine.expressions.Expression`.
RowPredicate = Union[Callable[[Mapping[str, Value]], bool], object]


def _as_env_predicate(
    predicate: RowPredicate,
) -> Callable[[Mapping[str, Value]], bool]:
    """Normalize *predicate* to a callable over attribute environments."""
    evaluate = getattr(predicate, "evaluate", None)
    if evaluate is not None and not callable(predicate):
        return lambda env: bool(evaluate(env))
    if callable(predicate):
        return lambda env: bool(predicate(env))
    raise TypeError(
        "predicate must be callable or an Expression with .evaluate()"
    )


class Relation:
    """A named set of rows with a primary key and lazy secondary indexes.

    The store is intentionally simple: a Python set of row tuples plus
    dict-based hash indexes.  All mutating operations keep the PK index
    coherent and invalidate the secondary-index cache.
    """

    def __init__(
        self,
        schema: RelationSchema,
        rows: Optional[Iterable[Sequence[Value]]] = None,
    ) -> None:
        self.schema = schema
        self._rows: Set[Row] = set()
        self._pk_index: Dict[Row, Row] = {}
        self._secondary: Dict[Tuple[int, ...], Dict[Row, List[Row]]] = {}
        self._version = 0
        # Version-keyed snapshot of (ordered row list, column arrays);
        # rebuilt lazily after any mutation.  Never mutated in place,
        # so Tables built from it keep a consistent zero-copy view.
        self._columnar: Optional[Tuple[int, List[Row], List[List[Value]]]] = None
        self._subscribers: List[MutationSubscriber] = []
        if rows is not None:
            self.insert_many(rows)

    @property
    def version(self) -> int:
        """A counter bumped on every successful mutation.

        Lets callers (notably :meth:`Database.content_fingerprint
        <repro.engine.database.Database.content_fingerprint>`) memoize
        derived state and invalidate it when the relation changes.
        """
        return self._version

    # -- basic protocol -------------------------------------------------

    @property
    def name(self) -> str:
        """The relation name from the schema."""
        return self.schema.name

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.schema.attributes)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[Value]) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema == other.schema and self._rows == other._rows

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable
        raise TypeError("Relation objects are mutable and unhashable")

    def rows(self) -> FrozenSet[Row]:
        """A frozen snapshot of the current rows."""
        return frozenset(self._rows)

    def sorted_rows(self) -> List[Row]:
        """Rows in a deterministic total order (for tests and display)."""
        return sorted(self._rows, key=lambda r: tuple(sort_key(v) for v in r))

    # -- zero-copy column views ------------------------------------------

    def _columnar_snapshot(self) -> Tuple[List[Row], List[List[Value]]]:
        """The cached (row list, column arrays) pair for this version.

        Both structures are built at most once per mutation version and
        never mutated afterwards, so consumers (:meth:`Table.from_relation
        <repro.engine.table.Table.from_relation>`, the fingerprint
        hasher, the fixpoint index probes) can adopt them without
        copying: a later insert/delete produces *new* lists while old
        snapshots stay valid.
        """
        snapshot = self._columnar
        if snapshot is not None and snapshot[0] == self._version:
            return snapshot[1], snapshot[2]
        row_list = list(self._rows)
        if row_list:
            column_arrays = [list(col) for col in zip(*row_list)]
        else:
            column_arrays = [[] for _ in range(self.arity)]
        self._columnar = (self._version, row_list, column_arrays)
        return row_list, column_arrays

    def row_list(self) -> List[Row]:
        """The rows as an ordered list (cached per version; read-only)."""
        return self._columnar_snapshot()[0]

    def column_arrays(self) -> List[List[Value]]:
        """Per-attribute value lists aligned with :meth:`row_list`.

        Cached per mutation version and treated as immutable — the
        zero-copy contract behind columnar :class:`Table` views.
        """
        return self._columnar_snapshot()[1]

    def column_array(self, attribute: str) -> List[Value]:
        """One attribute's values aligned with :meth:`row_list`."""
        return self.column_arrays()[self.schema.index_of(attribute)]

    # -- mutation subscribers ---------------------------------------------

    def subscribe(self, callback: MutationSubscriber) -> None:
        """Register *callback* to receive effective mutation batches.

        After every successful mutating call the relation invokes each
        subscriber once as ``callback(relation, inserted, deleted)``
        with the rows that were *actually* added/removed — silent
        no-ops (re-inserts, deletes of absent rows) are excluded, so a
        subscriber that replays the batches reconstructs the relation
        exactly.  This is the capture point for
        :class:`repro.incremental.MutationLog`.
        """
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: MutationSubscriber) -> None:
        """Remove a previously registered subscriber (no-op if absent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def _notify(
        self, inserted: Sequence[Row], deleted: Sequence[Row]
    ) -> None:
        if not self._subscribers or (not inserted and not deleted):
            return
        ins = tuple(inserted)
        dels = tuple(deleted)
        for callback in list(self._subscribers):
            callback(self, ins, dels)

    # -- mutation --------------------------------------------------------

    def _insert_row(self, row: Sequence[Value]) -> Optional[Row]:
        """Insert core without notification; the new row, or None."""
        tup = tuple(row)
        if len(tup) != self.arity:
            raise IntegrityError(
                f"{self.name}: row arity {len(tup)} != schema arity {self.arity}"
            )
        if tup in self._rows:
            return None
        key = self._pk_of(tup)
        existing = self._pk_index.get(key)
        if existing is not None and existing != tup:
            raise IntegrityError(
                f"{self.name}: duplicate primary key {key} "
                f"(existing row {existing}, new row {tup})"
            )
        self._rows.add(tup)
        self._pk_index[key] = tup
        self._secondary.clear()
        self._version += 1
        return tup

    def _delete_row(self, row: Sequence[Value]) -> Optional[Row]:
        """Delete core without notification; the removed row, or None."""
        tup = tuple(row)
        if tup not in self._rows:
            return None
        self._rows.discard(tup)
        self._pk_index.pop(self._pk_of(tup), None)
        self._secondary.clear()
        self._version += 1
        return tup

    def insert(self, row: Sequence[Value]) -> bool:
        """Insert one row; returns True if it was new.

        Raises :class:`IntegrityError` on arity mismatch or when a
        *different* row with the same primary key already exists.
        Re-inserting an identical row is a silent no-op.
        """
        tup = self._insert_row(row)
        if tup is None:
            return False
        self._notify((tup,), ())
        return True

    def insert_many(self, rows: Iterable[Sequence[Value]]) -> int:
        """Insert many rows; returns the number actually added.

        Subscribers see the whole call as one batch — including the
        rows added before a mid-batch :class:`IntegrityError`, so
        mutation logs never miss an effective insert.
        """
        added = []
        try:
            for row in rows:
                tup = self._insert_row(row)
                if tup is not None:
                    added.append(tup)
        finally:
            self._notify(added, ())
        return len(added)

    def delete(self, row: Sequence[Value]) -> bool:
        """Delete one row; returns True if it was present."""
        tup = self._delete_row(row)
        if tup is None:
            return False
        self._notify((), (tup,))
        return True

    def delete_many(self, rows: Iterable[Sequence[Value]]) -> int:
        """Delete many rows; returns the number actually removed.

        Subscribers see the whole call as one batch.
        """
        removed = []
        try:
            for row in rows:
                tup = self._delete_row(row)
                if tup is not None:
                    removed.append(tup)
        finally:
            self._notify((), removed)
        return len(removed)

    def clear(self) -> None:
        """Remove all rows.

        Subscribers see the whole call as one batch.
        """
        dropped = tuple(self._rows)
        try:
            self._rows.clear()
            self._pk_index.clear()
            self._secondary.clear()
            self._version += 1
        finally:
            self._notify((), dropped)

    def _env_of(self, row: Row) -> Dict[str, Value]:
        return dict(zip(self.schema.attribute_names, row))

    def delete_where(self, predicate: RowPredicate) -> List[Row]:
        """Delete every row matching *predicate*; the deleted rows.

        *predicate* is either a callable over an attribute->value
        mapping or a boolean expression
        (:class:`~repro.engine.expressions.Expression`).  Subscribers
        see the whole call as one batch.
        """
        test = _as_env_predicate(predicate)
        matched = [row for row in self._rows if test(self._env_of(row))]
        deleted: List[Row] = []
        try:
            for row in matched:
                if self._delete_row(row) is not None:
                    deleted.append(row)
        finally:
            self._notify((), deleted)
        return deleted

    def update_where(
        self,
        predicate: RowPredicate,
        assignments: Mapping[str, Union[Value, Callable[[Mapping[str, Value]], Value]]],
    ) -> List[Row]:
        """Rewrite every row matching *predicate*; the new rows.

        *assignments* maps attribute names to replacement values, or to
        callables computing the replacement from the row's
        attribute->value environment.  The update is applied as one
        delete+insert batch (subscribers see it as a single
        notification); rows the assignments leave unchanged are
        untouched.  On a primary-key conflict the relation is rolled
        back to its pre-call state and :class:`IntegrityError`
        propagates.
        """
        positions = {
            self.schema.index_of(name): value
            for name, value in assignments.items()
        }
        test = _as_env_predicate(predicate)
        pairs: List[Tuple[Row, Row]] = []
        for row in self._rows:
            env = self._env_of(row)
            if not test(env):
                continue
            values = list(row)
            for position, value in positions.items():
                values[position] = value(env) if callable(value) else value
            new_row = tuple(values)
            if new_row != row:
                pairs.append((row, new_row))
        inserted: List[Row] = []
        deleted: List[Row] = []
        try:
            for old_row, _ in pairs:
                if self._delete_row(old_row) is not None:
                    deleted.append(old_row)
            try:
                for _, new_row in pairs:
                    if self._insert_row(new_row) is not None:
                        inserted.append(new_row)
            except IntegrityError:
                # Roll back to the pre-call state, shrinking the batch
                # lists as each mutation is undone so the finally-notify
                # below reports exactly the net delta that survived.
                while inserted:
                    self._delete_row(inserted.pop())
                while deleted:
                    self._insert_row(deleted.pop())
                raise
        finally:
            self._notify(inserted, deleted)
        return inserted

    # -- lookups ---------------------------------------------------------

    def _pk_of(self, row: Row) -> Row:
        return tuple(row[i] for i in self.schema.pk_indexes)

    def pk_values(self) -> FrozenSet[Row]:
        """All primary-key values currently present."""
        return frozenset(self._pk_index)

    def lookup_pk(self, key: Sequence[Value]) -> Optional[Row]:
        """The unique row with primary key *key*, or None."""
        return self._pk_index.get(tuple(key))

    def index_on(self, attributes: Sequence[str]) -> Dict[Row, List[Row]]:
        """A hash index keyed by the values of *attributes*.

        Indexes are cached until the next mutation.  Rows whose key
        contains NULL are excluded, matching equi-join semantics.
        """
        positions = self.schema.indexes_of(attributes)
        cached = self._secondary.get(positions)
        if cached is not None:
            return cached
        index: Dict[Row, List[Row]] = {}
        for row in self._rows:
            key = tuple(row[i] for i in positions)
            if any(is_null(v) for v in key):
                continue
            index.setdefault(key, []).append(row)
        self._secondary[positions] = index
        return index

    def project_values(self, attribute: str) -> Set[Value]:
        """The set of distinct values of *attribute* (NULL excluded)."""
        position = self.schema.index_of(attribute)
        return {row[position] for row in self._rows if not is_null(row[position])}

    def value_of(self, row: Sequence[Value], attribute: str) -> Value:
        """The value of *attribute* in *row*."""
        return tuple(row)[self.schema.index_of(attribute)]

    # -- copying ----------------------------------------------------------

    def copy(self) -> "Relation":
        """A new relation with the same schema and rows."""
        clone = Relation(self.schema)
        clone._rows = set(self._rows)
        clone._pk_index = dict(self._pk_index)
        return clone

    def restricted_to(self, rows: Iterable[Sequence[Value]]) -> "Relation":
        """A new relation containing only the given rows of this one.

        Rows not present in this relation are ignored, so this is a
        safe way to materialize ``R ∩ S`` snapshots.
        """
        keep = {tuple(r) for r in rows} & self._rows
        clone = Relation(self.schema)
        clone.insert_many(keep)
        return clone

    def without(self, rows: Iterable[Sequence[Value]]) -> "Relation":
        """A new relation equal to this one minus *rows* (set difference)."""
        drop = {tuple(r) for r in rows}
        clone = Relation(self.schema)
        clone.insert_many(r for r in self._rows if r not in drop)
        return clone

    def __repr__(self) -> str:
        return f"Relation({self.schema.name}, {len(self)} rows)"

    def pretty(self, limit: int = 20) -> str:
        """A small fixed-width rendering for debugging and examples."""
        headers = list(self.schema.attribute_names)
        body = [[repr(v) for v in row] for row in self.sorted_rows()[:limit]]
        widths = [
            max(len(h), *(len(r[i]) for r in body)) if body else len(h)
            for i, h in enumerate(headers)
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in body
        )
        if len(self) > limit:
            lines.append(f"... ({len(self) - limit} more rows)")
        return "\n".join(lines)
