"""Logical query plans with EXPLAIN / EXPLAIN ANALYZE.

The functional operators in :mod:`repro.engine.operators` execute
eagerly; this module adds a composable *plan* layer on top — the shape
a real engine exposes — so that pipelines (like Algorithm 1's cube
construction) can be built, inspected and executed as operator trees:

    plan = TopK(
        CubePlan(Select(UniversalScan(), predicate), dims, aggs),
        by="c", k=10)
    table = plan.execute(database)
    print(explain(plan))            # operator tree
    print(explain_analyze(plan, database))  # + actual row counts

Plans are immutable dataclasses; execution threads a
:class:`PlanContext` carrying the database and (for ANALYZE) observed
cardinalities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .aggregates import AggregateSpec
from .cube import cube as run_cube
from .database import Database
from .expressions import Expression
from .groupby import group_by
from .joins import antijoin as run_antijoin
from .joins import hash_join
from .joins import semijoin as run_semijoin
from .table import Table
from .topk import top_k
from .universal import universal_table


class PlanContext:
    """Execution context: the database plus per-node statistics."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.observed_rows: Dict[int, int] = {}

    def record(self, node: "PlanNode", table: Table) -> Table:
        self.observed_rows[id(node)] = len(table)
        return table


@dataclass(frozen=True)
class PlanNode:
    """Base class for all plan operators."""

    def children(self) -> Tuple["PlanNode", ...]:
        """Child operators, left to right."""
        return ()

    def label(self) -> str:
        """One-line description for EXPLAIN output."""
        raise NotImplementedError

    def run(self, ctx: PlanContext) -> Table:
        """Produce this operator's output (children already wired in)."""
        raise NotImplementedError

    def execute(self, database: Database) -> Table:
        """Execute the plan against *database*."""
        return self.run(PlanContext(database))


@dataclass(frozen=True)
class Scan(PlanNode):
    """Scan one stored relation (optionally with qualified columns)."""

    relation: str
    qualify: bool = False

    def label(self) -> str:
        suffix = " (qualified)" if self.qualify else ""
        return f"Scan {self.relation}{suffix}"

    def run(self, ctx: PlanContext) -> Table:
        table = Table.from_relation(
            ctx.database.relation(self.relation), qualify=self.qualify
        )
        return ctx.record(self, table)


@dataclass(frozen=True)
class UniversalScan(PlanNode):
    """Materialize the universal relation U(D) (qualified columns)."""

    def label(self) -> str:
        return "UniversalScan U(D)"

    def run(self, ctx: PlanContext) -> Table:
        return ctx.record(self, universal_table(ctx.database))


@dataclass(frozen=True)
class Select(PlanNode):
    """σ_predicate."""

    child: PlanNode
    predicate: Expression

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Select [{self.predicate}]"

    def run(self, ctx: PlanContext) -> Table:
        return ctx.record(self, self.child.run(ctx).filter(self.predicate))


@dataclass(frozen=True)
class Project(PlanNode):
    """Π_columns (set semantics when ``distinct``)."""

    child: PlanNode
    columns: Tuple[str, ...]
    distinct: bool = False

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        kind = "distinct " if self.distinct else ""
        return f"Project {kind}{list(self.columns)}"

    def run(self, ctx: PlanContext) -> Table:
        return ctx.record(
            self,
            self.child.run(ctx).project(list(self.columns), distinct=self.distinct),
        )


@dataclass(frozen=True)
class Rename(PlanNode):
    """ρ_mapping."""

    child: PlanNode
    mapping: Tuple[Tuple[str, str], ...]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        pairs = ", ".join(f"{a}→{b}" for a, b in self.mapping)
        return f"Rename {pairs}"

    def run(self, ctx: PlanContext) -> Table:
        return ctx.record(self, self.child.run(ctx).rename(dict(self.mapping)))


@dataclass(frozen=True)
class Join(PlanNode):
    """Inner hash equi-join."""

    left: PlanNode
    right: PlanNode
    left_on: Tuple[str, ...]
    right_on: Tuple[str, ...]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        cond = " AND ".join(
            f"{a} = {b}" for a, b in zip(self.left_on, self.right_on)
        )
        return f"HashJoin on {cond}"

    def run(self, ctx: PlanContext) -> Table:
        return ctx.record(
            self,
            hash_join(
                self.left.run(ctx),
                self.right.run(ctx),
                list(self.left_on),
                list(self.right_on),
            ),
        )


@dataclass(frozen=True)
class SemiJoin(PlanNode):
    """Left semijoin."""

    left: PlanNode
    right: PlanNode
    left_on: Tuple[str, ...]
    right_on: Tuple[str, ...]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"SemiJoin on {list(self.left_on)} = {list(self.right_on)}"

    def run(self, ctx: PlanContext) -> Table:
        return ctx.record(
            self,
            run_semijoin(
                self.left.run(ctx),
                self.right.run(ctx),
                list(self.left_on),
                list(self.right_on),
            ),
        )


@dataclass(frozen=True)
class AntiJoin(PlanNode):
    """Left antijoin."""

    left: PlanNode
    right: PlanNode
    left_on: Tuple[str, ...]
    right_on: Tuple[str, ...]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"AntiJoin on {list(self.left_on)} = {list(self.right_on)}"

    def run(self, ctx: PlanContext) -> Table:
        return ctx.record(
            self,
            run_antijoin(
                self.left.run(ctx),
                self.right.run(ctx),
                list(self.left_on),
                list(self.right_on),
            ),
        )


@dataclass(frozen=True)
class GroupBy(PlanNode):
    """Hash aggregation."""

    child: PlanNode
    keys: Tuple[str, ...]
    aggregates: Tuple[AggregateSpec, ...]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"GroupBy {list(self.keys)} [{aggs}]"

    def run(self, ctx: PlanContext) -> Table:
        return ctx.record(
            self,
            group_by(self.child.run(ctx), list(self.keys), list(self.aggregates)),
        )


@dataclass(frozen=True)
class CubePlan(PlanNode):
    """GROUP BY ... WITH CUBE."""

    child: PlanNode
    dimensions: Tuple[str, ...]
    aggregates: Tuple[AggregateSpec, ...]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"Cube {list(self.dimensions)} [{aggs}]"

    def run(self, ctx: PlanContext) -> Table:
        return ctx.record(
            self,
            run_cube(
                self.child.run(ctx),
                list(self.dimensions),
                list(self.aggregates),
            ),
        )


@dataclass(frozen=True)
class TopK(PlanNode):
    """ORDER BY <by> LIMIT k."""

    child: PlanNode
    by: str
    k: int
    descending: bool = True

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        order = "DESC" if self.descending else "ASC"
        return f"TopK {self.k} BY {self.by} {order}"

    def run(self, ctx: PlanContext) -> Table:
        return ctx.record(
            self,
            top_k(
                self.child.run(ctx),
                self.by,
                self.k,
                descending=self.descending,
            ),
        )


@dataclass(frozen=True)
class Distinct(PlanNode):
    """Duplicate elimination."""

    child: PlanNode

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return "Distinct"

    def run(self, ctx: PlanContext) -> Table:
        return ctx.record(self, self.child.run(ctx).distinct())


def explain(plan: PlanNode) -> str:
    """Render the operator tree, one line per node."""
    lines: List[str] = []

    def walk(node: PlanNode, depth: int) -> None:
        lines.append("  " * depth + "-> " + node.label())
        for child in node.children():
            walk(child, depth + 1)

    walk(plan, 0)
    return "\n".join(lines)


def explain_analyze(plan: PlanNode, database: Database) -> str:
    """Execute the plan and render the tree with actual row counts."""
    ctx = PlanContext(database)
    plan.run(ctx)
    lines: List[str] = []

    def walk(node: PlanNode, depth: int) -> None:
        rows = ctx.observed_rows.get(id(node), "?")
        lines.append(
            "  " * depth + f"-> {node.label()}  (rows={rows})"
        )
        for child in node.children():
            walk(child, depth + 1)

    walk(plan, 0)
    return "\n".join(lines)
