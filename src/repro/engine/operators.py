"""Functional relational-algebra wrappers over :class:`Table`.

These are thin, composable aliases for the Table methods plus the join
module, so query code can read like the algebra in the paper:

    select(sigma, project(U, cols))  ~  Π_cols(σ_sigma(U))
"""

from __future__ import annotations

from typing import Dict, Sequence

from .expressions import Expression, Not
from .joins import antijoin, hash_join, natural_join, semijoin
from .table import Table

__all__ = [
    "select",
    "select_not",
    "project",
    "rename",
    "distinct",
    "union",
    "difference",
    "intersect",
    "hash_join",
    "natural_join",
    "semijoin",
    "antijoin",
]


def select(table: Table, predicate: Expression) -> Table:
    """σ_predicate(table)."""
    return table.filter(predicate)


def select_not(table: Table, predicate: Expression) -> Table:
    """σ_{¬predicate}(table) — used by Rule (i) of program P."""
    return table.filter(Not(predicate))


def project(
    table: Table, columns: Sequence[str], distinct: bool = True
) -> Table:
    """Π_columns(table); set semantics by default, like the paper."""
    return table.project(columns, distinct=distinct)


def rename(table: Table, mapping: Dict[str, str]) -> Table:
    """ρ_mapping(table)."""
    return table.rename(mapping)


def distinct(table: Table) -> Table:
    """Duplicate elimination."""
    return table.distinct()


def union(left: Table, right: Table) -> Table:
    """Bag union."""
    return left.union(right)


def difference(left: Table, right: Table) -> Table:
    """Set difference."""
    return left.difference(right)


def intersect(left: Table, right: Table) -> Table:
    """Set intersection."""
    return left.intersect(right)
