"""Column-major storage backing :class:`~repro.engine.table.Table`.

A :class:`ColumnStore` keeps one plain Python list per column plus an
optional *selection vector* — a list of row indices into the base
columns.  Operators that only drop rows (filter, semijoin, antijoin,
limit) or drop columns (project) return a new store that *shares* the
base column lists and composes selections, so the hot path of
Algorithm 1 — filter the universal table, group, cube — never copies
or re-tuples data it does not touch.

Deliberately stdlib-only: the optional numpy fast path lives in
:mod:`repro.engine.fastpath` and reads columns straight out of this
store; nothing here imports numpy.

Stores are value-immutable by convention: every constructor *adopts*
the lists it is given without copying, and callers must not mutate a
list after handing it over.  All mutation-flavoured methods
(:meth:`select`, :meth:`project`, :meth:`with_column`) return new
stores.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .types import Row, Value

__all__ = ["ColumnStore"]


class ColumnStore:
    """Positional columnar storage with zero-copy row/column selection.

    Parameters
    ----------
    columns:
        One list per column.  Adopted, not copied.
    nrows:
        Number of *base* rows.  Required explicitly so zero-column
        stores (legal: ``SELECT`` with no output columns still has a
        cardinality) know their length.
    selection:
        Optional list of base-row indices defining which rows are
        visible, in order.  ``None`` means "all base rows".
    """

    __slots__ = ("_columns", "_nrows", "_selection", "_materialized")

    def __init__(
        self,
        columns: Sequence[List[Value]],
        nrows: int,
        selection: Optional[List[int]] = None,
    ) -> None:
        self._columns = list(columns)
        self._nrows = nrows
        self._selection = selection
        # Per-column cache of gathered (selection-applied) lists so a
        # column is materialized at most once per store.
        self._materialized: dict = {}

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[Row], ncols: int) -> "ColumnStore":
        """Transpose an already-validated list of row tuples."""
        if rows:
            columns = [list(column) for column in zip(*rows)]
        else:
            columns = [[] for _ in range(ncols)]
        return cls(columns, len(rows))

    @classmethod
    def from_columns(
        cls, columns: Sequence[List[Value]], nrows: int
    ) -> "ColumnStore":
        """Adopt pre-built column lists (no copy, no validation)."""
        return cls(columns, nrows)

    # -- shape --------------------------------------------------------------

    def __len__(self) -> int:
        if self._selection is not None:
            return len(self._selection)
        return self._nrows

    @property
    def ncols(self) -> int:
        return len(self._columns)

    # -- column access ------------------------------------------------------

    def column(self, index: int) -> List[Value]:
        """The values of one column, selection applied.

        Without a selection this is the base list itself (zero copy);
        with one, the gathered list is built once and cached.  Callers
        must treat the result as read-only.
        """
        if self._selection is None:
            return self._columns[index]
        cached = self._materialized.get(index)
        if cached is None:
            base = self._columns[index]
            sel = self._selection
            cached = [base[i] for i in sel]
            self._materialized[index] = cached
        return cached

    def columns(self) -> List[List[Value]]:
        """All columns, selection applied (see :meth:`column`)."""
        return [self.column(i) for i in range(len(self._columns))]

    def rows(self) -> List[Row]:
        """Materialize row tuples (the row-oriented escape hatch)."""
        cols = self.columns()
        if not cols:
            return [()] * len(self)
        return list(zip(*cols))

    # -- zero-copy derivations ---------------------------------------------

    def select(self, indices: Iterable[int]) -> "ColumnStore":
        """A store visiting only *indices* (positions in *this* store).

        Shares the base column lists; selections compose, so chains of
        filters never copy column data.
        """
        if self._selection is None:
            selection = list(indices)
        else:
            base_sel = self._selection
            selection = [base_sel[i] for i in indices]
        return ColumnStore(self._columns, self._nrows, selection)

    def project(self, indices: Sequence[int]) -> "ColumnStore":
        """A store with only the given columns (shared, in order)."""
        store = ColumnStore(
            [self._columns[i] for i in indices], self._nrows, self._selection
        )
        if self._selection is not None:
            # Share any already-gathered columns with the projection.
            for new_index, old_index in enumerate(indices):
                if old_index in self._materialized:
                    store._materialized[new_index] = self._materialized[
                        old_index
                    ]
        return store

    def with_column(self, values: List[Value]) -> "ColumnStore":
        """A store with *values* appended as a new last column.

        *values* must already be selection-applied (one entry per
        visible row); the result is re-based so existing selections do
        not apply to the new column.
        """
        columns = self.columns() + [values]
        return ColumnStore(columns, len(self))

    # -- debugging ----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sel = "all" if self._selection is None else f"{len(self._selection)}"
        return (
            f"ColumnStore(ncols={self.ncols}, nrows={self._nrows}, "
            f"selected={sel})"
        )
