"""Vectorized (numpy) cube for count aggregates.

The pure-Python cube walks every row once per grouping set with dict
lookups; at the paper's data scale (millions of rows) that dominates
Algorithm 1's cost.  This module provides a drop-in replacement for
``count(*)`` and ``count(distinct col)`` cubes:

1. factorize each dimension column into integer codes;
2. per grouping set, fold the selected codes into one mixed-radix key
   per row (vectorized);
3. ``np.unique(keys, return_counts=True)`` gives the group counts; for
   distinct counts, deduplicate (key, argument-code) pairs first.

Output is bit-identical to :func:`repro.engine.cube.cube` (Python ints,
NULL markers for don't-care dimensions), verified by tests, so
Algorithm 1 can select it automatically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryError
from .aggregates import AggregateSpec
from .cube import grouping_sets
from .table import Table
from .types import NULL, Row, Value, is_null

SUPPORTED_KINDS = ("count_star", "count_distinct")


def supports(aggregates: Sequence[AggregateSpec]) -> bool:
    """True iff every aggregate has a vectorized implementation."""
    return all(a.kind in SUPPORTED_KINDS for a in aggregates)


def _factorize(
    table: Table, column: str, *, allow_null: bool = False
) -> Tuple[np.ndarray, List[Value]]:
    """Map a column to integer codes plus the decoding list."""
    mapping: Dict[Value, int] = {}
    values: List[Value] = []
    codes = np.empty(len(table), dtype=np.int64)
    for i, v in enumerate(table.column(column)):
        if is_null(v):
            if not allow_null:
                raise QueryError(
                    f"cube dimension {column!r} contains NULL; NULL "
                    "grouping values are ambiguous with the cube's "
                    "don't-care marker"
                )
            v = NULL
        code = mapping.get(v)
        if code is None:
            code = len(values)
            mapping[v] = code
            values.append(v)
        codes[i] = code
    return codes, values


def cube_numpy(
    table: Table,
    dimensions: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """Vectorized ``GROUP BY … WITH CUBE`` for count aggregates.

    Semantically identical to :func:`repro.engine.cube.cube` restricted
    to ``count_star`` / ``count_distinct`` aggregates.
    """
    if not supports(aggregates):
        unsupported = [a.kind for a in aggregates if a.kind not in SUPPORTED_KINDS]
        raise QueryError(
            f"cube_numpy supports {SUPPORTED_KINDS}, not {unsupported}"
        )
    if len(set(dimensions)) != len(dimensions):
        raise QueryError(f"duplicate cube dimensions: {dimensions}")
    aliases = [a.alias for a in aggregates]
    if len(set(aliases)) != len(aliases):
        raise QueryError(f"duplicate aggregate aliases: {aliases}")
    if set(aliases) & set(dimensions):
        raise QueryError("aggregate aliases clash with cube dimensions")

    n = len(table)
    dim_codes: List[np.ndarray] = []
    dim_values: List[List[Value]] = []
    for d in dimensions:
        codes, values = _factorize(table, d)
        dim_codes.append(codes)
        dim_values.append(values)
    radices = [max(len(v), 1) for v in dim_values]

    arg_codes: List[Optional[np.ndarray]] = []
    arg_valid: List[Optional[np.ndarray]] = []
    for a in aggregates:
        if a.kind == "count_star":
            arg_codes.append(None)
            arg_valid.append(None)
        else:
            codes, values = _factorize(table, a.argument, allow_null=True)
            null_code = next(
                (i for i, v in enumerate(values) if v is NULL), None
            )
            valid = (
                np.ones(n, dtype=bool)
                if null_code is None
                else codes != null_code
            )
            arg_codes.append(codes)
            arg_valid.append(valid)

    # Accumulate results per grouping set.
    results: Dict[Row, List[Value]] = {}
    masks = [
        tuple(d in s for d in dimensions) for s in grouping_sets(dimensions)
    ]
    for mask in masks:
        selected = [i for i, keep in enumerate(mask) if keep]
        if n:
            keys = np.zeros(n, dtype=np.int64)
            for i in selected:
                keys = keys * radices[i] + dim_codes[i]
        else:
            keys = np.zeros(0, dtype=np.int64)

        per_agg: List[Dict[int, int]] = []
        group_keys: Optional[np.ndarray] = None
        for a, codes, valid in zip(aggregates, arg_codes, arg_valid):
            if a.kind == "count_star":
                uniq, counts = np.unique(keys, return_counts=True)
                per_agg.append(dict(zip(uniq.tolist(), counts.tolist())))
            else:
                assert codes is not None and valid is not None
                sub_keys = keys[valid]
                sub_codes = codes[valid]
                if len(sub_keys):
                    pairs = np.unique(
                        np.stack([sub_keys, sub_codes], axis=1), axis=0
                    )
                    uniq, counts = np.unique(pairs[:, 0], return_counts=True)
                    per_agg.append(dict(zip(uniq.tolist(), counts.tolist())))
                else:
                    per_agg.append({})
            if group_keys is None:
                group_keys = np.unique(keys)

        assert group_keys is not None
        for key in group_keys.tolist():
            # Decode the mixed-radix key back into dimension values.
            decoded: List[Value] = [NULL] * len(dimensions)
            remainder = key
            for i in reversed(selected):
                remainder, code = divmod(remainder, radices[i])
                decoded[i] = dim_values[i][code]
            out_key = tuple(decoded)
            results[out_key] = [
                agg_map.get(key, 0) for agg_map in per_agg
            ]

    grand_total: Row = (NULL,) * len(dimensions)
    if grand_total not in results:
        results[grand_total] = [0 for _ in aggregates]

    out_rows = [key + tuple(vals) for key, vals in results.items()]
    return Table(list(dimensions) + aliases, out_rows)
