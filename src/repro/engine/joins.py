"""Join algorithms: hash equi-join, semijoin, antijoin, full outer join.

All joins are hash based.  Equi-joins never match NULL keys (SQL
semantics); the cube pipeline therefore rewrites cube NULLs to the
DUMMY constant before joining (Section 4.2), and :func:`full_outer_join`
implements the m-way combination step of Algorithm 1.

The implementations are columnar: probe keys come from zipped key
columns, matches are collected as *gather lists* of row positions, and
output columns are built with one gather per column instead of
concatenating row tuples.  Semijoin and antijoin never copy at all —
they return zero-copy selections over the left table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..obs import phase
from .table import Table
from .types import NULL, Row, Value, is_null


def _gather(column: List[Value], indices: List[int]) -> List[Value]:
    return [column[i] for i in indices]


def hash_join(
    left: Table,
    right: Table,
    left_on: Sequence[str],
    right_on: Sequence[str],
    *,
    right_keep: Optional[Sequence[str]] = None,
) -> Table:
    """Inner hash equi-join of two tables.

    Output columns are the left columns followed by the right columns,
    except that right join columns (which duplicate left values) are
    dropped; ``right_keep`` can restrict which non-join right columns
    survive.  Column-name clashes raise :class:`QueryError` — callers
    qualify names first.
    """
    if len(left_on) != len(right_on):
        raise QueryError("join key lists must have equal length")
    left.positions(left_on)
    right_join_cols = set(right_on)
    if right_keep is None:
        keep_cols = [c for c in right.columns if c not in right_join_cols]
    else:
        keep_cols = [c for c in right_keep if c not in right_join_cols]
    right.positions(keep_cols)
    out_columns = list(left.columns) + keep_cols
    if len(set(out_columns)) != len(out_columns):
        raise QueryError(
            f"join would produce duplicate columns: {out_columns}"
        )
    index = right.index_positions(right_on)
    left_idx: List[int] = []
    right_idx: List[int] = []
    if not left_on:
        # Degenerate empty key: every left row matches every right row.
        matches = index.get((), [])
        for i in range(len(left)):
            for j in matches:
                left_idx.append(i)
                right_idx.append(j)
    else:
        left_key_cols = [left.column(c) for c in left_on]
        for i, key in enumerate(zip(*left_key_cols)):
            if any(is_null(v) for v in key):
                continue
            matches = index.get(key)
            if matches:
                for j in matches:
                    left_idx.append(i)
                    right_idx.append(j)
    data = [_gather(col, left_idx) for col in left.column_arrays()]
    data.extend(_gather(right.column(c), right_idx) for c in keep_cols)
    return Table.from_columns(out_columns, data, nrows=len(left_idx))


def natural_join(left: Table, right: Table) -> Table:
    """Natural join on all shared column names."""
    shared = [c for c in left.columns if right.has_column(c)]
    if not shared:
        raise QueryError(
            f"no shared columns between {left.columns} and {right.columns}"
        )
    return hash_join(left, right, shared, shared)


def _key_set(table: Table, columns: Sequence[str]) -> set:
    key_cols = [table.column(c) for c in columns]
    return set(zip(*key_cols))


def semijoin(
    left: Table,
    right: Table,
    left_on: Sequence[str],
    right_on: Sequence[str],
) -> Table:
    """Rows of *left* that join with at least one row of *right*.

    Returned as a zero-copy selection over the left table's columns.
    """
    if len(left_on) != len(right_on):
        raise QueryError("semijoin key lists must have equal length")
    left.positions(left_on)
    right.positions(right_on)
    if not left_on:
        return left if len(right) else left.take([])
    keys = _key_set(right, right_on)
    left_key_cols = [left.column(c) for c in left_on]
    selection = [
        i
        for i, key in enumerate(zip(*left_key_cols))
        if key in keys and not any(is_null(v) for v in key)
    ]
    return left.take(selection)


def antijoin(
    left: Table,
    right: Table,
    left_on: Sequence[str],
    right_on: Sequence[str],
) -> Table:
    """Rows of *left* that join with no row of *right*.

    Rows whose key contains NULL never join, so they are *kept* — the
    complement of :func:`semijoin`.  Zero-copy selection, like
    :func:`semijoin`.
    """
    if len(left_on) != len(right_on):
        raise QueryError("antijoin key lists must have equal length")
    left.positions(left_on)
    right.positions(right_on)
    if not left_on:
        return left.take([]) if len(right) else left
    keys = _key_set(right, right_on)
    left_key_cols = [left.column(c) for c in left_on]
    selection = [
        i
        for i, key in enumerate(zip(*left_key_cols))
        if key not in keys or any(is_null(v) for v in key)
    ]
    return left.take(selection)


def full_outer_join(
    left: Table,
    right: Table,
    on: Sequence[str],
    *,
    fill: Value = NULL,
) -> Table:
    """Full outer equi-join on the shared key columns *on*.

    Non-key columns from both sides are kept; rows unmatched on either
    side get *fill* (default NULL) in the other side's non-key columns.
    This is the combination step of Algorithm 1: cubes for different
    aggregate queries may contain different explanation rows, and an
    explanation absent from a cube must survive with a default value.

    Both tables must contain all columns in *on*.  Key columns are
    emitted once.
    """
    left.positions(on)
    right.positions(on)
    left_rest = [c for c in left.columns if c not in set(on)]
    right_rest = [c for c in right.columns if c not in set(on)]
    clash = set(left_rest) & set(right_rest)
    if clash:
        raise QueryError(f"full outer join value-column clash: {sorted(clash)}")
    out_columns = list(on) + left_rest + right_rest

    left_key_cols = [left.column(c) for c in on]
    right_key_cols = [right.column(c) for c in on]

    # Index the right side by position; NULL keys on either side are
    # treated as ordinary unmatched rows (they appear with fill on the
    # other side).
    right_index: Dict[Row, List[int]] = {}
    right_null_idx: List[int] = []
    for j, key in enumerate(zip(*right_key_cols)):
        if any(is_null(v) for v in key):
            right_null_idx.append(j)
        else:
            right_index.setdefault(key, []).append(j)
    if not on and len(right):
        # Zero key columns: every row shares the () key.
        right_index[()] = [j for j in range(len(right))]
        right_null_idx = []

    # Pair up row positions: (left position or None, right position or
    # None); the gather below fills the missing side.
    pairs: List[Tuple[Optional[int], Optional[int]]] = []
    matched_keys = set()
    left_keys = list(zip(*left_key_cols)) if on else [()] * len(left)
    for i, key in enumerate(left_keys):
        if not any(is_null(v) for v in key) and key in right_index:
            matched_keys.add(key)
            for j in right_index[key]:
                pairs.append((i, j))
        else:
            pairs.append((i, None))
    for key, right_rows in right_index.items():
        if key in matched_keys:
            continue
        for j in right_rows:
            pairs.append((None, j))
    for j in right_null_idx:
        pairs.append((None, j))

    data: List[List[Value]] = []
    for lcol, rcol in zip(left_key_cols, right_key_cols):
        data.append(
            [lcol[i] if i is not None else rcol[j] for i, j in pairs]
        )
    for c in left_rest:
        col = left.column(c)
        data.append([col[i] if i is not None else fill for i, _ in pairs])
    for c in right_rest:
        col = right.column(c)
        data.append([col[j] if j is not None else fill for _, j in pairs])
    return Table.from_columns(out_columns, data, nrows=len(pairs))


def full_outer_join_many(
    tables: Sequence[Table],
    on: Sequence[str],
    *,
    fill: Value = NULL,
) -> Table:
    """Left-deep chain of full outer joins over *tables*."""
    if not tables:
        raise QueryError("full_outer_join_many needs at least one table")
    with phase("dummy_join", tables=len(tables)) as ph:
        result = tables[0]
        for table in tables[1:]:
            result = full_outer_join(result, table, on, fill=fill)
        ph.annotate(rows=len(result))
    return result
