"""Join algorithms: hash equi-join, semijoin, antijoin, full outer join.

All joins are hash based.  Equi-joins never match NULL keys (SQL
semantics); the cube pipeline therefore rewrites cube NULLs to the
DUMMY constant before joining (Section 4.2), and :func:`full_outer_join`
implements the m-way combination step of Algorithm 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import QueryError
from .table import Table
from .types import NULL, Row, Value, is_null


def hash_join(
    left: Table,
    right: Table,
    left_on: Sequence[str],
    right_on: Sequence[str],
    *,
    right_keep: Optional[Sequence[str]] = None,
) -> Table:
    """Inner hash equi-join of two tables.

    Output columns are the left columns followed by the right columns,
    except that right join columns (which duplicate left values) are
    dropped; ``right_keep`` can restrict which non-join right columns
    survive.  Column-name clashes raise :class:`QueryError` — callers
    qualify names first.
    """
    if len(left_on) != len(right_on):
        raise QueryError("join key lists must have equal length")
    left_pos = left.positions(left_on)
    right_join_cols = set(right_on)
    if right_keep is None:
        keep_cols = [c for c in right.columns if c not in right_join_cols]
    else:
        keep_cols = [c for c in right_keep if c not in right_join_cols]
    keep_pos = right.positions(keep_cols)
    out_columns = list(left.columns) + keep_cols
    if len(set(out_columns)) != len(out_columns):
        raise QueryError(
            f"join would produce duplicate columns: {out_columns}"
        )
    index = right.index_on(right_on)
    out_rows: List[Row] = []
    for lrow in left.rows():
        key = tuple(lrow[i] for i in left_pos)
        if any(is_null(v) for v in key):
            continue
        for rrow in index.get(key, ()):
            out_rows.append(lrow + tuple(rrow[i] for i in keep_pos))
    return Table(out_columns, out_rows)


def natural_join(left: Table, right: Table) -> Table:
    """Natural join on all shared column names."""
    shared = [c for c in left.columns if right.has_column(c)]
    if not shared:
        raise QueryError(
            f"no shared columns between {left.columns} and {right.columns}"
        )
    return hash_join(left, right, shared, shared)


def semijoin(
    left: Table,
    right: Table,
    left_on: Sequence[str],
    right_on: Sequence[str],
) -> Table:
    """Rows of *left* that join with at least one row of *right*."""
    if len(left_on) != len(right_on):
        raise QueryError("semijoin key lists must have equal length")
    left_pos = left.positions(left_on)
    keys = set(right.index_on(right_on))
    out = [
        row
        for row in left.rows()
        if not any(is_null(row[i]) for i in left_pos)
        and tuple(row[i] for i in left_pos) in keys
    ]
    return Table(left.columns, out)


def antijoin(
    left: Table,
    right: Table,
    left_on: Sequence[str],
    right_on: Sequence[str],
) -> Table:
    """Rows of *left* that join with no row of *right*.

    Rows whose key contains NULL never join, so they are *kept* — the
    complement of :func:`semijoin`.
    """
    if len(left_on) != len(right_on):
        raise QueryError("antijoin key lists must have equal length")
    left_pos = left.positions(left_on)
    keys = set(right.index_on(right_on))
    out = [
        row
        for row in left.rows()
        if any(is_null(row[i]) for i in left_pos)
        or tuple(row[i] for i in left_pos) not in keys
    ]
    return Table(left.columns, out)


def full_outer_join(
    left: Table,
    right: Table,
    on: Sequence[str],
    *,
    fill: Value = NULL,
) -> Table:
    """Full outer equi-join on the shared key columns *on*.

    Non-key columns from both sides are kept; rows unmatched on either
    side get *fill* (default NULL) in the other side's non-key columns.
    This is the combination step of Algorithm 1: cubes for different
    aggregate queries may contain different explanation rows, and an
    explanation absent from a cube must survive with a default value.

    Both tables must contain all columns in *on*.  Key columns are
    emitted once.
    """
    left_key_pos = left.positions(on)
    right_key_pos = right.positions(on)
    left_rest = [c for c in left.columns if c not in set(on)]
    right_rest = [c for c in right.columns if c not in set(on)]
    clash = set(left_rest) & set(right_rest)
    if clash:
        raise QueryError(f"full outer join value-column clash: {sorted(clash)}")
    left_rest_pos = left.positions(left_rest)
    right_rest_pos = right.positions(right_rest)
    out_columns = list(on) + left_rest + right_rest

    # Index the right side; NULL keys on either side are treated as
    # ordinary unmatched rows (they appear with fill on the other side).
    right_index: Dict[Row, List[Row]] = {}
    right_null_rows: List[Row] = []
    for rrow in right.rows():
        key = tuple(rrow[i] for i in right_key_pos)
        if any(is_null(v) for v in key):
            right_null_rows.append(rrow)
        else:
            right_index.setdefault(key, []).append(rrow)

    out_rows: List[Row] = []
    matched_keys = set()
    for lrow in left.rows():
        key = tuple(lrow[i] for i in left_key_pos)
        lvals = tuple(lrow[i] for i in left_rest_pos)
        if not any(is_null(v) for v in key) and key in right_index:
            matched_keys.add(key)
            for rrow in right_index[key]:
                rvals = tuple(rrow[i] for i in right_rest_pos)
                out_rows.append(key + lvals + rvals)
        else:
            out_rows.append(key + lvals + (fill,) * len(right_rest))
    for key, rrows in right_index.items():
        if key in matched_keys:
            continue
        for rrow in rrows:
            rvals = tuple(rrow[i] for i in right_rest_pos)
            out_rows.append(key + (fill,) * len(left_rest) + rvals)
    for rrow in right_null_rows:
        key = tuple(rrow[i] for i in right_key_pos)
        rvals = tuple(rrow[i] for i in right_rest_pos)
        out_rows.append(key + (fill,) * len(left_rest) + rvals)
    return Table(out_columns, out_rows)


def full_outer_join_many(
    tables: Sequence[Table],
    on: Sequence[str],
    *,
    fill: Value = NULL,
) -> Table:
    """Left-deep chain of full outer joins over *tables*."""
    if not tables:
        raise QueryError("full_outer_join_many needs at least one table")
    result = tables[0]
    for table in tables[1:]:
        result = full_outer_join(result, table, on, fill=fill)
    return result
