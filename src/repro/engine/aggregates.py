"""Aggregate functions: COUNT(*), COUNT(DISTINCT), SUM, AVG, MIN, MAX.

Each aggregate is a small accumulator object created per group by the
group-by and cube operators.  NULL inputs are ignored (SQL semantics)
except by COUNT(*), which counts rows regardless.

The explanation framework cares about two of these in particular:
``count_star`` and ``count_distinct`` are the aggregates for which the
paper proves intervention-additivity conditions (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set

from ..errors import QueryError
from .types import NULL, Value, is_null, sql_lt


class Accumulator:
    """One group's running aggregate state.

    Besides the classic per-row :meth:`add`, accumulators support the
    vectorized protocol used by the columnar group-by/cube operators:
    :meth:`add_many` consumes a whole column slice, :meth:`add_repeat`
    consumes ``count`` copies of one value (the COUNT(*) fast path),
    and :meth:`merge` folds another accumulator's state in — which is
    what lets the single-pass cube aggregate each full-dimension group
    once and roll the partial states up into all ``2^d`` grouping sets.
    """

    def add(self, value: Value) -> None:
        """Feed one input value (the value of the aggregate argument)."""
        raise NotImplementedError

    def add_many(self, values: Iterable[Value]) -> None:
        """Feed a column slice (overridden with vectorized loops)."""
        for value in values:
            self.add(value)

    def add_repeat(self, value: Value, count: int) -> None:
        """Feed *count* copies of *value*."""
        for _ in range(count):
            self.add(value)

    def merge(self, other: "Accumulator") -> None:
        """Fold another accumulator of the same kind into this one."""
        raise NotImplementedError

    def result(self) -> Value:
        """The aggregate value for the rows seen so far."""
        raise NotImplementedError


class CountStarAccumulator(Accumulator):
    """COUNT(*): counts every row, including NULL arguments."""

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Value) -> None:
        self.count += 1

    def add_many(self, values: Iterable[Value]) -> None:
        self.count += sum(1 for _ in values)

    def add_repeat(self, value: Value, count: int) -> None:
        self.count += count

    def merge(self, other: "Accumulator") -> None:
        self.count += other.count  # type: ignore[attr-defined]

    def result(self) -> int:
        return self.count


class CountAccumulator(Accumulator):
    """COUNT(expr): counts non-NULL arguments."""

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Value) -> None:
        if not is_null(value):
            self.count += 1

    def add_many(self, values: Iterable[Value]) -> None:
        self.count += sum(1 for v in values if not is_null(v))

    def add_repeat(self, value: Value, count: int) -> None:
        if not is_null(value):
            self.count += count

    def merge(self, other: "Accumulator") -> None:
        self.count += other.count  # type: ignore[attr-defined]

    def result(self) -> int:
        return self.count


class CountDistinctAccumulator(Accumulator):
    """COUNT(DISTINCT expr): counts distinct non-NULL arguments."""

    def __init__(self) -> None:
        self.seen: Set[Value] = set()

    def add(self, value: Value) -> None:
        if not is_null(value):
            self.seen.add(value)

    def add_many(self, values: Iterable[Value]) -> None:
        self.seen.update(v for v in values if not is_null(v))

    def add_repeat(self, value: Value, count: int) -> None:
        if count > 0 and not is_null(value):
            self.seen.add(value)

    def merge(self, other: "Accumulator") -> None:
        self.seen |= other.seen  # type: ignore[attr-defined]

    def result(self) -> int:
        return len(self.seen)


class SumAccumulator(Accumulator):
    """SUM(expr): NULL if no non-NULL inputs (SQL semantics)."""

    def __init__(self) -> None:
        self.total: float = 0
        self.any = False

    def add(self, value: Value) -> None:
        if is_null(value):
            return
        if not isinstance(value, (int, float)):
            raise QueryError(f"SUM over non-numeric value {value!r}")
        self.total += value
        self.any = True

    def add_repeat(self, value: Value, count: int) -> None:
        if count <= 0 or is_null(value):
            return
        if not isinstance(value, (int, float)):
            raise QueryError(f"SUM over non-numeric value {value!r}")
        self.total += value * count
        self.any = True

    def merge(self, other: "Accumulator") -> None:
        if other.any:  # type: ignore[attr-defined]
            self.total += other.total  # type: ignore[attr-defined]
            self.any = True

    def result(self) -> Value:
        return self.total if self.any else NULL


class AvgAccumulator(Accumulator):
    """AVG(expr): NULL if no non-NULL inputs."""

    def __init__(self) -> None:
        self.total: float = 0
        self.count = 0

    def add(self, value: Value) -> None:
        if is_null(value):
            return
        if not isinstance(value, (int, float)):
            raise QueryError(f"AVG over non-numeric value {value!r}")
        self.total += value
        self.count += 1

    def add_repeat(self, value: Value, count: int) -> None:
        if count <= 0 or is_null(value):
            return
        if not isinstance(value, (int, float)):
            raise QueryError(f"AVG over non-numeric value {value!r}")
        self.total += value * count
        self.count += count

    def merge(self, other: "Accumulator") -> None:
        self.total += other.total  # type: ignore[attr-defined]
        self.count += other.count  # type: ignore[attr-defined]

    def result(self) -> Value:
        if self.count == 0:
            return NULL
        return self.total / self.count


class MinAccumulator(Accumulator):
    """MIN(expr) under the engine's total order, NULLs ignored."""

    def __init__(self) -> None:
        self.best: Value = NULL

    def add(self, value: Value) -> None:
        if is_null(value):
            return
        if is_null(self.best) or sql_lt(value, self.best):
            self.best = value

    def add_repeat(self, value: Value, count: int) -> None:
        if count > 0:
            self.add(value)

    def merge(self, other: "Accumulator") -> None:
        self.add(other.best)  # type: ignore[attr-defined]

    def result(self) -> Value:
        return self.best


class MaxAccumulator(Accumulator):
    """MAX(expr) under the engine's total order, NULLs ignored."""

    def __init__(self) -> None:
        self.best: Value = NULL

    def add(self, value: Value) -> None:
        if is_null(value):
            return
        if is_null(self.best) or sql_lt(self.best, value):
            self.best = value

    def add_repeat(self, value: Value, count: int) -> None:
        if count > 0:
            self.add(value)

    def merge(self, other: "Accumulator") -> None:
        self.add(other.best)  # type: ignore[attr-defined]

    def result(self) -> Value:
        return self.best


_FACTORIES = {
    "count_star": CountStarAccumulator,
    "count": CountAccumulator,
    "count_distinct": CountDistinctAccumulator,
    "sum": SumAccumulator,
    "avg": AvgAccumulator,
    "min": MinAccumulator,
    "max": MaxAccumulator,
}

AGGREGATE_KINDS = tuple(_FACTORIES)


@dataclass(frozen=True)
class AggregateSpec:
    """Specification of one aggregate column.

    ``kind`` is one of :data:`AGGREGATE_KINDS`; ``argument`` is the
    input column (ignored — and allowed to be None — for
    ``count_star``); ``alias`` names the output column.
    """

    kind: str
    argument: Optional[str]
    alias: str

    def __post_init__(self) -> None:
        if self.kind not in _FACTORIES:
            raise QueryError(
                f"unknown aggregate {self.kind!r}; choose from {AGGREGATE_KINDS}"
            )
        if self.kind != "count_star" and self.argument is None:
            raise QueryError(f"aggregate {self.kind} requires an argument column")
        if not self.alias:
            raise QueryError("aggregate needs a non-empty alias")

    def make_accumulator(self) -> Accumulator:
        """A fresh accumulator for one group."""
        return _FACTORIES[self.kind]()

    @property
    def default_value(self) -> Value:
        """Value of this aggregate over an empty input.

        Counts are 0 over the empty set; the others are NULL.  Used by
        Algorithm 1 when an explanation is missing from a cube.
        """
        if self.kind in ("count_star", "count", "count_distinct"):
            return 0
        return NULL

    def __str__(self) -> str:
        if self.kind == "count_star":
            return f"count(*) AS {self.alias}"
        if self.kind == "count_distinct":
            return f"count(distinct {self.argument}) AS {self.alias}"
        return f"{self.kind}({self.argument}) AS {self.alias}"


def count_star(alias: str = "value") -> AggregateSpec:
    """COUNT(*) spec."""
    return AggregateSpec("count_star", None, alias)


def count_distinct(argument: str, alias: str = "value") -> AggregateSpec:
    """COUNT(DISTINCT argument) spec."""
    return AggregateSpec("count_distinct", argument, alias)


def agg_sum(argument: str, alias: str = "value") -> AggregateSpec:
    """SUM(argument) spec."""
    return AggregateSpec("sum", argument, alias)


def agg_avg(argument: str, alias: str = "value") -> AggregateSpec:
    """AVG(argument) spec."""
    return AggregateSpec("avg", argument, alias)


def agg_min(argument: str, alias: str = "value") -> AggregateSpec:
    """MIN(argument) spec."""
    return AggregateSpec("min", argument, alias)


def agg_max(argument: str, alias: str = "value") -> AggregateSpec:
    """MAX(argument) spec."""
    return AggregateSpec("max", argument, alias)
