"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``demo``
    Run one of the paper's experiments end to end on a synthetic
    dataset and print the ranked explanations::

        python -m repro demo natality --top 5
        python -m repro demo dblp --by aggravation

``intervene``
    Compute the minimal intervention Δ^φ for a predicate on the
    built-in running example (or a dataset) and print the deleted
    tuples and the fixpoint trace::

        python -m repro intervene "Author.name = 'JG' AND Publication.year = 2001"

``explain``
    Explain a ratio question over a single-table CSV file: counts of
    rows matching the numerator filter divided by counts matching the
    denominator filter, searched over the given attributes::

        python -m repro explain births.csv --pk bid \\
            --numerator ap=good --denominator ap=poor \\
            --dir high --attributes marital,tobacco --top 5

``analyze``
    Print the static plan certificate — the certified convergence
    bound with the proposition that derived it, per-aggregate
    additivity verdicts, and any ``RS###`` lint diagnostics — for one
    or more bundled datasets, with no ranking work::

        python -m repro analyze chain --chain-p 4
        python -m repro analyze --all --strict --json

``bench matrix``
    Sweep dataset × question × method × strategy × backend × shards,
    cross-check that every cell of the same (dataset, question,
    resolved method) group agrees on table and ranking fingerprints,
    and write the per-cell report (wall time, fingerprints,
    certificate verdicts, phase breakdown) to BENCH_matrix.json::

        python -m repro bench matrix --preset small

``sql``
    Print the SQL script of Algorithm 1, or program P as datalog, for
    one of the built-in schemas::

        python -m repro sql dblp
        python -m repro sql running-example --datalog

``serve``
    Run the explanation HTTP service (asyncio, stdlib only): cached,
    request-coalescing ``/v1/explain`` and ``/v1/topk`` endpoints over
    the built-in datasets and any execution backend::

        python -m repro serve --port 8722
        curl -s localhost:8722/v1/health
        curl -s localhost:8722/v1/metrics   # Prometheus text format

    See ``docs/service.md`` for the wire protocol.

Most analysis commands accept ``--profile``, which enables the tracer
for the run and prints the phase tree (wall/CPU time per pipeline
phase, row counts, program-P iterations vs the certified bound) after
the normal output.  See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ._version import __version__
from .core import (
    AggregateQuery,
    Direction,
    Explainer,
    UserQuestion,
    compute_intervention,
    parse_explanation,
    ratio_query,
    render_ranking,
)
from .backends import backend_names
from .core.sqlgen import DIALECTS, algorithm1_script, program_p_datalog
from .datasets import dblp, geodblp, natality, running_example, tpch
from .engine import Col, Comparison, Const, conj, count_star
from .engine.csvio import load_table
from .engine.database import Database
from .engine.schema import single_table_schema
from .errors import ReproError

DEMOS = ("running-example", "natality", "dblp", "geodblp", "tpch")

#: Commands that accept ``--profile`` (set in ``build_parser``).
PROFILED_COMMANDS = ("demo", "intervene", "explain", "ask", "report")


def _print_profile() -> None:
    """Render the tracer's phase tree plus a program-P summary line.

    Printed after the command's normal output when ``--profile`` is
    set.  The summary cross-checks the observed program-P iteration
    counts against the statically certified convergence bound carried
    on the spans — the run-time witness of Propositions 3.4–3.11.
    """
    from .obs import get_tracer, render_tree

    tracer = get_tracer()
    roots = tracer.roots()
    print()
    print("-- profile (phase tree: wall / cpu / payload) --")
    if not roots:
        print("(no phases recorded)")
        return
    print(render_tree(roots))
    runs = [
        span
        for root in roots
        for span in root.walk()
        if span.name == "program_p" and "iterations" in span.payload
    ]
    if runs:
        iterations = max(int(s.payload["iterations"]) for s in runs)
        bounds = [
            int(str(s.payload["certified_bound"]))
            for s in runs
            if s.payload.get("certified_bound") is not None
        ]
        line = (
            f"program P: {len(runs)} fixpoint run(s), "
            f"max {iterations} productive iteration(s)"
        )
        if bounds:
            bound = max(bounds)
            verdict = "within" if iterations <= bound else "EXCEEDS"
            line += f" — {verdict} certified bound {bound}"
        print(line)
    if tracer.dropped:
        print(f"({tracer.dropped} span(s) dropped at the max_spans cap)")

#: Datasets ``repro analyze`` accepts: every demo plus the Example 3.7
#: worst-case chain (whose size is set with ``--chain-p``).
ANALYZE_DATASETS = DEMOS + ("chain",)


def _demo_setup(name: str, rows: int, scale: float, seed: int):
    """(database, question, attributes) for one named demo."""
    if name == "natality":
        db = natality.generate(rows=rows, seed=seed)
        return db, natality.q_race_question(), natality.default_attributes("race")
    if name == "dblp":
        db = dblp.generate(scale=scale, seed=seed)
        return db, dblp.bump_question(), dblp.default_attributes()
    if name == "geodblp":
        db = geodblp.generate(scale=scale, seed=seed)
        return db, geodblp.uk_question(), geodblp.default_attributes()
    if name == "tpch":
        # --scale multiplies the canonical miniature sf 0.01, so the
        # default invocation matches the bench/test workload exactly.
        db = tpch.generate(sf=0.01 * scale, seed=seed)
        return db, tpch.default_question(), tpch.default_attributes()
    if name == "running-example":
        from .engine import count_distinct
        from .core import single_query

        db = running_example.database()
        q = single_query(
            AggregateQuery(
                "q",
                count_distinct("Publication.pubid", "q"),
                Comparison("=", Col("Publication.venue"), Const("SIGMOD")),
            )
        )
        return db, UserQuestion.high(q), ["Author.name", "Publication.year"]
    raise ReproError(f"unknown demo {name!r}; choose from {DEMOS}")


def cmd_demo(args: argparse.Namespace) -> int:
    db, question, attributes = _demo_setup(
        args.dataset, args.rows, args.scale, args.seed
    )
    print(f"dataset: {db}")
    explainer = Explainer(db, question, attributes, backend=args.backend)
    print(f"Q(D) = {explainer.original_value()}")
    # SQL backends implement only Algorithm 1 ("cube"); in memory the
    # certificate picks the fastest *sound* method for this question.
    if args.backend != "memory":
        method = "cube"
        if not explainer.certificate().additivity.all_exact_cube:
            print(
                "note: the certificate flags this query as not "
                "intervention-additive; cube degrees are the Algorithm-1 "
                "approximation (the memory backend's 'auto' method is exact)"
            )
            explainer.seed_table(
                "cube",
                explainer.explanation_table("cube", check_additivity=False),
            )
    else:
        method = explainer.resolve_method("auto")
    ranking = explainer.top(
        args.top, method=method, by=args.by, strategy=args.strategy
    )
    print(render_ranking(ranking))
    return 0


def cmd_intervene(args: argparse.Namespace) -> int:
    db, _, _ = _demo_setup(args.dataset, args.rows, args.scale, args.seed)
    phi = parse_explanation(args.phi)
    result = compute_intervention(db, phi, strategy=args.intervention_strategy)
    print(f"φ = {phi}")
    print(f"iterations: {result.iterations}")
    for trace in result.trace:
        fired = ", ".join(f"{k}:{v}" for k, v in trace.new_by_rule.items())
        print(f"  iteration {trace.iteration}: +{trace.new_total} ({fired})")
    print(result.delta.describe())
    return 0


def _parse_filter(text: str, relation: str):
    """``a=x,b=y`` -> conjunction of equality comparisons."""
    atoms = []
    for part in text.split(","):
        if "=" not in part:
            raise ReproError(f"bad filter fragment {part!r}; use attr=value")
        attr, value = part.split("=", 1)
        parsed: object = value
        for cast in (int, float):
            try:
                parsed = cast(value)
                break
            except ValueError:
                continue
        atoms.append(
            Comparison("=", Col(f"{relation}.{attr.strip()}"), Const(parsed))
        )
    return conj(*atoms)


def cmd_explain(args: argparse.Namespace) -> int:
    table = load_table(args.csv)
    if args.pk not in table.columns:
        raise ReproError(f"primary key column {args.pk!r} not in CSV header")
    schema = single_table_schema("T", list(table.columns), [args.pk])
    db = Database(schema, {"T": table.rows()})

    q1 = AggregateQuery(
        "q1", count_star("q1"), _parse_filter(args.numerator, "T")
    )
    q2 = AggregateQuery(
        "q2", count_star("q2"), _parse_filter(args.denominator, "T")
    )
    query = ratio_query(q1, q2, epsilon=args.epsilon)
    question = UserQuestion(query, Direction.parse(args.dir))
    attributes = [f"T.{a.strip()}" for a in args.attributes.split(",")]
    explainer = Explainer(
        db, question, attributes,
        support_threshold=args.support, backend=args.backend,
    )
    print(f"rows: {len(table)}   Q(D) = {explainer.original_value():.4f}")
    print(render_ranking(explainer.top(args.top, strategy=args.strategy)))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .core.validation import validate_database, validate_question

    db, question, attributes = _demo_setup(
        args.dataset, args.rows, args.scale, args.seed
    )
    db_report = validate_database(db)
    print(db_report.render())
    q_report = validate_question(db, question, attributes)
    print(q_report.render())
    return 0 if db_report.ok and q_report.ok else 1


def _analyze_setup(name: str, args: argparse.Namespace):
    """(database, question-or-None, attributes) for one analyze target."""
    if name == "chain":
        from .datasets import chains

        db = chains.example_37_database(args.chain_p)
        # The chain relations are all keys, so any explanation dimension
        # draws a PK/FK lint warning — which is itself instructive.
        return db, None, ("R3.a", "R3.b")
    if name not in DEMOS:
        raise ReproError(
            f"unknown dataset {name!r}; choose from {ANALYZE_DATASETS}"
        )
    return _demo_setup(name, args.rows, args.scale, args.seed)


def cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from .analysis import analyze_plan

    names = list(ANALYZE_DATASETS) if args.all else list(args.datasets)
    if not names:
        raise ReproError("analyze needs at least one dataset (or --all)")
    payload = {}
    failed = False
    for name in names:
        db, question, attributes = _analyze_setup(name, args)
        certificate = analyze_plan(
            db.schema,
            question,
            attributes,
            database=None if args.schema_only else db,
        )
        payload[name] = certificate.to_dict()
        if not args.json:
            print(f"== {name} ==")
            print(certificate.render())
            print()
        if certificate.has_errors:
            failed = True
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    if args.strict and failed:
        print("error-severity diagnostics present (--strict)", file=sys.stderr)
        return 1
    return 0


def cmd_ask(args: argparse.Namespace) -> int:
    from .core.parsing import parse_question

    if args.csv is not None:
        if args.pk is None:
            raise ReproError("--csv requires --pk")
        table = load_table(args.csv)
        if args.pk not in table.columns:
            raise ReproError(f"primary key column {args.pk!r} not in CSV header")
        schema = single_table_schema("T", list(table.columns), [args.pk])
        db = Database(schema, {"T": table.rows()})
    else:
        db, _, _ = _demo_setup(args.dataset, args.rows, args.scale, args.seed)
    question = parse_question(args.dir, args.expr, args.agg)
    attributes = [a.strip() for a in args.attributes.split(",")]
    explainer = Explainer(
        db, question, attributes,
        support_threshold=args.support, backend=args.backend,
    )
    print(f"Q(D) = {explainer.original_value()}")
    report = explainer.additivity_report()
    print(report.explain())
    if args.method is not None:
        method = args.method
    elif args.backend != "memory":
        # SQL backends implement only Algorithm 1 ("cube").
        method = "cube"
    else:
        # The static plan certificate picks the fastest sound method
        # (cube when every aggregate is exact-cube, indexed when all
        # are count-family, exact otherwise).
        method = explainer.resolve_method("auto")
    print(f"method: {method}")
    print(render_ranking(explainer.top(args.top, method=method)))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .core.report import explain_question

    db, question, attributes = _demo_setup(
        args.dataset, args.rows, args.scale, args.seed
    )
    report = explain_question(db, question, attributes, k=args.top)
    if args.json:
        print(report.to_json(indent=2))
    else:
        print(report.render())
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from .engine.storage import save_database

    db, _, _ = _demo_setup(args.dataset, args.rows, args.scale, args.seed)
    save_database(db, args.out)
    sizes = ", ".join(
        f"{name}={len(rel)}" for name, rel in db.relations.items()
    )
    print(f"wrote {args.out}: {sizes}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import ExplanationServer, ExplanationService

    service = ExplanationService(
        max_cache_entries=args.cache_entries,
        max_cache_bytes=int(args.cache_mb * 1024 * 1024),
        shards=args.shards,
        refresh=args.refresh,
        strategy=args.strategy,
    )
    server = ExplanationServer(
        service,
        host=args.host,
        port=args.port,
        request_timeout=args.timeout,
        max_request_bytes=int(args.max_request_kb * 1024),
        max_workers=args.workers,
    )

    async def run() -> None:
        await server.start()
        print(f"repro explanation service listening on {server.url}")
        print(f"  datasets: {', '.join(service.registry.names())}")
        print(f"  shards: {service.shards}")
        print(f"  refresh: {service.refresh}")
        print(f"  strategy: {service.strategy}")
        print(
            "  endpoints: /v1/explain /v1/topk /v1/analyze /v1/mutate "
            "/v1/health /v1/stats /v1/metrics"
        )
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def cmd_mutate(args: argparse.Namespace) -> int:
    import json

    from .service.client import ServiceClient
    from .service.errors import ClientError

    if args.mutations.startswith("@"):
        with open(args.mutations[1:], "r", encoding="utf-8") as handle:
            mutations = json.load(handle)
    else:
        mutations = json.loads(args.mutations)
    if isinstance(mutations, dict):
        mutations = [mutations]
    params = json.loads(args.params) if args.params else None
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        response = client.mutate(
            dataset=args.dataset, mutations=mutations, params=params
        )
    except ClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    data = response.data
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0
    print(
        f"{data['dataset']}: +{data['inserted']} -{data['deleted']} rows "
        f"across {', '.join(data['relations'])}"
    )
    print(f"  fingerprint: {data['previous_fingerprint'][:12]} -> "
          f"{data['fingerprint'][:12]}  (refresh: {data['refresh']})")
    for patch in data.get("patched", ()):
        if "error" in patch:
            print(f"  plan {patch['question']!r}: "
                  f"error {patch['error']['kind']}")
            continue
        line = f"  plan {patch['question']!r}: {patch['strategy']}"
        if patch.get("reason"):
            line += f" (reason: {patch['reason']})"
        if patch["strategy"] == "patched":
            line += (f", {patch['groups_touched']} groups via "
                     f"{patch['delta_rows_added']}+/"
                     f"{patch['delta_rows_removed']}- delta rows")
        print(line)
    if response.warning:
        print(f"  warning: {response.warning}")
    return 0


def cmd_bench_matrix(args: argparse.Namespace) -> int:
    from .bench import run_matrix, write_matrix

    progress = None if args.quiet else lambda msg: print(msg, flush=True)
    report = run_matrix(args.preset, progress=progress)
    write_matrix(report, args.out)
    cells = report["cells"]
    print(
        f"bench matrix ({args.preset}): {len(cells)} cells, "
        f"{len(report['skipped'])} skipped, "
        f"{len(report['groups'])} fingerprint groups -> {args.out}"
    )
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    db, question, attributes = _demo_setup(
        args.dataset, rows=10, scale=0.1, seed=0
    )
    if args.datalog:
        print(program_p_datalog(db.schema))
    else:
        print(algorithm1_script(db.schema, question, attributes, args.dialect))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Intervention-based explanations for database queries "
        "(Roy & Suciu, SIGMOD 2014).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--rows", type=int, default=20_000,
                       help="synthetic natality rows (default 20000)")
        p.add_argument("--scale", type=float, default=1.0,
                       help="synthetic DBLP/Geo-DBLP scale (default 1.0)")
        p.add_argument("--seed", type=int, default=2014)

    def add_backend(p):
        p.add_argument(
            "--backend",
            choices=backend_names(),
            default="memory",
            help="execution substrate for Algorithm 1 (default: memory)",
        )

    def add_profile(p):
        p.add_argument(
            "--profile",
            action="store_true",
            help="print the traced phase tree (timings, row counts, "
            "program-P iterations vs certified bound) after the output",
        )

    demo = sub.add_parser("demo", help="run a built-in experiment")
    demo.add_argument("dataset", choices=DEMOS)
    demo.add_argument("--top", type=int, default=5)
    demo.add_argument("--by", choices=("intervention", "aggravation"),
                      default="intervention")
    demo.add_argument(
        "--strategy",
        choices=("no_minimal", "minimal_self_join", "minimal_append"),
        default="minimal_append",
    )
    add_common(demo)
    add_backend(demo)
    add_profile(demo)
    demo.set_defaults(func=cmd_demo)

    interv = sub.add_parser("intervene", help="compute Δ^φ for a predicate")
    interv.add_argument("phi", help="predicate, e.g. \"Author.name = 'JG'\"")
    interv.add_argument("--dataset", choices=DEMOS, default="running-example")
    interv.add_argument("--strategy", dest="intervention_strategy",
                        choices=("fixpoint", "closure", "auto"), default=None,
                        help="program-P schedule: the Section 3 fixpoint or "
                             "the FK cascade closure index (byte-identical "
                             "results; default: REPRO_STRATEGY, else fixpoint)")
    add_common(interv)
    add_profile(interv)
    interv.set_defaults(func=cmd_intervene)

    explain = sub.add_parser("explain", help="explain a CSV ratio question")
    explain.add_argument("csv", help="path to a headed CSV file")
    explain.add_argument("--pk", required=True, help="primary key column")
    explain.add_argument("--numerator", required=True,
                         help="filter a=x,b=y for the numerator count")
    explain.add_argument("--denominator", required=True,
                         help="filter for the denominator count")
    explain.add_argument("--dir", choices=("high", "low"), default="high")
    explain.add_argument("--attributes", required=True,
                         help="comma-separated explanation attributes")
    explain.add_argument("--top", type=int, default=5)
    explain.add_argument("--epsilon", type=float, default=0.0001)
    explain.add_argument("--support", type=float, default=None)
    explain.add_argument(
        "--strategy",
        choices=("no_minimal", "minimal_self_join", "minimal_append"),
        default="minimal_append",
    )
    add_backend(explain)
    add_profile(explain)
    explain.set_defaults(func=cmd_explain)

    check = sub.add_parser(
        "check", help="validate a dataset + question before analysis"
    )
    check.add_argument("dataset", choices=DEMOS)
    add_common(check)
    check.set_defaults(func=cmd_check)

    analyze = sub.add_parser(
        "analyze",
        help="static plan certificate: convergence bound, additivity, lints",
    )
    analyze.add_argument(
        "datasets",
        nargs="*",
        metavar="dataset",
        help=f"one or more of {ANALYZE_DATASETS}",
    )
    analyze.add_argument("--all", action="store_true",
                         help="analyze every bundled dataset")
    analyze.add_argument("--json", action="store_true",
                         help="emit certificates as JSON")
    analyze.add_argument("--strict", action="store_true",
                         help="exit 1 on any error-severity diagnostic")
    analyze.add_argument("--schema-only", action="store_true",
                         help="ignore the instance: symbolic bounds, "
                              "unresolved data-dependent verdicts")
    analyze.add_argument("--chain-p", type=int, default=3,
                         help="chain parameter p (n = 4p + 1 tuples)")
    add_common(analyze)
    # Analysis only touches data for footnote-11 resolution and the
    # n - 1 bound; small instances keep `--all` fast in CI.
    analyze.set_defaults(func=cmd_analyze, rows=2_000, scale=0.25)

    ask = sub.add_parser(
        "ask", help="ask a custom (Q, dir) question in text syntax"
    )
    ask.add_argument("--dataset", choices=DEMOS, default="running-example")
    ask.add_argument("--csv", default=None, help="single-table CSV instead")
    ask.add_argument("--pk", default=None, help="primary key column for --csv")
    ask.add_argument("--dir", choices=("high", "low"), required=True)
    ask.add_argument(
        "--expr", required=True, help="E expression, e.g. '(q1/q2)/(q3/q4)'"
    )
    ask.add_argument(
        "--agg",
        action="append",
        required=True,
        help="aggregate, e.g. \"q1 := count(*) WHERE T.ap = 'good'\" (repeat)",
    )
    ask.add_argument("--attributes", required=True)
    ask.add_argument("--top", type=int, default=5)
    ask.add_argument("--support", type=float, default=None)
    ask.add_argument(
        "--method", choices=("cube", "naive", "exact", "indexed"), default=None
    )
    add_common(ask)
    add_backend(ask)
    add_profile(ask)
    ask.set_defaults(func=cmd_ask)

    report = sub.add_parser(
        "report", help="full explanation report for a built-in experiment"
    )
    report.add_argument("dataset", choices=DEMOS)
    report.add_argument("--top", type=int, default=5)
    report.add_argument("--json", action="store_true")
    add_common(report)
    add_profile(report)
    report.set_defaults(func=cmd_report)

    generate = sub.add_parser(
        "generate", help="write a synthetic dataset to a directory"
    )
    generate.add_argument("dataset", choices=DEMOS)
    generate.add_argument("out", help="output directory")
    add_common(generate)
    generate.set_defaults(func=cmd_generate)

    serve = sub.add_parser(
        "serve", help="run the explanation HTTP service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8722)
    serve.add_argument("--workers", type=int, default=8,
                       help="thread-pool size for explanation builds")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="per-request deadline in seconds")
    serve.add_argument("--cache-entries", type=int, default=256,
                       help="max cached explanation tables")
    serve.add_argument("--cache-mb", type=float, default=256.0,
                       help="cache byte budget in MiB")
    serve.add_argument("--max-request-kb", type=float, default=1024.0,
                       help="request body size limit in KiB")
    serve.add_argument("--shards", type=int, default=None,
                       help="worker processes per cube build "
                            "(default: REPRO_SHARDS, else 1 = serial)")
    serve.add_argument("--refresh", choices=("full", "incremental"),
                       default=None,
                       help="cache refresh mode under mutations "
                            "(default: REPRO_REFRESH, else full)")
    serve.add_argument("--strategy", choices=("fixpoint", "closure", "auto"),
                       default=None,
                       help="program-P intervention strategy for cube builds "
                            "(default: REPRO_STRATEGY, else fixpoint)")
    serve.set_defaults(func=cmd_serve)

    mutate = sub.add_parser(
        "mutate",
        help="POST insert/delete batches to a running service "
             "(/v1/mutate)",
    )
    mutate.add_argument("dataset", help="registered dataset name")
    mutate.add_argument(
        "--mutations", required=True,
        help="JSON array of {relation, insert, delete} objects "
             "(or one object), or @file.json",
    )
    mutate.add_argument("--params", default=None,
                        help="dataset params as a JSON object")
    mutate.add_argument("--host", default="127.0.0.1")
    mutate.add_argument("--port", type=int, default=8722)
    mutate.add_argument("--timeout", type=float, default=60.0)
    mutate.add_argument("--json", action="store_true",
                        help="print the raw response payload")
    mutate.set_defaults(func=cmd_mutate)

    bench = sub.add_parser(
        "bench", help="reproducibility benchmarks (see benchmarks/)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    matrix = bench_sub.add_parser(
        "matrix",
        help="sweep dataset x question x method x strategy x backend x "
        "shards and cross-check fingerprint agreement",
    )
    matrix.add_argument(
        "--preset",
        choices=("small", "full"),
        default="small",
        help="axis sizes: 'small' is the CI smoke matrix (memory+sqlite, "
        "auto method); 'full' adds duckdb and the exact/indexed methods",
    )
    matrix.add_argument(
        "--out",
        default="BENCH_matrix.json",
        metavar="PATH",
        help="report path (default: BENCH_matrix.json)",
    )
    matrix.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress"
    )
    matrix.set_defaults(func=cmd_bench_matrix)

    sql = sub.add_parser("sql", help="print SQL / datalog renderings")
    sql.add_argument("dataset", choices=DEMOS)
    sql.add_argument("--datalog", action="store_true",
                     help="print program P as datalog instead of SQL")
    sql.add_argument("--dialect", choices=DIALECTS, default="sqlserver",
                     help="SQL dialect for the Algorithm 1 script")
    sql.set_defaults(func=cmd_sql)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    profiling = bool(getattr(args, "profile", False))
    if profiling:
        from .obs import get_tracer

        get_tracer().reset()
        get_tracer().enable()
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if profiling:
            _print_profile()
            get_tracer().disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
