"""Named datasets the service can answer questions about.

A server process hosts a registry of datasets.  Each entry is either a
live :class:`~repro.engine.database.Database` (registered
programmatically, e.g. loaded from disk at startup) or a *loader* — a
callable building the database on first use, parameterized by the
request's ``params`` object (``rows``/``scale``/``seed`` for the
built-in synthetic generators).  Resolved instances are memoized per
parameter set, so the generation cost is paid once per server process.

Entries may carry a default question and attribute list; requests that
omit ``question``/``attributes`` fall back to those, which is what
makes ``curl``-sized requests possible against the demo datasets.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..core.question import UserQuestion
from ..engine.database import Database
from .errors import BadRequestError, NotFoundError

#: A loader returns (database, default_question, default_attributes).
DatasetLoader = Callable[
    ..., Tuple[Database, Optional[UserQuestion], Optional[Sequence[str]]]
]


@dataclass(frozen=True)
class ResolvedDataset:
    """One materialized dataset plus its request-facing defaults."""

    name: str
    params: Tuple[Tuple[str, object], ...]
    database: Database
    default_question: Optional[UserQuestion] = None
    default_attributes: Optional[Tuple[str, ...]] = None

    @property
    def fingerprint(self) -> str:
        """The database's content fingerprint (memoized by the db)."""
        return self.database.content_fingerprint()


def _load_running_example():
    from ..core import UserQuestion, single_query
    from ..core.numquery import AggregateQuery
    from ..datasets import running_example
    from ..engine import Col, Comparison, Const, count_distinct

    db = running_example.database()
    q = single_query(
        AggregateQuery(
            "q",
            count_distinct("Publication.pubid", "q"),
            Comparison("=", Col("Publication.venue"), Const("SIGMOD")),
        )
    )
    return db, UserQuestion.high(q), ("Author.name", "Publication.year")


def _load_natality(rows: int = 20_000, seed: int = 2014):
    from ..datasets import natality

    db = natality.generate(rows=rows, seed=seed)
    return db, natality.q_race_question(), natality.default_attributes("race")


def _load_dblp(scale: float = 1.0, seed: int = 2014):
    from ..datasets import dblp

    db = dblp.generate(scale=scale, seed=seed)
    return db, dblp.bump_question(), dblp.default_attributes()


def _load_geodblp(scale: float = 1.0, seed: int = 2014):
    from ..datasets import geodblp

    db = geodblp.generate(scale=scale, seed=seed)
    return db, geodblp.uk_question(), geodblp.default_attributes()


def _load_tpch(sf: float = 0.01, seed: int = 2014):
    from ..datasets import tpch

    db = tpch.generate(sf=sf, seed=seed)
    return db, tpch.default_question(), tpch.default_attributes()


_BUILTIN_LOADERS: Dict[str, DatasetLoader] = {
    "running-example": _load_running_example,
    "natality": _load_natality,
    "dblp": _load_dblp,
    "geodblp": _load_geodblp,
    "tpch": _load_tpch,
}


class DatasetRegistry:
    """Thread-safe name → dataset resolution with per-params memoization."""

    def __init__(self, *, with_builtins: bool = True) -> None:
        self._lock = threading.RLock()
        self._loaders: Dict[str, DatasetLoader] = {}
        self._resolved: Dict[
            Tuple[str, Tuple[Tuple[str, object], ...]], ResolvedDataset
        ] = {}
        if with_builtins:
            self._loaders.update(_BUILTIN_LOADERS)

    def names(self) -> Tuple[str, ...]:
        """All registered dataset names."""
        with self._lock:
            return tuple(sorted(self._loaders))

    def register_loader(self, name: str, loader: DatasetLoader) -> None:
        """Register (or replace) a lazy dataset loader under *name*."""
        with self._lock:
            self._loaders[name] = loader
            stale = [k for k in self._resolved if k[0] == name]
            for k in stale:
                del self._resolved[k]

    def register_database(
        self,
        name: str,
        database: Database,
        *,
        question: Optional[UserQuestion] = None,
        attributes: Optional[Sequence[str]] = None,
    ) -> None:
        """Register a live database instance under *name*.

        The instance is shared across requests (requests must treat it
        as read-only); *question*/*attributes* become the defaults for
        requests that omit them.
        """

        def loader():
            return database, question, attributes

        self.register_loader(name, loader)

    def resolve(
        self, name: str, params: Optional[Mapping[str, object]] = None
    ) -> ResolvedDataset:
        """Materialize dataset *name* with *params*, memoized."""
        with self._lock:
            loader = self._loaders.get(name)
        if loader is None:
            raise NotFoundError(
                f"unknown dataset {name!r}; registered: {list(self.names())}",
                kind="unknown_dataset",
            )
        try:
            key_params = tuple(sorted((params or {}).items()))
        except TypeError:
            raise BadRequestError(
                "dataset params must be a JSON object of scalars"
            ) from None
        cache_key = (name, key_params)
        with self._lock:
            hit = self._resolved.get(cache_key)
            if hit is not None:
                return hit
        try:
            db, question, attributes = loader(**dict(key_params))
        except TypeError as exc:
            raise BadRequestError(
                f"bad params for dataset {name!r}: {exc}",
                kind="bad_dataset_params",
            ) from None
        resolved = ResolvedDataset(
            name=name,
            params=key_params,
            database=db,
            default_question=question,
            default_attributes=tuple(attributes) if attributes else None,
        )
        with self._lock:
            # A racing resolver may have beaten us; keep the first one so
            # every request shares a single database instance.
            existing = self._resolved.get(cache_key)
            if existing is not None:
                return existing
            self._resolved[cache_key] = resolved
        return resolved
