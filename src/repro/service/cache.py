"""Content-addressed LRU cache for finalized explanation tables.

Algorithm 1 front-loads all the cost into materializing the table *M*
(one cube per aggregate plus the outer join); every top-K request over
*M* — any K, either degree, any Section 4.3 strategy — is a cheap
scan.  The serving layer therefore memoizes finalized
:class:`~repro.core.cube_algorithm.ExplanationTable` objects keyed by
the :class:`~repro.core.explainer.ExplanationPlan` fingerprint
(database content hash, canonical question, attributes, method,
backend), so repeated questions skip cube construction entirely.

Eviction is LRU under two simultaneous budgets — an entry count and a
byte budget (tables are measured once at insertion time by
:func:`estimate_table_bytes`).  All operations are thread-safe; the
hit/miss/eviction counters feed the server's ``/v1/stats`` endpoint
and, when a :class:`~repro.obs.MetricsRegistry` is supplied, are
mirrored as ``repro_cache_*`` Prometheus series for ``/v1/metrics``.
"""

from __future__ import annotations

import hashlib
import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.cube_algorithm import ExplanationTable
from ..obs import MetricsRegistry

_SIZE_OVERHEAD = 256  # flat per-entry allowance for wrapper objects

#: Valid cache refresh modes: ``"full"`` (mutations age entries out via
#: new fingerprints) or ``"incremental"`` (the service patches tables
#: in place and re-inserts them under the successor plan fingerprint).
REFRESH_MODES = ("full", "incremental")


def incremental_key(base_fingerprint: str, chain_key: str) -> str:
    """The cache address of a patched table: (base plan, delta chain).

    In ``refresh="incremental"`` mode a patched entry is content-equal
    to the cold table of the *successor* plan, so the service inserts
    it under both the successor plan fingerprint (where future
    requests look) and this derived key (which names the patch lineage
    for observability and invalidation).
    """
    text = "\x1f".join((base_fingerprint, chain_key))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def estimate_table_bytes(m: ExplanationTable) -> int:
    """An upper-ish estimate of the resident size of a table *M*.

    Sums ``sys.getsizeof`` over every row tuple and cell plus the
    column headers.  Interned/shared values are deliberately counted
    per occurrence — the budget is a safety valve against unbounded
    growth, not an accounting exercise, so over-counting is the safe
    direction.
    """
    total = _SIZE_OVERHEAD
    total += sum(sys.getsizeof(c) for c in m.table.columns)
    for row in m.table.rows():
        total += sys.getsizeof(row)
        total += sum(sys.getsizeof(v) for v in row)
    for name, value in m.q_original.items():
        total += sys.getsizeof(name) + sys.getsizeof(value)
    return total


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of the cache counters."""

    hits: int
    misses: int
    evictions: int
    entries: int
    current_bytes: int
    max_entries: int
    max_bytes: int
    #: Entries by origin: built cold vs. patched incrementally.
    built_entries: int = 0
    patched_entries: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "current_bytes": self.current_bytes,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "built_entries": self.built_entries,
            "patched_entries": self.patched_entries,
        }


class ExplanationTableCache:
    """Thread-safe LRU + byte-budget cache of explanation tables.

    Keys are opaque strings — in practice the
    :attr:`~repro.core.explainer.ExplanationPlan.fingerprint` content
    address, which already encodes the database state, so a mutated
    database simply produces new keys and stale entries age out via
    LRU rather than being served.
    """

    def __init__(
        self,
        *,
        max_entries: int = 256,
        max_bytes: int = 256 * 1024 * 1024,
        metrics: Optional[MetricsRegistry] = None,
        refresh: str = "full",
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if refresh not in REFRESH_MODES:
            raise ValueError(
                f"refresh must be one of {REFRESH_MODES}, got {refresh!r}"
            )
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        #: How entries follow database mutations: ``"full"`` entries
        #: are immutable and age out; ``"incremental"`` entries may be
        #: patched copies inserted by the service's mutate path.
        self.refresh = refresh
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, Tuple[ExplanationTable, int, str]]" = (
            OrderedDict()
        )
        self._current_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._metrics = metrics
        if metrics is not None:
            self._m_hits = metrics.counter(
                "repro_cache_hits_total", help="Explanation-table cache hits."
            )
            self._m_misses = metrics.counter(
                "repro_cache_misses_total",
                help="Explanation-table cache misses.",
            )
            self._m_evictions = metrics.counter(
                "repro_cache_evictions_total",
                help="Explanation-table cache LRU/byte-budget evictions.",
            )
            self._m_entries = metrics.gauge(
                "repro_cache_entries", help="Cached explanation tables."
            )
            self._m_bytes = metrics.gauge(
                "repro_cache_bytes",
                help="Estimated resident bytes of cached tables.",
            )
            self._m_built = metrics.gauge(
                "repro_cache_built_entries",
                help="Cached tables that were built cold.",
            )
            self._m_patched = metrics.gauge(
                "repro_cache_patched_entries",
                help="Cached tables that were patched incrementally.",
            )

    def _origin_counts_locked(self) -> Tuple[int, int]:
        built = sum(
            1 for (_, _, origin) in self._entries.values() if origin == "built"
        )
        return built, len(self._entries) - built

    def _sync_occupancy_locked(self) -> None:
        if self._metrics is not None:
            self._m_entries.set(len(self._entries))
            self._m_bytes.set(self._current_bytes)
            built, patched = self._origin_counts_locked()
            self._m_built.set(built)
            self._m_patched.set(patched)

    # -- lookup -----------------------------------------------------------

    def get(self, key: str) -> Optional[ExplanationTable]:
        """The cached table for *key*, or None; counts a hit or miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                if self._metrics is not None:
                    self._m_misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            if self._metrics is not None:
                self._m_hits.inc()
            return entry[0]

    def peek(self, key: str) -> Optional[ExplanationTable]:
        """Like :meth:`get` but touches neither counters nor LRU order."""
        with self._lock:
            entry = self._entries.get(key)
            return entry[0] if entry is not None else None

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> Tuple[str, ...]:
        """Current keys, least- to most-recently used."""
        with self._lock:
            return tuple(self._entries)

    # -- insertion / eviction ---------------------------------------------

    def put(
        self, key: str, table: ExplanationTable, *, origin: str = "built"
    ) -> bool:
        """Insert (or refresh) *key*; returns False when not cacheable.

        ``origin`` tags how the table came to be — ``"built"`` (cold
        compute) or ``"patched"`` (incremental delta application) —
        for the patched-vs-rebuilt occupancy counts.

        A table bigger than the whole byte budget is refused outright —
        admitting it would flush every other entry for a value that can
        never be joined by a second one.
        """
        if origin not in ("built", "patched"):
            raise ValueError(f"origin must be 'built' or 'patched', got {origin!r}")
        size = estimate_table_bytes(table)
        with self._lock:
            if size > self.max_bytes:
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._current_bytes -= old[1]
            self._entries[key] = (table, size, origin)
            self._current_bytes += size
            self._evict_locked()
            self._sync_occupancy_locked()
            return True

    def _evict_locked(self) -> None:
        while len(self._entries) > self.max_entries or (
            self._current_bytes > self.max_bytes and self._entries
        ):
            _, (_, size, _) = self._entries.popitem(last=False)
            self._current_bytes -= size
            self._evictions += 1
            if self._metrics is not None:
                self._m_evictions.inc()

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns True when it was present."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._current_bytes -= entry[1]
            self._sync_occupancy_locked()
            return True

    def clear(self) -> None:
        """Drop everything (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0
            self._sync_occupancy_locked()

    # -- introspection -----------------------------------------------------

    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters and occupancy."""
        with self._lock:
            built, patched = self._origin_counts_locked()
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                current_bytes=self._current_bytes,
                max_entries=self.max_entries,
                max_bytes=self.max_bytes,
                built_entries=built,
                patched_entries=patched,
            )

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ExplanationTableCache(entries={s.entries}/{s.max_entries}, "
            f"bytes={s.current_bytes}/{s.max_bytes}, "
            f"hits={s.hits}, misses={s.misses}, evictions={s.evictions})"
        )
