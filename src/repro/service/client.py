"""A thin stdlib HTTP client for the explanation service.

Mirrors the wire protocol of :mod:`repro.service.server` with plain
:mod:`http.client` — no third-party dependency, usable from scripts,
tests, and the benchmark suite::

    from repro.service.client import ServiceClient

    client = ServiceClient("127.0.0.1", 8722)
    client.health()
    response = client.topk(dataset="natality", k=5)
    response.data["ranking"]
    response.headers["x-repro-cache"]   # "hit" | "miss" | "coalesced"
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from .errors import ClientError
from .protocol import QuestionSpec


@dataclass(frozen=True)
class ServiceResponse:
    """One parsed HTTP response: status, lower-cased headers, JSON body."""

    status: int
    headers: Dict[str, str]
    data: object

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 400

    @property
    def cache_status(self) -> str:
        """The server's ``X-Repro-Cache`` header (empty if absent)."""
        return self.headers.get("x-repro-cache", "")

    @property
    def warning(self) -> str:
        """The server's ``X-Repro-Warning`` header (empty if absent)."""
        return self.headers.get("x-repro-warning", "")


class ServiceClient:
    """Blocking JSON client for one server address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8722, *, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def request(
        self, method: str, path: str, payload: Optional[Mapping] = None
    ) -> ServiceResponse:
        """One round trip; returns the response without raising on 4xx/5xx."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            raw = connection.getresponse()
            text = raw.read().decode("utf-8")
            try:
                data: object = json.loads(text) if text else None
            except json.JSONDecodeError:
                data = text
            return ServiceResponse(
                status=raw.status,
                headers={k.lower(): v for k, v in raw.getheaders()},
                data=data,
            )
        finally:
            connection.close()

    def _checked(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping] = None,
        *,
        raise_on_error: bool = True,
    ) -> ServiceResponse:
        response = self.request(method, path, payload)
        if raise_on_error and not response.ok:
            raise ClientError(response.status, response.data)
        return response

    # -- endpoints ------------------------------------------------------------

    def health(self) -> dict:
        """The parsed ``/v1/health`` body (raises on error)."""
        return self._checked("GET", "/v1/health").data  # type: ignore[return-value]

    def stats(self) -> dict:
        """The parsed ``/v1/stats`` body (raises on error)."""
        return self._checked("GET", "/v1/stats").data  # type: ignore[return-value]

    def topk(self, *, raise_on_error: bool = True, **fields) -> ServiceResponse:
        """POST ``/v1/topk``; *fields* mirror the wire protocol."""
        return self._checked(
            "POST",
            "/v1/topk",
            _build_body(fields),
            raise_on_error=raise_on_error,
        )

    def explain(
        self, *, raise_on_error: bool = True, **fields
    ) -> ServiceResponse:
        """POST ``/v1/explain``; *fields* mirror the wire protocol."""
        return self._checked(
            "POST",
            "/v1/explain",
            _build_body(fields),
            raise_on_error=raise_on_error,
        )

    def analyze(
        self, *, raise_on_error: bool = True, **fields
    ) -> ServiceResponse:
        """POST ``/v1/analyze``; *fields* mirror the wire protocol."""
        return self._checked(
            "POST",
            "/v1/analyze",
            _build_body(fields),
            raise_on_error=raise_on_error,
        )

    def mutate(
        self,
        *,
        dataset: str,
        mutations: list,
        params: Optional[Mapping] = None,
        raise_on_error: bool = True,
    ) -> ServiceResponse:
        """POST ``/v1/mutate``: batch inserts/deletes against *dataset*.

        *mutations* is a list of ``{"relation": name, "insert": [rows],
        "delete": [rows]}`` objects; rows are JSON arrays of scalars
        (``null`` marks the engine NULL).
        """
        body: Dict[str, object] = {"dataset": dataset, "mutations": mutations}
        if params:
            body["params"] = dict(params)
        return self._checked(
            "POST", "/v1/mutate", body, raise_on_error=raise_on_error
        )


def _build_body(fields: Dict[str, object]) -> Dict[str, object]:
    """Normalize convenience forms into the wire-protocol body."""
    body = dict(fields)
    question = body.get("question")
    if isinstance(question, QuestionSpec):
        body["question"] = {
            "dir": question.direction,
            "expr": question.expression,
            "aggregates": list(question.aggregates),
        }
    elif isinstance(question, (tuple, list)) and len(question) == 3:
        direction, expression, aggregates = question
        body["question"] = {
            "dir": direction,
            "expr": expression,
            "aggregates": list(aggregates),
        }
    return body
