"""The explanation service: cache + coalescing over the backend registry.

:class:`ExplanationService` is the transport-agnostic core of the
serving subsystem — the asyncio HTTP server is a thin shell around it,
and it can equally be embedded in a notebook or another process.  One
request flows through:

1. **resolve** — dataset name → materialized database (memoized),
   question/attributes (request or dataset defaults), backend (with
   graceful degradation to ``memory`` when unavailable);
2. **plan** — the :class:`~repro.core.explainer.ExplanationPlan`
   content fingerprint that addresses the result;
3. **cache** — a finalized table under that fingerprint skips cube
   construction entirely;
4. **coalesce** — concurrent identical misses trigger exactly one
   build (single-flight); everyone shares the result;
5. **rank** — the Section 4.3 top-K strategies scan the table.

Every counter the ``/v1/stats`` endpoint reports lives here — backed
by a per-service :class:`~repro.obs.MetricsRegistry` also rendered at
``/v1/metrics`` — so the "50 concurrent identical requests → one
computation" property is directly observable.
"""

from __future__ import annotations

import os
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .._version import __version__
from ..backends import (
    available_backends,
    backend_names,
    get_backend_with_fallback,
)
from ..core.cube_algorithm import (
    MU_AGGR,
    MU_HYBRID,
    MU_INTERV,
    ExplanationTable,
    add_hybrid_column,
)
from ..core.explainer import (
    AUTO_METHOD,
    Explainer,
    ExplanationPlan,
    backend_key,
    question_key,
)
from ..core.parsing import parse_question
from ..core.question import UserQuestion
from ..core.topk import RankedExplanation, top_k_explanations
from ..errors import ExplanationError, ReproError
from ..incremental import IncrementalSession
from ..obs import (
    Counter as MetricCounter,
    MetricsRegistry,
    get_registry,
    render_prometheus,
)
from .cache import REFRESH_MODES, ExplanationTableCache
from .coalescer import SingleFlight
from .errors import BadRequestError, ServiceError
from .protocol import (
    MutateRequest,
    ServiceRequest,
    jsonable_value,
    ranking_payload,
)
from .registry import DatasetRegistry, ResolvedDataset


def _kind_of(exc: BaseException) -> str:
    """``NotAdditiveError`` → ``"not_additive_error"`` etc."""
    name = type(exc).__name__
    out = []
    for i, ch in enumerate(name):
        if ch.isupper() and i > 0:
            out.append("_")
        out.append(ch.lower())
    return "".join(out)


def rank_table(
    table: ExplanationTable,
    *,
    k: int,
    by: str = "intervention",
    strategy: str = "minimal_append",
    minimality: str = "general",
    hybrid_weight: float = 0.5,
) -> List[RankedExplanation]:
    """Top-K a finalized table *M* without rebuilding anything.

    This is the warm path: equivalent to
    :meth:`repro.core.explainer.Explainer.top` but operating on a
    (possibly cached) table directly, so no universal table or cube is
    touched.
    """
    column = {
        "intervention": MU_INTERV,
        "aggravation": MU_AGGR,
        "hybrid": MU_HYBRID,
    }.get(by)
    if column is None:
        raise BadRequestError(
            f"by must be one of ('intervention', 'aggravation', 'hybrid'), "
            f"got {by!r}"
        )
    m = add_hybrid_column(table, weight=hybrid_weight) if by == "hybrid" else table
    return top_k_explanations(
        m, k, by=column, strategy=strategy, minimality=minimality
    )


#: Dotted-name group -> Prometheus counter family.  A closed table, not
#: an f-string: metric families must be statically enumerable (RL007) —
#: a dynamically minted family never shows up in dashboards or in the
#: cross-check that every referenced family is registered.
_EVENT_FAMILIES: Dict[str, str] = {
    "requests": "repro_requests_total",
    "compute": "repro_compute_total",
    "mutate": "repro_mutate_total",
}


class Counters:
    """Dotted-name counter facade over a :class:`MetricsRegistry`.

    The service historically counts events under dotted names
    (``"requests.topk"``, ``"compute.tables_built"``) surfaced by
    ``/v1/stats``.  Each dotted name maps onto one of the closed set of
    counter families in ``_EVENT_FAMILIES`` — ``"<group>.<kind>"``
    becomes ``repro_<group>_total{kind="<kind>"}`` — so the same
    increments feed both the legacy nested-stats payload and
    ``/v1/metrics``.  Counting under an unknown group is a programming
    error and raises ``KeyError`` rather than minting a family.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._by_name: Dict[str, MetricCounter] = {}

    def _counter(self, name: str) -> MetricCounter:
        counter = self._by_name.get(name)
        if counter is None:
            group, _, rest = name.partition(".")
            counter = self.registry.counter(
                _EVENT_FAMILIES[group],
                labels={"kind": rest or group},
                help=f"Service {group} events by kind.",
            )
            with self._lock:
                counter = self._by_name.setdefault(name, counter)
        return counter

    def inc(self, name: str, n: int = 1) -> None:
        self._counter(name).inc(n)

    def get(self, name: str) -> int:
        counter = self._by_name.get(name)
        return int(counter.value) if counter is not None else 0

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            named = dict(self._by_name)
        return {name: int(c.value) for name, c in named.items()}


def _timings_block(
    cache_status: str, **phases: float
) -> Dict[str, object]:
    """The opt-in per-response ``timings`` payload.

    Carries per-request execution state by design (see the protocol
    docstring): a cache hit legitimately reports a near-zero
    ``table_s``, so the cache status is included to interpret it.
    """
    block: Dict[str, object] = {
        name: round(seconds, 6) for name, seconds in phases.items()
    }
    block["total_s"] = round(sum(phases.values()), 6)
    block["cache"] = cache_status
    return block


@dataclass(frozen=True)
class PreparedRequest:
    """A fully resolved request, ready to build or hit the cache."""

    request: ServiceRequest
    dataset: ResolvedDataset
    question: UserQuestion
    attributes: Tuple[str, ...]
    method: str
    backend_impl: object
    backend_name: str
    fingerprint: str
    static_warnings: Tuple[str, ...] = ()
    #: The plan certificate, when static analysis already ran for this
    #: request (``method: "auto"`` resolution or ``/v1/analyze``).
    certificate: Optional[object] = None


@dataclass
class ServiceResult:
    """One computed answer plus its per-request serving metadata."""

    payload: Dict[str, object]
    cache_status: str  # "hit" | "miss" | "coalesced" | "none" (uncached)
    warnings: Tuple[str, ...] = ()


@dataclass
class _TrackedSession:
    """One live incremental session plus the plan template it serves.

    The template re-derives the successor plan fingerprint after each
    mutation (only ``database_fingerprint`` changes), so patched tables
    land in the cache exactly where the next request will look.
    """

    session: IncrementalSession
    dataset_key: Tuple[str, Tuple[Tuple[str, object], ...]]
    question: str  # canonical question_key text
    attributes: Tuple[str, ...]
    method: str
    support_threshold: Optional[float]
    lock: threading.Lock = field(default_factory=threading.Lock)

    def plan_fingerprint(self, database_fingerprint: str) -> str:
        return ExplanationPlan(
            database_fingerprint=database_fingerprint,
            question=self.question,
            attributes=self.attributes,
            method=self.method,
            backend="memory",
            support_threshold=self.support_threshold,
        ).fingerprint


class ExplanationService:
    """Compute-once-serve-many explanations over registered datasets."""

    def __init__(
        self,
        *,
        registry: Optional[DatasetRegistry] = None,
        cache: Optional[ExplanationTableCache] = None,
        max_cache_entries: int = 256,
        max_cache_bytes: int = 256 * 1024 * 1024,
        metrics: Optional[MetricsRegistry] = None,
        shards: Optional[int] = None,
        refresh: Optional[str] = None,
        strategy: Optional[str] = None,
    ) -> None:
        from ..core.intervention import resolve_strategy_setting
        from ..parallel import resolve_shard_count

        self.registry = registry if registry is not None else DatasetRegistry()
        #: How cached tables follow database mutations: explicit arg,
        #: else the ``REPRO_REFRESH`` environment variable, else
        #: ``"full"``.  Under ``"incremental"`` the service keeps an
        #: :class:`~repro.incremental.IncrementalSession` per built
        #: cube plan and ``mutate()`` patches tables in place.
        if refresh is None:
            refresh = os.environ.get("REPRO_REFRESH", "full") or "full"
        if refresh not in REFRESH_MODES:
            raise ValueError(
                f"refresh must be one of {REFRESH_MODES}, got {refresh!r}"
            )
        self.refresh = refresh
        #: Shard count for cube builds: explicit arg, else the
        #: ``REPRO_SHARDS`` environment variable, else 1 (serial).
        #: Results are content-identical at any shard count, so shards
        #: never enter the cache key.
        self.shards = resolve_shard_count(shards)
        #: Program-P intervention strategy for cube builds: explicit
        #: arg, else the ``REPRO_STRATEGY`` environment variable, else
        #: ``"fixpoint"``.  Kept symbolic here (``"auto"`` resolves
        #: per plan inside the Explainer, against the certificate);
        #: tables are byte-identical under any strategy, so it never
        #: enters the cache key either.
        self.strategy = resolve_strategy_setting(strategy)
        # Per-instance registry: one service per test gets clean counts;
        # the process-wide default registry (phase histograms) is merged
        # in at render time by metrics_text().
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = (
            cache
            if cache is not None
            else ExplanationTableCache(
                max_entries=max_cache_entries,
                max_bytes=max_cache_bytes,
                metrics=self.metrics,
                refresh=self.refresh,
            )
        )
        self.flights = SingleFlight(metrics=self.metrics)
        self.counters = Counters(self.metrics)
        # Incremental sessions keyed by plan template (dataset, question,
        # attributes, method, support); _mutate_lock serializes writes so
        # one refresh sees one consistent net delta.
        self._sessions: Dict[tuple, _TrackedSession] = {}
        self._sessions_lock = threading.Lock()
        self._mutate_lock = threading.Lock()

    # -- resolution ---------------------------------------------------------

    def prepare(self, request: ServiceRequest) -> PreparedRequest:
        """Resolve names to objects and fix the plan fingerprint."""
        dataset = self.registry.resolve(request.dataset, dict(request.params))
        if request.question is not None:
            try:
                question = parse_question(
                    request.question.direction,
                    request.question.expression,
                    request.question.aggregates,
                )
            except ReproError as exc:
                raise BadRequestError(
                    f"bad question: {exc}", kind=_kind_of(exc)
                ) from exc
        elif dataset.default_question is not None:
            question = dataset.default_question
        else:
            raise BadRequestError(
                f"dataset {dataset.name!r} has no default question; "
                "supply a 'question' object"
            )
        attributes = request.attributes or dataset.default_attributes
        if not attributes:
            raise BadRequestError(
                f"dataset {dataset.name!r} has no default attributes; "
                "supply an 'attributes' list"
            )
        method = request.method
        certificate = None
        if method == AUTO_METHOD:
            if request.backend != "memory":
                # SQL backends implement only Algorithm 1.
                method = "cube"
            else:
                certificate = self._certificate_for(
                    dataset, question, attributes
                )
                method = certificate.recommended_method
        if method != "cube" and request.backend != "memory":
            raise BadRequestError(
                f"method {method!r} runs only on the in-memory "
                "engine; SQL backends implement the 'cube' method"
            )
        try:
            backend_impl, warning = get_backend_with_fallback(request.backend)
        except ExplanationError as exc:
            raise BadRequestError(str(exc), kind="unknown_backend") from exc
        backend_name = backend_key(backend_impl)
        if warning:
            self.counters.inc("compute.fallbacks")
        plan = ExplanationPlan(
            database_fingerprint=dataset.fingerprint,
            question=question_key(question),
            attributes=tuple(attributes),
            method=method,
            backend=backend_name,
            support_threshold=request.support_threshold,
        )
        return PreparedRequest(
            request=request,
            dataset=dataset,
            question=question,
            attributes=tuple(attributes),
            method=method,
            backend_impl=backend_impl,
            backend_name=backend_name,
            fingerprint=plan.fingerprint,
            static_warnings=(warning,) if warning else (),
            certificate=certificate,
        )

    def _certificate_for(self, dataset, question, attributes):
        """Run the static analyzer for one resolved request (data-aware)."""
        from ..analysis import analyze_plan

        self.counters.inc("compute.analyses")
        return analyze_plan(
            dataset.database.schema,
            question,
            attributes,
            database=dataset.database,
        )

    # -- table construction --------------------------------------------------

    def _build_table(
        self, prepared: PreparedRequest, warnings_out: List[str]
    ) -> ExplanationTable:
        def build_with(backend: object) -> ExplanationTable:
            explainer = Explainer(
                prepared.dataset.database,
                prepared.question,
                prepared.attributes,
                support_threshold=prepared.request.support_threshold,
                backend=backend,
                shards=self.shards,
                strategy=self.strategy,
            )
            return explainer.explanation_table(prepared.method)

        try:
            return build_with(prepared.backend_impl)
        except Exception as exc:
            if isinstance(exc, ServiceError):
                raise
            if prepared.backend_name != "memory":
                # Graceful degradation: a DBMS-side failure must not take
                # the request down when the reference engine can answer.
                self.counters.inc("compute.fallbacks")
                warnings_out.append(
                    f"backend {prepared.backend_name!r} failed "
                    f"({type(exc).__name__}: {exc}); fell back to 'memory'"
                )
                try:
                    return build_with("memory")
                except ReproError as exc2:
                    raise BadRequestError(
                        str(exc2), kind=_kind_of(exc2)
                    ) from exc2
            if isinstance(exc, ReproError):
                raise BadRequestError(str(exc), kind=_kind_of(exc)) from exc
            raise

    def _session_key(self, prepared: PreparedRequest) -> tuple:
        return (
            prepared.dataset.name,
            tuple(sorted(dict(prepared.dataset.params).items())),
            question_key(prepared.question),
            prepared.attributes,
            prepared.method,
            prepared.request.support_threshold,
        )

    def _incremental_eligible(self, prepared: PreparedRequest) -> bool:
        """Plans the mutate path keeps warm: in-memory cube builds.

        Other methods (naive/exact/indexed) stay on the cold path —
        after a mutation their fingerprints change and the next request
        rebuilds on a normal cache miss.
        """
        return (
            self.refresh == "incremental"
            and prepared.method == "cube"
            and prepared.backend_name == "memory"
        )

    def _incremental_table(
        self, prepared: PreparedRequest, warnings_out: List[str]
    ) -> Tuple[ExplanationTable, str]:
        """(table, origin) from a new-or-existing incremental session."""
        key = self._session_key(prepared)
        with self._sessions_lock:
            tracked = self._sessions.get(key)
        if tracked is None:
            try:
                session = IncrementalSession(
                    prepared.dataset.database,
                    prepared.question,
                    prepared.attributes,
                    method=prepared.method,
                    support_threshold=prepared.request.support_threshold,
                    shards=self.shards,
                    strategy=self.strategy,
                    metrics=self.metrics,
                )
            except ReproError as exc:
                raise BadRequestError(str(exc), kind=_kind_of(exc)) from exc
            candidate = _TrackedSession(
                session=session,
                dataset_key=(
                    prepared.dataset.name,
                    tuple(sorted(dict(prepared.dataset.params).items())),
                ),
                question=question_key(prepared.question),
                attributes=prepared.attributes,
                method=prepared.method,
                support_threshold=prepared.request.support_threshold,
            )
            with self._sessions_lock:
                tracked = self._sessions.setdefault(key, candidate)
            if tracked is not candidate:
                session.close()  # lost a registration race
        with tracked.lock:
            try:
                table = tracked.session.table()
            except ReproError as exc:
                raise BadRequestError(str(exc), kind=_kind_of(exc)) from exc
            stats = tracked.session.last_stats
        origin = "patched" if stats and stats.strategy == "patched" else "built"
        if stats is not None and stats.strategy == "rebuilt":
            warnings_out.append(
                "incremental refresh fell back to full recompute "
                f"(reason: {stats.reason})"
            )
        return table, origin

    def table_for(
        self, request: ServiceRequest
    ) -> Tuple[PreparedRequest, ExplanationTable, str, Tuple[str, ...]]:
        """(prepared, table, cache_status, warnings) for one request."""
        prepared = self.prepare(request)
        key = prepared.fingerprint
        cached = self.cache.get(key)
        if cached is not None:
            return prepared, cached, "hit", prepared.static_warnings
        runtime_warnings: List[str] = []

        def compute() -> ExplanationTable:
            existing = self.cache.peek(key)
            if existing is not None:
                return existing
            if self._incremental_eligible(prepared):
                table, origin = self._incremental_table(
                    prepared, runtime_warnings
                )
            else:
                table, origin = (
                    self._build_table(prepared, runtime_warnings),
                    "built",
                )
            self.counters.inc("compute.tables_built")
            self.cache.put(key, table, origin=origin)
            return table

        table, leader = self.flights.do(key, compute)
        if leader:
            status = "miss"
        else:
            status = "coalesced"
            self.counters.inc("compute.coalesced_waits")
        warnings = prepared.static_warnings + tuple(runtime_warnings)
        return prepared, table, status, warnings

    # -- endpoints ------------------------------------------------------------

    def topk(self, request: ServiceRequest) -> ServiceResult:
        """Ranked explanations for one request (the ``/v1/topk`` body)."""
        t0 = time.perf_counter()
        prepared, table, status, warnings = self.table_for(request)
        t1 = time.perf_counter()
        ranking = rank_table(
            table,
            k=request.k,
            by=request.by,
            strategy=request.strategy,
            minimality=request.minimality,
            hybrid_weight=request.hybrid_weight,
        )
        t2 = time.perf_counter()
        payload = self._base_payload(prepared, table)
        payload.update(
            {
                "k": request.k,
                "by": request.by,
                "strategy": request.strategy,
                "minimality": request.minimality,
                "ranking": ranking_payload(ranking),
            }
        )
        if request.include_timings:
            payload["timings"] = _timings_block(
                status, table_s=t1 - t0, rank_s=t2 - t1
            )
        return ServiceResult(payload, status, warnings)

    def explain(self, request: ServiceRequest) -> ServiceResult:
        """Table metadata plus top-K under both degrees (``/v1/explain``)."""
        t0 = time.perf_counter()
        prepared, table, status, warnings = self.table_for(request)
        t1 = time.perf_counter()
        top_i = rank_table(
            table, k=request.k, by="intervention", strategy=request.strategy
        )
        top_a = rank_table(
            table, k=request.k, by="aggravation", strategy=request.strategy
        )
        t2 = time.perf_counter()
        payload = self._base_payload(prepared, table)
        payload.update(
            {
                "k": request.k,
                "strategy": request.strategy,
                "q_original": {
                    name: jsonable_value(value)
                    for name, value in sorted(table.q_original.items())
                },
                "top_by_intervention": ranking_payload(top_i),
                "top_by_aggravation": ranking_payload(top_a),
            }
        )
        if request.include_timings:
            payload["timings"] = _timings_block(
                status, table_s=t1 - t0, rank_s=t2 - t1
            )
        return ServiceResult(payload, status, warnings)

    def analyze(self, request: ServiceRequest) -> ServiceResult:
        """The static plan certificate for one request (``/v1/analyze``).

        No table is built and nothing is cached: the analyzer reads
        only the schema, the query and (for footnote-11 resolution and
        the n − 1 fallback bound) instance statistics.
        """
        prepared = self.prepare(request)
        certificate = prepared.certificate
        if certificate is None:
            certificate = self._certificate_for(
                prepared.dataset, prepared.question, prepared.attributes
            )
        payload: Dict[str, object] = {
            "dataset": prepared.dataset.name,
            "params": dict(prepared.dataset.params),
            "fingerprint": prepared.fingerprint,
            "question": str(prepared.question.query),
            "direction": prepared.question.direction.value,
            "attributes": list(prepared.attributes),
            "method": prepared.method,
            "backend": prepared.backend_name,
            "certificate": certificate.to_dict(),
        }
        return ServiceResult(payload, "none", prepared.static_warnings)

    def mutate(self, request: MutateRequest) -> ServiceResult:
        """Apply insert/delete batches to a dataset (``/v1/mutate``).

        Deletes run before inserts within each mutation spec.  Under
        ``refresh="incremental"`` every live session for the dataset is
        refreshed immediately and its (patched or rebuilt) table is
        re-inserted under the successor plan fingerprint, so the next
        read is a cache hit; under ``"full"`` the mutation just changes
        the content fingerprint and stale entries age out via LRU.
        """
        dataset = self.registry.resolve(request.dataset, dict(request.params))
        database = dataset.database
        warnings_out: List[str] = []
        with self._mutate_lock:
            old_fingerprint = database.content_fingerprint()
            inserted = deleted = 0
            touched: List[str] = []
            for spec in request.mutations:
                try:
                    relation = database.relation(spec.relation)
                except ReproError as exc:
                    raise BadRequestError(
                        str(exc), kind=_kind_of(exc)
                    ) from exc
                for row in spec.insert + spec.delete:
                    if len(row) != relation.arity:
                        raise BadRequestError(
                            f"{spec.relation}: row arity {len(row)} != "
                            f"schema arity {relation.arity}"
                        )
                try:
                    deleted += relation.delete_many(spec.delete)
                    inserted += relation.insert_many(spec.insert)
                except ReproError as exc:
                    raise BadRequestError(
                        str(exc), kind=_kind_of(exc)
                    ) from exc
                touched.append(spec.relation)
            self.counters.inc("mutate.batches", len(request.mutations))
            self.counters.inc("mutate.rows_inserted", inserted)
            self.counters.inc("mutate.rows_deleted", deleted)
            # Refresh sessions BEFORE computing the new fingerprint:
            # each session's log checkpoint rebases incrementally and
            # primes the database fingerprint memo, so the call below
            # is O(1) instead of a full content re-hash.
            patched = self._refresh_sessions(dataset, warnings_out)
            new_fingerprint = database.content_fingerprint()
        payload: Dict[str, object] = {
            "dataset": dataset.name,
            "params": dict(dataset.params),
            "fingerprint": new_fingerprint,
            "previous_fingerprint": old_fingerprint,
            "inserted": inserted,
            "deleted": deleted,
            "relations": touched,
            "refresh": self.refresh,
            "patched": patched,
        }
        return ServiceResult(payload, "none", tuple(warnings_out))

    def _refresh_sessions(
        self,
        dataset: ResolvedDataset,
        warnings_out: List[str],
    ) -> List[Dict[str, object]]:
        """Refresh every session serving *dataset*; re-cache the tables."""
        if self.refresh != "incremental":
            return []
        dataset_key = (
            dataset.name,
            tuple(sorted(dict(dataset.params).items())),
        )
        with self._sessions_lock:
            live = [
                (key, tracked)
                for key, tracked in self._sessions.items()
                if tracked.dataset_key == dataset_key
            ]
        patched: List[Dict[str, object]] = []
        for key, tracked in live:
            entry: Dict[str, object] = {
                "question": tracked.question,
                "attributes": list(tracked.attributes),
                "method": tracked.method,
            }
            try:
                with tracked.lock:
                    stats = tracked.session.refresh()
                    table = tracked.session.table()
            except ReproError as exc:
                # The successor plan itself fails (e.g. a count_distinct
                # verdict flip made a cube plan non-additive).  The
                # mutation stands; the session is dropped and the next
                # request surfaces the error through the normal path.
                with self._sessions_lock:
                    if self._sessions.get(key) is tracked:
                        del self._sessions[key]
                tracked.session.close()
                entry["error"] = {"kind": _kind_of(exc), "message": str(exc)}
                warnings_out.append(
                    f"incremental refresh failed for plan "
                    f"{tracked.question!r}: {exc}"
                )
                patched.append(entry)
                continue
            origin = "patched" if stats.strategy == "patched" else "built"
            self.cache.put(
                tracked.plan_fingerprint(stats.fingerprint),
                table,
                origin=origin,
            )
            self.counters.inc("mutate.refreshes")
            if stats.strategy == "rebuilt":
                warnings_out.append(
                    "incremental refresh fell back to full recompute "
                    f"(reason: {stats.reason})"
                )
            entry.update(stats.to_dict())
            patched.append(entry)
        return patched

    def _base_payload(
        self, prepared: PreparedRequest, table: ExplanationTable
    ) -> Dict[str, object]:
        original = prepared.question.query.evaluate_environment(
            table.q_original
        )
        return {
            "dataset": prepared.dataset.name,
            "params": dict(prepared.dataset.params),
            "fingerprint": prepared.fingerprint,
            "question": str(prepared.question.query),
            "direction": prepared.question.direction.value,
            "attributes": list(prepared.attributes),
            "method": prepared.method,
            "backend": prepared.backend_name,
            "warnings": list(prepared.static_warnings),
            "original_value": jsonable_value(original),
            "table_size": len(table),
        }

    # -- introspection ---------------------------------------------------------

    def stats_payload(self) -> Dict[str, object]:
        """The ``/v1/stats`` body: requests, cache, compute counters."""
        flat = self.counters.snapshot()
        nested: Dict[str, Dict[str, int]] = {"requests": {}, "compute": {}}
        for name, value in sorted(flat.items()):
            group, _, rest = name.partition(".")
            nested.setdefault(group, {})[rest or group] = value
        for default in ("tables_built", "coalesced_waits", "fallbacks"):
            nested["compute"].setdefault(default, 0)
        return {
            "requests": nested["requests"],
            "compute": nested["compute"],
            "cache": self.cache.stats().to_dict(),
            "incremental": self._incremental_stats(),
            "inflight": self.flights.inflight(),
            "shards": self.shards,
            "strategy": self.strategy,
        }

    def _incremental_stats(self) -> Dict[str, object]:
        """The ``incremental`` block of ``/v1/stats``.

        Patch/fallback totals are read back from the metrics registry —
        the sessions increment ``repro_incremental_*`` counters there —
        so the JSON stats and ``/v1/metrics`` can never disagree.
        """
        patches = 0
        fallbacks: Dict[str, int] = {}
        for name, value in self.metrics.snapshot().items():
            if name == "repro_incremental_patches_total":
                patches = int(value)
            elif name.startswith("repro_incremental_fallbacks_total"):
                match = re.search(r'reason="([^"]*)"', name)
                reason = match.group(1) if match else "unknown"
                fallbacks[reason] = fallbacks.get(reason, 0) + int(value)
        with self._sessions_lock:
            sessions = len(self._sessions)
            patchable = sum(
                1 for t in self._sessions.values() if t.session.patchable
            )
        return {
            "mode": self.refresh,
            "sessions": sessions,
            "patchable_sessions": patchable,
            "patches": patches,
            "fallbacks": fallbacks,
        }

    def metrics_text(self) -> str:
        """The ``/v1/metrics`` body: Prometheus text exposition.

        Concatenates this service's private registry (request, compute,
        cache, single-flight families) with the process-wide default
        registry (``repro_phase_seconds``,
        ``repro_program_p_iterations``); the namespaces are disjoint so
        no family repeats.
        """
        return render_prometheus(self.metrics, get_registry())

    def health_payload(self) -> Dict[str, object]:
        """The ``/v1/health`` body."""
        available = set(available_backends())
        return {
            "status": "ok",
            "version": __version__,
            "datasets": list(self.registry.names()),
            "backends": {
                name: name in available for name in backend_names()
            },
            "shards": self.shards,
            "refresh": self.refresh,
            "strategy": self.strategy,
        }
