"""The JSON wire protocol: request model, validation, serialization.

A request body (shared by ``/v1/explain`` and ``/v1/topk``) looks like::

    {
      "dataset": "natality",
      "params": {"rows": 8000, "seed": 7},
      "question": {
        "dir": "high",
        "expr": "(q1 / q2)",
        "aggregates": ["q1 := count(*) WHERE Birth.ap = 'good'",
                       "q2 := count(*)"]
      },
      "attributes": ["Birth.marital", "Birth.tobacco"],
      "method": "cube",
      "backend": "memory",
      "k": 5,
      "by": "intervention",
      "strategy": "minimal_append",
      "support_threshold": null,
      "timeout_s": 10.0
    }

``question`` and ``attributes`` may be omitted for datasets registered
with defaults.  All validation failures raise
:class:`~repro.service.errors.BadRequestError` with a stable ``kind``,
which the server renders as structured JSON — clients never see a
traceback.

Response *payloads* are deliberately free of per-request state (cache
hit/miss, coalescing) so that identical requests produce bit-identical
bodies; that metadata travels in the ``X-Repro-Cache`` and
``X-Repro-Warning`` headers instead.  The one deliberate exception is
``include_timings: true``, which opts a request into a per-response
``timings`` block (phase durations measured for *this* execution) —
diagnostics requests trade bit-identical bodies for observability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.explainer import AUTO_METHOD, METHODS
from ..core.topk import RankedExplanation
from ..engine.types import NULL, Value, is_dummy, is_null
from .errors import BadRequestError

DEGREES = ("intervention", "aggravation", "hybrid")
STRATEGIES = ("no_minimal", "minimal_self_join", "minimal_append")
MINIMALITIES = ("general", "specific")


@dataclass(frozen=True)
class QuestionSpec:
    """The textual question form accepted over the wire."""

    direction: str
    expression: str
    aggregates: Tuple[str, ...]

    @classmethod
    def from_value(cls, value: object) -> "QuestionSpec":
        if not isinstance(value, Mapping):
            raise BadRequestError(
                "question must be an object with dir/expr/aggregates"
            )
        direction = value.get("dir", value.get("direction"))
        expression = value.get("expr", value.get("expression"))
        aggregates = value.get("aggregates")
        if not isinstance(direction, str) or direction.lower() not in (
            "high",
            "low",
        ):
            raise BadRequestError("question.dir must be 'high' or 'low'")
        if not isinstance(expression, str) or not expression.strip():
            raise BadRequestError("question.expr must be a non-empty string")
        if (
            not isinstance(aggregates, Sequence)
            or isinstance(aggregates, str)
            or not aggregates
            or not all(isinstance(a, str) for a in aggregates)
        ):
            raise BadRequestError(
                "question.aggregates must be a non-empty list of "
                "'name := agg(arg) [WHERE ...]' strings"
            )
        return cls(direction.lower(), expression, tuple(aggregates))


@dataclass(frozen=True)
class ServiceRequest:
    """One validated explanation/top-K request."""

    dataset: str
    params: Tuple[Tuple[str, object], ...] = ()
    question: Optional[QuestionSpec] = None
    attributes: Optional[Tuple[str, ...]] = None
    method: str = "cube"
    backend: str = "memory"
    k: int = 5
    by: str = "intervention"
    strategy: str = "minimal_append"
    minimality: str = "general"
    hybrid_weight: float = 0.5
    support_threshold: Optional[float] = None
    timeout_s: Optional[float] = None
    #: Opt-in per-response ``timings`` block (see module docstring).
    include_timings: bool = False

    @classmethod
    def from_dict(cls, data: object) -> "ServiceRequest":
        if not isinstance(data, Mapping):
            raise BadRequestError("request body must be a JSON object")
        unknown = set(data) - _KNOWN_FIELDS
        if unknown:
            raise BadRequestError(
                f"unknown request fields: {sorted(unknown)}",
                kind="unknown_field",
            )
        dataset = data.get("dataset")
        if not isinstance(dataset, str) or not dataset:
            raise BadRequestError("dataset must be a non-empty string")
        params = data.get("params") or {}
        if not isinstance(params, Mapping):
            raise BadRequestError("params must be a JSON object")
        question = (
            QuestionSpec.from_value(data["question"])
            if data.get("question") is not None
            else None
        )
        attributes: Optional[Tuple[str, ...]] = None
        if data.get("attributes") is not None:
            raw = data["attributes"]
            if (
                not isinstance(raw, Sequence)
                or isinstance(raw, str)
                or not all(isinstance(a, str) for a in raw)
            ):
                raise BadRequestError("attributes must be a list of strings")
            if not raw:
                raise BadRequestError("attributes must not be empty")
            attributes = tuple(raw)
        method = _choice(data, "method", METHODS + (AUTO_METHOD,), "cube")
        backend = data.get("backend", "memory")
        if not isinstance(backend, str) or not backend:
            raise BadRequestError("backend must be a non-empty string")
        k = data.get("k", 5)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise BadRequestError("k must be a positive integer")
        by = _choice(data, "by", DEGREES, "intervention")
        strategy = _choice(data, "strategy", STRATEGIES, "minimal_append")
        minimality = _choice(data, "minimality", MINIMALITIES, "general")
        hybrid_weight = _number(data, "hybrid_weight", 0.5)
        if not 0.0 <= hybrid_weight <= 1.0:
            raise BadRequestError("hybrid_weight must be in [0, 1]")
        support = data.get("support_threshold")
        if support is not None and not isinstance(support, (int, float)):
            raise BadRequestError("support_threshold must be a number")
        timeout_s = data.get("timeout_s")
        if timeout_s is not None:
            if not isinstance(timeout_s, (int, float)) or timeout_s <= 0:
                raise BadRequestError("timeout_s must be a positive number")
            timeout_s = float(timeout_s)
        include_timings = data.get("include_timings", False)
        if not isinstance(include_timings, bool):
            raise BadRequestError("include_timings must be a boolean")
        return cls(
            dataset=dataset,
            params=tuple(sorted(params.items())),
            question=question,
            attributes=attributes,
            method=method,
            backend=backend,
            k=k,
            by=by,
            strategy=strategy,
            minimality=minimality,
            hybrid_weight=hybrid_weight,
            support_threshold=(
                float(support) if support is not None else None
            ),
            timeout_s=timeout_s,
            include_timings=include_timings,
        )


_KNOWN_FIELDS = {
    "dataset",
    "params",
    "question",
    "attributes",
    "method",
    "backend",
    "k",
    "by",
    "strategy",
    "minimality",
    "hybrid_weight",
    "support_threshold",
    "timeout_s",
    "include_timings",
}


# -- mutation requests ------------------------------------------------------


def _wire_row(value: object, where: str) -> Tuple[Value, ...]:
    """One wire row (a JSON array of scalars) as an engine row tuple."""
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise BadRequestError(f"{where} must be an array of scalar values")
    row: List[Value] = []
    for cell in value:
        if cell is None:
            row.append(NULL)
        elif isinstance(cell, (int, float, str, bool)):
            row.append(cell)
        else:
            raise BadRequestError(
                f"{where} cells must be scalars or null, got {type(cell).__name__}"
            )
    return tuple(row)


def _wire_rows(value: object, where: str) -> Tuple[Tuple[Value, ...], ...]:
    if value is None:
        return ()
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise BadRequestError(f"{where} must be an array of rows")
    return tuple(
        _wire_row(row, f"{where}[{i}]") for i, row in enumerate(value)
    )


@dataclass(frozen=True)
class MutationSpec:
    """One relation's insert/delete batch inside a mutate request.

    Deletes are applied before inserts (per spec), so an "update" can
    be expressed as a delete+insert pair against one relation without
    tripping primary-key conflicts.
    """

    relation: str
    insert: Tuple[Tuple[Value, ...], ...] = ()
    delete: Tuple[Tuple[Value, ...], ...] = ()

    @classmethod
    def from_value(cls, value: object, index: int) -> "MutationSpec":
        where = f"mutations[{index}]"
        if not isinstance(value, Mapping):
            raise BadRequestError(
                f"{where} must be an object with relation/insert/delete"
            )
        unknown = set(value) - {"relation", "insert", "delete"}
        if unknown:
            raise BadRequestError(
                f"{where}: unknown fields {sorted(unknown)}",
                kind="unknown_field",
            )
        relation = value.get("relation")
        if not isinstance(relation, str) or not relation:
            raise BadRequestError(f"{where}.relation must be a non-empty string")
        insert = _wire_rows(value.get("insert"), f"{where}.insert")
        delete = _wire_rows(value.get("delete"), f"{where}.delete")
        if not insert and not delete:
            raise BadRequestError(
                f"{where} must carry at least one insert or delete row"
            )
        return cls(relation=relation, insert=insert, delete=delete)


@dataclass(frozen=True)
class MutateRequest:
    """One validated ``POST /v1/mutate`` request."""

    dataset: str
    params: Tuple[Tuple[str, object], ...] = ()
    mutations: Tuple[MutationSpec, ...] = ()

    @classmethod
    def from_dict(cls, data: object) -> "MutateRequest":
        if not isinstance(data, Mapping):
            raise BadRequestError("request body must be a JSON object")
        unknown = set(data) - {"dataset", "params", "mutations"}
        if unknown:
            raise BadRequestError(
                f"unknown request fields: {sorted(unknown)}",
                kind="unknown_field",
            )
        dataset = data.get("dataset")
        if not isinstance(dataset, str) or not dataset:
            raise BadRequestError("dataset must be a non-empty string")
        params = data.get("params") or {}
        if not isinstance(params, Mapping):
            raise BadRequestError("params must be a JSON object")
        raw = data.get("mutations")
        if (
            not isinstance(raw, Sequence)
            or isinstance(raw, (str, bytes))
            or not raw
        ):
            raise BadRequestError(
                "mutations must be a non-empty array of "
                "{relation, insert, delete} objects"
            )
        mutations = tuple(
            MutationSpec.from_value(m, i) for i, m in enumerate(raw)
        )
        return cls(
            dataset=dataset,
            params=tuple(sorted(params.items())),
            mutations=mutations,
        )


def _choice(
    data: Mapping, name: str, allowed: Sequence[str], default: str
) -> str:
    value = data.get(name, default)
    if value is None:
        return default
    if value not in allowed:
        raise BadRequestError(
            f"{name} must be one of {tuple(allowed)}, got {value!r}"
        )
    return value


def _number(data: Mapping, name: str, default: float) -> float:
    value = data.get(name, default)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise BadRequestError(f"{name} must be a number")
    return float(value)


# -- response serialization -------------------------------------------------


def jsonable_value(value: Value):
    """An engine value as a JSON-safe scalar.

    NULL/DUMMY become the strings ``"null"``/``"*"`` (distinguishable
    from a JSON null, which we never emit for degrees); non-finite
    floats are stringified the way :mod:`repro.core.report` does.
    """
    if is_null(value):
        return "null"
    if is_dummy(value):
        return "*"
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    if isinstance(value, (int, float, str, bool)):
        return value
    return str(value)


def ranking_payload(
    ranking: Sequence[RankedExplanation],
) -> List[Dict[str, object]]:
    """The canonical JSON form of a ranked explanation list.

    Shared by the server and by offline comparisons: serializing the
    same ranking always produces the same structure, which is what the
    "responses are bit-identical to the offline Explainer result"
    acceptance check relies on.
    """
    return [
        {
            "rank": r.rank,
            "explanation": str(r.explanation),
            "degree": jsonable_value(r.degree),
        }
        for r in ranking
    ]
