"""Explanations-as-a-service: cache, coalescing, HTTP serving.

Algorithm 1's cost profile — expensive table-*M* construction, cheap
top-K scans — makes the explanation workload a natural fit for a
compute-once-serve-many deployment.  This package turns the batch
reproduction into that serving system, with stdlib-only dependencies:

* :mod:`~repro.service.cache` — a content-addressed LRU + byte-budget
  cache of finalized explanation tables, keyed by the
  :class:`~repro.core.explainer.ExplanationPlan` fingerprint (database
  content hash, question, attributes, method, backend);
* :mod:`~repro.service.coalescer` — single-flight deduplication of
  concurrent identical requests;
* :mod:`~repro.service.registry` — named datasets with per-parameter
  memoization and request defaults;
* :mod:`~repro.service.engine` — the transport-agnostic
  :class:`ExplanationService` tying the above to the execution-backend
  registry, with graceful degradation to the memory engine;
* :mod:`~repro.service.server` — the asyncio HTTP server
  (``/v1/explain``, ``/v1/topk``, ``/v1/health``, ``/v1/stats``) and
  the :class:`BackgroundServer` thread harness;
* :mod:`~repro.service.client` — a thin blocking client.

Start a server with ``python -m repro serve``; see ``docs/service.md``.
"""

from .cache import (
    REFRESH_MODES,
    CacheStats,
    ExplanationTableCache,
    estimate_table_bytes,
    incremental_key,
)
from .client import ServiceClient, ServiceResponse
from .coalescer import SingleFlight
from .engine import ExplanationService, ServiceResult, rank_table
from .errors import (
    BadRequestError,
    ClientError,
    NotFoundError,
    PayloadTooLargeError,
    RequestTimeoutError,
    ServiceError,
)
from .protocol import (
    MutateRequest,
    MutationSpec,
    QuestionSpec,
    ServiceRequest,
    ranking_payload,
)
from .registry import DatasetRegistry, ResolvedDataset
from .server import BackgroundServer, ExplanationServer

__all__ = [
    "BackgroundServer",
    "BadRequestError",
    "CacheStats",
    "ClientError",
    "DatasetRegistry",
    "ExplanationServer",
    "ExplanationService",
    "ExplanationTableCache",
    "MutateRequest",
    "MutationSpec",
    "NotFoundError",
    "PayloadTooLargeError",
    "QuestionSpec",
    "REFRESH_MODES",
    "RequestTimeoutError",
    "ResolvedDataset",
    "ServiceClient",
    "ServiceError",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceResult",
    "SingleFlight",
    "estimate_table_bytes",
    "incremental_key",
    "rank_table",
    "ranking_payload",
]
