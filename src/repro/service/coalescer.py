"""Single-flight request coalescing.

When N identical requests arrive concurrently and the result is not
cached yet, computing the explanation table N times is pure waste —
the table is deterministic in its plan fingerprint.  The coalescer
guarantees that for any key, at most one computation is in flight: the
first caller (the *leader*) runs the function; every other caller with
the same key blocks on the leader's future and receives the same
result object.  If the leader raises, the exception propagates to all
waiters and the key is released so a later request can retry.

The design follows Go's ``golang.org/x/sync/singleflight``, adapted to
Python threads via :class:`concurrent.futures.Future` (the serving
layer runs explanation builds on a thread pool, so thread-level
coalescing is the right granularity).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Callable, Dict, Optional, Tuple, TypeVar

T = TypeVar("T")


class SingleFlight:
    """Coalesce concurrent calls with the same key into one execution."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, "Future[T]"] = {}

    def do(
        self,
        key: str,
        fn: Callable[[], T],
        *,
        timeout: Optional[float] = None,
    ) -> Tuple[T, bool]:
        """Run ``fn()`` once per concurrent *key*; returns ``(result, leader)``.

        *leader* is True for the caller that actually executed *fn*.
        Waiters re-raise the leader's exception (if any); *timeout*
        bounds how long a waiter blocks on the leader.
        """
        with self._lock:
            future = self._inflight.get(key)
            if future is None:
                future = Future()
                self._inflight[key] = future
                leader = True
            else:
                leader = False
        if not leader:
            return future.result(timeout=timeout), False
        try:
            result = fn()
        except BaseException as exc:
            future.set_exception(exc)
            with self._lock:
                self._inflight.pop(key, None)
            raise
        future.set_result(result)
        with self._lock:
            self._inflight.pop(key, None)
        return result, True

    def inflight(self) -> int:
        """Number of keys currently being computed."""
        with self._lock:
            return len(self._inflight)

    def is_inflight(self, key: str) -> bool:
        """True while a leader for *key* is still running."""
        with self._lock:
            return key in self._inflight
