"""Single-flight request coalescing.

When N identical requests arrive concurrently and the result is not
cached yet, computing the explanation table N times is pure waste —
the table is deterministic in its plan fingerprint.  The coalescer
guarantees that for any key, at most one computation is in flight: the
first caller (the *leader*) runs the function; every other caller with
the same key blocks on the leader's future and receives the same
result object.  If the leader raises, the exception propagates to all
waiters and the key is released so a later request can retry.

The design follows Go's ``golang.org/x/sync/singleflight``, adapted to
Python threads via :class:`concurrent.futures.Future` (the serving
layer runs explanation builds on a thread pool, so thread-level
coalescing is the right granularity).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Callable, Dict, Optional, Tuple, TypeVar

from ..obs import Counter, Gauge, MetricsRegistry

T = TypeVar("T")


class SingleFlight:
    """Coalesce concurrent calls with the same key into one execution."""

    def __init__(self, *, metrics: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, "Future[T]"] = {}
        self._m_leaders: Optional[Counter] = None
        self._m_waiters: Optional[Counter] = None
        self._m_gauge: Optional[Gauge] = None
        if metrics is not None:
            self._m_leaders = metrics.counter(
                "repro_singleflight_total",
                labels={"outcome": "leader"},
                help="Single-flight calls by outcome.",
            )
            self._m_waiters = metrics.counter(
                "repro_singleflight_total",
                labels={"outcome": "coalesced"},
                help="Single-flight calls by outcome.",
            )
            self._m_gauge = metrics.gauge(
                "repro_inflight_builds",
                help="Keys with a computation currently in flight.",
            )

    def do(
        self,
        key: str,
        fn: Callable[[], T],
        *,
        timeout: Optional[float] = None,
    ) -> Tuple[T, bool]:
        """Run ``fn()`` once per concurrent *key*; returns ``(result, leader)``.

        *leader* is True for the caller that actually executed *fn*.
        Waiters re-raise the leader's exception (if any); *timeout*
        bounds how long a waiter blocks on the leader.
        """
        with self._lock:
            future = self._inflight.get(key)
            if future is None:
                future = Future()
                self._inflight[key] = future
                leader = True
            else:
                leader = False
            if self._m_gauge is not None:
                self._m_gauge.set(len(self._inflight))
        if not leader:
            if self._m_waiters is not None:
                self._m_waiters.inc()
            return future.result(timeout=timeout), False
        if self._m_leaders is not None:
            self._m_leaders.inc()
        try:
            result = fn()
        except BaseException as exc:
            future.set_exception(exc)
            self._release(key)
            raise
        future.set_result(result)
        self._release(key)
        return result, True

    def _release(self, key: str) -> None:
        with self._lock:
            self._inflight.pop(key, None)
            if self._m_gauge is not None:
                self._m_gauge.set(len(self._inflight))

    def inflight(self) -> int:
        """Number of keys currently being computed."""
        with self._lock:
            return len(self._inflight)

    def is_inflight(self, key: str) -> bool:
        """True while a leader for *key* is still running."""
        with self._lock:
            return key in self._inflight
