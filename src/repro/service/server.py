"""Stdlib-only asyncio HTTP server for the explanation service.

``python -m repro serve`` starts one of these.  The event loop only
parses HTTP and JSON; every explanation computation runs on a bounded
:class:`~concurrent.futures.ThreadPoolExecutor` behind
``asyncio.wait_for`` so slow builds cannot starve the accept loop and
every request has a deadline.

Endpoints (JSON in, JSON out, one request per connection):

* ``GET  /v1/health`` — liveness, registered datasets, backend availability;
* ``GET  /v1/stats``  — request/cache/compute counters;
* ``GET  /v1/metrics`` — Prometheus text exposition (request latency
  histograms, cache/coalescer counters, pipeline phase histograms);
* ``POST /v1/explain`` — build (or fetch) the table *M*, return metadata
  plus top-K under both degrees;
* ``POST /v1/topk``   — ranked explanations for one degree/strategy;
* ``POST /v1/analyze`` — the static plan certificate (certified
  convergence bound, per-aggregate additivity verdicts, lint
  diagnostics) with no table build;
* ``POST /v1/mutate`` — batch inserts/deletes against a registered
  dataset; under ``refresh="incremental"`` live explanation tables are
  patched in place and re-cached under the successor fingerprint.

Per-request serving metadata (cache hit/miss/coalesced, degradation
warnings) travels in ``X-Repro-Cache`` / ``X-Repro-Warning`` response
headers, keeping bodies bit-identical across identical requests.  All
failures — malformed JSON, bad predicates, unknown datasets, timeouts
— are structured JSON errors, never tracebacks.

:class:`BackgroundServer` runs the whole thing on a daemon thread for
tests, benchmarks, and notebooks.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Awaitable, Callable, Dict, Optional, Tuple, Union

from .engine import ExplanationService, ServiceResult
from .errors import (
    BadRequestError,
    NotFoundError,
    PayloadTooLargeError,
    RequestTimeoutError,
    ServiceError,
)
from .protocol import MutateRequest, ServiceRequest

_MAX_HEADER_BYTES = 16 * 1024
_IO_TIMEOUT = 30.0  # reading the request / draining the response

#: JSON payloads are dicts; ``/v1/metrics`` returns pre-rendered text.
Payload = Union[dict, str]
Handler = Callable[
    [Optional[dict]], Awaitable[Tuple[int, Payload, Dict[str, str]]]
]


class ExplanationServer:
    """One asyncio HTTP server wrapping an :class:`ExplanationService`."""

    def __init__(
        self,
        service: Optional[ExplanationService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        request_timeout: float = 30.0,
        max_request_bytes: int = 1024 * 1024,
        max_workers: int = 8,
    ) -> None:
        self.service = service if service is not None else ExplanationService()
        self.requested_host = host
        self.requested_port = port
        self.request_timeout = request_timeout
        self.max_request_bytes = max_request_bytes
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self.host = host
        self.port = port

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (resolves port 0 to a real port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.requested_host, self.requested_port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the listening socket and release the worker pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection handling ----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=_IO_TIMEOUT
                )
            except ServiceError as exc:
                await self._respond_error(writer, exc)
                return
            except (
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                ConnectionError,
                ValueError,
            ):
                await self._respond_error(
                    writer, BadRequestError("malformed HTTP request")
                )
                return
            status, payload, headers = await self._dispatch(method, path, body)
            await self._respond(writer, status, payload, headers)
        except ConnectionError:  # client went away mid-response
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Optional[bytes]]:
        request_line = await reader.readline()
        if not request_line:
            raise ConnectionError("empty request")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise BadRequestError("malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > _MAX_HEADER_BYTES:
                raise PayloadTooLargeError("request headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body: Optional[bytes] = None
        length_text = headers.get("content-length")
        if length_text is not None:
            try:
                length = int(length_text)
            except ValueError:
                raise BadRequestError("bad Content-Length header") from None
            if length < 0:
                raise BadRequestError("bad Content-Length header")
            if length > self.max_request_bytes:
                raise PayloadTooLargeError(
                    f"request body of {length} bytes exceeds the "
                    f"{self.max_request_bytes}-byte limit"
                )
            body = await reader.readexactly(length)
        path = target.split("?", 1)[0]
        return method.upper(), path, body

    # -- routing ------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, Payload, Dict[str, str]]:
        routes: Dict[Tuple[str, str], Handler] = {
            ("GET", "/v1/health"): self._handle_health,
            ("GET", "/v1/stats"): self._handle_stats,
            ("GET", "/v1/metrics"): self._handle_metrics,
            ("POST", "/v1/explain"): self._handle_explain,
            ("POST", "/v1/topk"): self._handle_topk,
            ("POST", "/v1/analyze"): self._handle_analyze,
            ("POST", "/v1/mutate"): self._handle_mutate,
        }
        handler = routes.get((method, path))
        if handler is None:
            known_paths = {p for _, p in routes}
            if path in known_paths:
                exc: ServiceError = BadRequestError(
                    f"method {method} not allowed on {path}",
                    kind="method_not_allowed",
                )
                exc.status = 405
            else:
                exc = NotFoundError(
                    f"no such endpoint: {path}", kind="unknown_endpoint"
                )
            self.service.counters.inc("requests.errors")
            return exc.status, _error_payload(exc), {}
        data: Optional[dict] = None
        if method == "POST":
            if body is None:
                body = b""
            try:
                data = json.loads(body.decode("utf-8")) if body else {}
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                self.service.counters.inc("requests.errors")
                err = BadRequestError(
                    f"request body is not valid JSON: {exc}", kind="bad_json"
                )
                return err.status, _error_payload(err), {}
        latency = self.service.metrics.histogram(
            "repro_request_seconds",
            labels={"endpoint": path},
            help="End-to-end request handling latency by endpoint.",
        )
        start = time.perf_counter()
        try:
            return await handler(data)
        except ServiceError as exc:
            self.service.counters.inc("requests.errors")
            if isinstance(exc, RequestTimeoutError):
                self.service.counters.inc("requests.timeouts")
            return exc.status, _error_payload(exc), {}
        except Exception as exc:  # noqa: BLE001 - last-resort containment
            self.service.counters.inc("requests.errors")
            print(
                f"repro.service: internal error handling {path}: "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            err = ServiceError("internal server error")
            return err.status, _error_payload(err), {}
        finally:
            latency.observe(time.perf_counter() - start)

    # -- handlers -------------------------------------------------------------

    async def _handle_health(self, _body) -> Tuple[int, dict, Dict[str, str]]:
        self.service.counters.inc("requests.health")
        return 200, self.service.health_payload(), {}

    async def _handle_stats(self, _body) -> Tuple[int, dict, Dict[str, str]]:
        self.service.counters.inc("requests.stats")
        return 200, self.service.stats_payload(), {}

    async def _handle_metrics(
        self, _body
    ) -> Tuple[int, str, Dict[str, str]]:
        self.service.counters.inc("requests.metrics")
        return (
            200,
            self.service.metrics_text(),
            {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
        )

    async def _handle_explain(self, body) -> Tuple[int, dict, Dict[str, str]]:
        self.service.counters.inc("requests.explain")
        request = ServiceRequest.from_dict(body)
        result = await self._run_service_call(
            lambda: self.service.explain(request), request
        )
        return 200, result.payload, _result_headers(result)

    async def _handle_topk(self, body) -> Tuple[int, dict, Dict[str, str]]:
        self.service.counters.inc("requests.topk")
        request = ServiceRequest.from_dict(body)
        result = await self._run_service_call(
            lambda: self.service.topk(request), request
        )
        return 200, result.payload, _result_headers(result)

    async def _handle_analyze(self, body) -> Tuple[int, dict, Dict[str, str]]:
        self.service.counters.inc("requests.analyze")
        request = ServiceRequest.from_dict(body)
        result = await self._run_service_call(
            lambda: self.service.analyze(request), request
        )
        return 200, result.payload, _result_headers(result)

    async def _handle_mutate(self, body) -> Tuple[int, dict, Dict[str, str]]:
        self.service.counters.inc("requests.mutate")
        request = MutateRequest.from_dict(body)
        result = await self._run_service_call(
            lambda: self.service.mutate(request), None
        )
        return 200, result.payload, _result_headers(result)

    async def _run_service_call(
        self, fn: Callable[[], ServiceResult], request: Optional[ServiceRequest]
    ) -> ServiceResult:
        timeout = self.request_timeout
        if request is not None and request.timeout_s is not None:
            timeout = min(timeout, request.timeout_s)
        loop = asyncio.get_running_loop()
        try:
            return await asyncio.wait_for(
                loop.run_in_executor(self._executor, fn), timeout
            )
        except asyncio.TimeoutError:
            raise RequestTimeoutError(
                f"request did not complete within {timeout:g}s"
            ) from None

    # -- response writing --------------------------------------------------------

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Payload,
        headers: Dict[str, str],
    ) -> None:
        headers = dict(headers)
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = headers.pop(
                "Content-Type", "text/plain; charset=utf-8"
            )
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "OK")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await asyncio.wait_for(writer.drain(), timeout=_IO_TIMEOUT)

    async def _respond_error(
        self, writer: asyncio.StreamWriter, exc: ServiceError
    ) -> None:
        self.service.counters.inc("requests.errors")
        try:
            await self._respond(writer, exc.status, _error_payload(exc), {})
        except (ConnectionError, asyncio.TimeoutError):
            pass


def _error_payload(exc: ServiceError) -> dict:
    return {"error": {"type": exc.kind, "message": str(exc)}}


def _result_headers(result: ServiceResult) -> Dict[str, str]:
    headers = {"X-Repro-Cache": result.cache_status}
    if result.warnings:
        headers["X-Repro-Warning"] = " | ".join(
            w.replace("\n", " ") for w in result.warnings
        )
    return headers


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


class BackgroundServer:
    """Run an :class:`ExplanationServer` on a daemon thread.

    The context-manager form is what tests, benchmarks, and notebooks
    want::

        with BackgroundServer(service) as handle:
            client = handle.client()
            client.topk(dataset="natality")

    The event loop lives entirely on the background thread; ``stop()``
    (or context exit) shuts the server down and joins the thread.
    """

    def __init__(
        self,
        service: Optional[ExplanationService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **server_kwargs,
    ) -> None:
        self.server = ExplanationServer(
            service, host=host, port=port, **server_kwargs
        )
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def service(self) -> ExplanationService:
        return self.server.service

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return self.server.url

    def client(self, **kwargs):
        """A :class:`~repro.service.client.ServiceClient` for this server."""
        from .client import ServiceClient

        return ServiceClient(self.host, self.port, **kwargs)

    def start(self, timeout: float = 30.0) -> "BackgroundServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServiceError("background server did not start in time")
        if self._startup_error is not None:
            raise ServiceError(
                f"background server failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # surface bind errors to start()
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            loop.run_forever()
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(self.server.stop())
        finally:
            loop.close()

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._thread = None
        self._loop = None
        self._ready.clear()

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
