"""Service-layer errors with HTTP status and machine-readable kinds.

Every error the serving subsystem raises deliberately carries a
``status`` (the HTTP response code) and a ``kind`` (a stable snake_case
identifier clients can switch on), so the server can render *any* of
them as a structured JSON body — ``{"error": {"type": ..., "message":
...}}`` — instead of a traceback.
"""

from __future__ import annotations

from ..errors import ReproError


class ServiceError(ReproError):
    """Base class for serving-layer failures."""

    status: int = 500
    kind: str = "internal_error"

    def __init__(self, message: str, *, kind: str = "") -> None:
        super().__init__(message)
        if kind:
            self.kind = kind


class BadRequestError(ServiceError):
    """The request is malformed: bad JSON, bad field, bad predicate."""

    status = 400
    kind = "bad_request"


class NotFoundError(ServiceError):
    """An unknown endpoint or dataset was addressed."""

    status = 404
    kind = "not_found"


class PayloadTooLargeError(ServiceError):
    """The request body exceeds the server's size limit."""

    status = 413
    kind = "payload_too_large"


class RequestTimeoutError(ServiceError):
    """The computation did not finish within the request deadline."""

    status = 504
    kind = "timeout"


class ClientError(ServiceError):
    """Raised by :class:`repro.service.client.ServiceClient` when the
    server answered with an error response."""

    def __init__(self, status: int, payload: object) -> None:
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        message = (
            error.get("message", str(payload))
            if isinstance(error, dict)
            else str(payload)
        )
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.kind = (
            error.get("type", "error") if isinstance(error, dict) else "error"
        )
        self.payload = payload
