"""Optimized exact evaluation for all candidates (Section 6(i)).

When the numerical query is *not* intervention-additive, Algorithm 1
does not apply and the paper's prototype falls back to a naive loop it
acknowledges is "too slow"; Section 6(i) lists optimizing that loop as
future work.  This module is one such optimization.  It computes the
**exact** (program-P) intervention degree for every candidate
explanation, sharing work across candidates:

* the universal table is materialized once and every row gets an id;
* per relevant attribute, a **posting list** maps each value to the
  ids of the universal rows carrying it, so ``σ_φ(U)`` is a set
  intersection, not a scan;
* per relation, each tuple's total occurrence count in U is
  precomputed, so Rule (i) seeds (``tuples all of whose rows satisfy
  φ``) come from counting occurrences inside ``σ_φ(U)`` only;
* ``Q(D − Δ^φ)`` is evaluated by row survival (a universal row
  survives iff none of its projections were deleted) against
  precomputed per-aggregate row-id sets — no joins are re-run.

The candidate set equals the cube algorithm's (every combination of
attribute values with support), so the output table is directly
comparable to — and validated against — both the cube table (on
additive queries) and the per-candidate exact evaluator.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..engine.cube import grouping_sets
from ..engine.database import Database, Delta
from ..engine.table import Table
from ..engine.types import DUMMY, Row, Value, is_null
from ..engine.universal import JoinTree, universal_table
from ..errors import QueryError
from ..obs import phase
from .cube_algorithm import MU_AGGR, MU_INTERV, ExplanationTable
from .intervention import make_strategy
from .numquery import AggregateQuery
from .question import UserQuestion


class IndexedInterventionEvaluator:
    """Exact degrees for all candidate explanations over ``attributes``.

    Usable for any numerical query (additive or not); asymptotically
    the per-candidate cost is dominated by the fixpoint and the
    survival scan, with the σ_φ(U) and seed computations reduced from
    full scans to posting-list work.
    """

    def __init__(
        self,
        database: Database,
        question: UserQuestion,
        attributes: Sequence[str],
        *,
        universal: Optional[Table] = None,
        strategy: Optional[str] = None,
    ) -> None:
        self.database = database
        self.question = question
        self.attributes = tuple(attributes)
        self.join_tree = JoinTree(database.schema)
        self.universal = (
            universal
            if universal is not None
            else universal_table(database, self.join_tree)
        )
        # Certify the convergence bound statically and assert it as a
        # runtime invariant on every per-candidate fixpoint run: program
        # P exceeding the certified bound means the analyzer (or the
        # engine) is wrong, and must be raised loudly, not absorbed.
        from ..analysis.fkgraph import certify_convergence

        self.convergence = certify_convergence(
            database.schema, total_rows=database.total_rows()
        )
        self.engine = make_strategy(
            database,
            strategy=strategy,
            universal=self.universal,
            join_tree=self.join_tree,
            certified_bound=self.convergence.bound,
        )
        self._n = len(self.universal)
        self._build_posting_lists()
        self._build_projection_cache()
        self._build_aggregate_indexes()

    # -- index construction ------------------------------------------------

    def _build_posting_lists(self) -> None:
        """attribute -> value -> frozenset of universal row ids.

        Built by a single scan of each attribute's *column* — the
        universal table's rows are never re-tupled.
        """
        self.postings: Dict[str, Dict[Value, Set[int]]] = {}
        for attr in self.attributes:
            lists: Dict[Value, Set[int]] = {}
            for idx, value in enumerate(self.universal.column(attr)):
                if is_null(value):
                    raise QueryError(
                        f"attribute {attr!r} contains NULL; explanation "
                        "attributes must be non-null"
                    )
                lists.setdefault(value, set()).add(idx)
            self.postings[attr] = lists

    def _build_projection_cache(self) -> None:
        """Per relation: row id -> tuple, and tuple -> total U count."""
        schema = self.database.schema
        self.row_tuples: Dict[str, List[Row]] = {}
        self.tuple_counts: Dict[str, Dict[Row, int]] = {}
        for name in schema.relation_names:
            rs = schema.relation(name)
            cols = [
                self.universal.column(f"{name}.{a}")
                for a in rs.attribute_names
            ]
            projected = list(zip(*cols)) if cols else [()] * self._n
            counts: Dict[Row, int] = {}
            for t in projected:
                counts[t] = counts.get(t, 0) + 1
            self.row_tuples[name] = projected
            self.tuple_counts[name] = counts

    def _build_aggregate_indexes(self) -> None:
        """Per aggregate: its WHERE row-id set and argument column."""
        from ..engine.expressions import compile_predicate

        self.agg_rows: Dict[str, FrozenSet[int]] = {}
        self.agg_arg_col: Dict[str, Optional[List[Value]]] = {}
        for q in self.question.query.aggregates:
            if q.where is None:
                ids: FrozenSet[int] = frozenset(range(self._n))
            else:
                needed = tuple(q.where.columns())
                fn = compile_predicate(q.where, needed)
                if not needed:
                    ids = (
                        frozenset(range(self._n))
                        if fn(())
                        else frozenset()
                    )
                else:
                    cols = [self.universal.column(c) for c in needed]
                    ids = frozenset(
                        idx
                        for idx, vals in enumerate(zip(*cols))
                        if fn(vals)
                    )
            self.agg_rows[q.name] = ids
            if q.aggregate.argument is None:
                self.agg_arg_col[q.name] = None
            else:
                self.agg_arg_col[q.name] = self.universal.column(
                    q.aggregate.argument
                )

    # -- per-candidate machinery --------------------------------------------

    def phi_row_ids(self, assignment: Dict[str, Value]) -> Set[int]:
        """σ_φ(U) as row ids, by posting-list intersection."""
        if not assignment:
            return set(range(self._n))
        lists = sorted(
            (self.postings[attr].get(value, set()) for attr, value in assignment.items()),
            key=len,
        )
        result = set(lists[0])
        for other in lists[1:]:
            result &= other
            if not result:
                break
        return result

    def seeds_from_rows(self, phi_rows: Set[int]) -> Delta:
        """Rule (i) seeds: tuples whose *every* U occurrence satisfies φ.

        Tuples with no U occurrence at all (possible only on a
        non-semijoin-reduced input) are seeded too, matching the
        literal ``R_i − Π_{A_i}(σ_¬φ U)``.
        """
        parts: Dict[str, Set[Row]] = {}
        for name in self.database.schema.relation_names:
            inside: Dict[Row, int] = {}
            projected = self.row_tuples[name]
            for idx in phi_rows:
                t = projected[idx]
                inside[t] = inside.get(t, 0) + 1
            counts = self.tuple_counts[name]
            seeded = {t for t, c in inside.items() if c == counts[t]}
            seeded.update(
                t
                for t in self.database.relation(name).rows()
                if t not in counts
            )
            parts[name] = seeded
        return Delta(self.database.schema, parts)

    def surviving_row_ids(self, delta: Delta) -> Set[int]:
        """U rows whose projections all survive ``D − Δ``.

        By construction of program P (closure + reduction) these are
        exactly the rows of ``U(D − Δ^φ)``.
        """
        deleted_sets = {
            name: delta.rows_for(name)
            for name in self.database.schema.relation_names
            if delta.rows_for(name)
        }
        if not deleted_sets:
            return set(range(self._n))
        survivors: Set[int] = set()
        for idx in range(self._n):
            dead = False
            for name, deleted in deleted_sets.items():
                if self.row_tuples[name][idx] in deleted:
                    dead = True
                    break
            if not dead:
                survivors.add(idx)
        return survivors

    def _aggregate_over(self, q: AggregateQuery, row_ids: Set[int]) -> Value:
        relevant = self.agg_rows[q.name] & row_ids
        kind = q.aggregate.kind
        if kind in ("count_star", "count"):
            return len(relevant)
        arg_col = self.agg_arg_col[q.name]
        assert arg_col is not None
        values = {
            arg_col[idx] for idx in relevant if not is_null(arg_col[idx])
        }
        if kind == "count_distinct":
            return len(values)
        raise QueryError(
            f"indexed evaluator supports count aggregates, not {kind!r}"
        )

    def degrees_for(self, assignment: Dict[str, Value]) -> Tuple[Value, Value, Dict[str, Value]]:
        """(μ_interv, μ_aggr, q_j(D_φ) values) for one candidate."""
        query = self.question.query
        phi_rows = self.phi_row_ids(assignment)
        aggr_values = {
            q.name: self._aggregate_over(q, phi_rows)
            for q in query.aggregates
        }
        mu_a = query.evaluate_environment(aggr_values)
        if not is_null(mu_a):
            mu_a = self.question.aggravation_sign * mu_a

        from .predicates import Explanation

        phi = Explanation.equality(self.database.schema, assignment)
        seeds = self.seeds_from_rows(phi_rows)
        delta = self.engine.compute(phi, seeds=seeds).delta
        survivors = self.surviving_row_ids(delta)
        interv_values = {
            q.name: self._aggregate_over(q, survivors)
            for q in query.aggregates
        }
        mu_i = query.evaluate_environment(interv_values)
        if not is_null(mu_i):
            mu_i = self.question.intervention_sign * mu_i
        return mu_i, mu_a, aggr_values

    # -- the full table --------------------------------------------------------

    def candidate_assignments(self) -> List[Dict[str, Value]]:
        """Every attribute-value combination with support in U,
        including partial ('don't care') combinations and the trivial
        one — the same candidate set the cube materializes."""
        attr_cols = [self.universal.column(a) for a in self.attributes]
        cells: Set[Tuple[Tuple[str, Value], ...]] = set()
        masks = [
            tuple(a in s for a in self.attributes)
            for s in grouping_sets(self.attributes)
        ]
        for values in set(zip(*attr_cols)):
            for mask in masks:
                cells.add(
                    tuple(
                        (a, v)
                        for a, v, keep in zip(self.attributes, values, mask)
                        if keep
                    )
                )
        return [dict(cell) for cell in sorted(cells, key=_cell_key)]

    def build_table(self) -> ExplanationTable:
        """The exact table *M* for all candidates."""
        query = self.question.query
        value_columns = [f"v_{q.name}" for q in query.aggregates]
        columns = list(self.attributes) + value_columns + [MU_INTERV, MU_AGGR]
        rows_out: List[Row] = []
        with phase(
            "indexed_table", certified_bound=self.convergence.bound
        ) as ph:
            for assignment in self.candidate_assignments():
                mu_i, mu_a, aggr_values = self.degrees_for(assignment)
                attr_values = tuple(
                    assignment.get(attr, DUMMY) for attr in self.attributes
                )
                v_values = tuple(
                    aggr_values[q.name] for q in query.aggregates
                )
                rows_out.append(attr_values + v_values + (mu_i, mu_a))
            ph.annotate(candidates=len(rows_out))
        return ExplanationTable(
            table=Table(columns, rows_out),
            attributes=self.attributes,
            aggregate_names=tuple(query.names),
            q_original={
                q.name: self._aggregate_over(q, set(range(self._n)))
                for q in query.aggregates
            },
        )


def _cell_key(
    cell: Tuple[Tuple[str, Value], ...]
) -> Tuple[int, Tuple[Tuple[str, Tuple[int, Any]], ...]]:
    from ..engine.types import sort_key

    return (len(cell), tuple((a, sort_key(v)) for a, v in cell))
