"""Textual syntax for numerical queries and user questions.

The programmatic API builds questions from AST objects; this module
accepts the compact text form used by the CLI and notebooks:

* an **aggregate query**::

      q1 := count(*) WHERE Birth.ap = 'good' AND Birth.race = 'Asian'
      q2 := count(distinct Publication.pubid) WHERE Publication.venue = 'SIGMOD'
      q3 := sum(Order.total)

* a **numerical expression** over the aggregate names, with the
  operators the paper allows in E (Eq. (1))::

      (q1 / q2) / (q3 / q4)
      0.5 * q1 - q2 + 1e-4

* a **question**: direction plus the above, via
  :func:`parse_question`.

The expression grammar is classic recursive descent::

    expr   := term (('+' | '-') term)*
    term   := factor (('*' | '/') factor)*
    factor := NUMBER | NAME | '-' factor | '(' expr ')'
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple, Union

from ..engine.aggregates import (
    AggregateSpec,
    agg_avg,
    agg_max,
    agg_min,
    agg_sum,
    count_distinct,
    count_star,
)
from ..engine.expressions import Arithmetic, Col, Const, Expression, neg
from ..errors import QueryError
from .numquery import AggregateQuery, NumericalQuery
from .predicates import parse_explanation
from .question import Direction, UserQuestion

_AGG_RE = re.compile(
    r"""
    ^\s*(?P<name>\w+)\s*:=\s*
    (?P<fn>count|sum|avg|min|max)\s*\(\s*
    (?P<arg>\*|distinct\s+[\w.]+|[\w.]+)
    \s*\)\s*
    (?:WHERE\s+(?P<where>.+))?\s*$
    """,
    re.VERBOSE | re.IGNORECASE,
)


def parse_aggregate_query(text: str) -> AggregateQuery:
    """Parse ``name := agg(arg) [WHERE predicate]``.

    The WHERE clause accepts the same conjunctive syntax as
    :func:`repro.core.predicates.parse_explanation` (equality and
    range atoms joined by AND).
    """
    match = _AGG_RE.match(text)
    if not match:
        raise QueryError(
            f"cannot parse aggregate query {text!r}; expected "
            "'name := count(*) WHERE ...'"
        )
    name = match.group("name")
    fn = match.group("fn").lower()
    arg = match.group("arg").strip()
    spec = _make_spec(fn, arg, name)
    where: Optional[Expression] = None
    where_text = match.group("where")
    if where_text:
        where = parse_explanation(where_text).to_expression()
    return AggregateQuery(name, spec, where)


def _make_spec(fn: str, arg: str, alias: str) -> AggregateSpec:
    if fn == "count":
        if arg == "*":
            return count_star(alias)
        lowered = arg.lower()
        if lowered.startswith("distinct"):
            column = arg[len("distinct"):].strip()
            return count_distinct(column, alias)
        return AggregateSpec("count", arg, alias)
    if arg == "*":
        raise QueryError(f"{fn}(*) is not a valid aggregate")
    makers = {"sum": agg_sum, "avg": agg_avg, "min": agg_min, "max": agg_max}
    return makers[fn](arg, alias)


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?"
    r"|\d+(?:[eE][+-]?\d+)?)|(?P<name>\w+)|(?P<op>[-+*/()]))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise QueryError(
                f"cannot tokenize expression at {remainder[:20]!r}"
            )
        pos = match.end()
        for kind in ("num", "name", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _ExprParser:
    """Recursive-descent parser for E expressions."""

    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of expression")
        self.pos += 1
        return token

    def expect_op(self, op: str) -> None:
        token = self.take()
        if token != ("op", op):
            raise QueryError(f"expected {op!r}, got {token[1]!r}")

    def parse(self) -> Expression:
        expr = self.expr()
        if self.peek() is not None:
            raise QueryError(
                f"trailing tokens in expression: {self.tokens[self.pos:]}"
            )
        return expr

    def expr(self) -> Expression:
        node = self.term()
        while self.peek() in (("op", "+"), ("op", "-")):
            _, op = self.take()
            node = Arithmetic(op, node, self.term())
        return node

    def term(self) -> Expression:
        node = self.factor()
        while self.peek() in (("op", "*"), ("op", "/")):
            _, op = self.take()
            node = Arithmetic(op, node, self.factor())
        return node

    def factor(self) -> Expression:
        kind, value = self.take()
        if kind == "num":
            number = float(value)
            return Const(int(number) if number.is_integer() and "." not in value and "e" not in value.lower() else number)
        if kind == "name":
            return Col(value)
        if (kind, value) == ("op", "-"):
            return neg(self.factor())
        if (kind, value) == ("op", "("):
            node = self.expr()
            self.expect_op(")")
            return node
        raise QueryError(f"unexpected token {value!r} in expression")


def parse_expression(text: str) -> Expression:
    """Parse an arithmetic E expression over aggregate names."""
    return _ExprParser(_tokenize(text)).parse()


def parse_numerical_query(
    expression: str, aggregates: Sequence[Union[str, AggregateQuery]]
) -> NumericalQuery:
    """Build ``Q = E(q1 … qm)`` from text parts.

    ``aggregates`` may mix already-built :class:`AggregateQuery`
    objects and ``name := …`` strings.
    """
    parsed = tuple(
        a if isinstance(a, AggregateQuery) else parse_aggregate_query(a)
        for a in aggregates
    )
    return NumericalQuery(parsed, parse_expression(expression))


def parse_question(
    direction: Union[str, Direction],
    expression: str,
    aggregates: Sequence[Union[str, AggregateQuery]],
) -> UserQuestion:
    """Build a full user question from text parts."""
    return UserQuestion(
        parse_numerical_query(expression, aggregates),
        Direction.parse(direction),
    )
