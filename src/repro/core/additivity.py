"""Intervention-additivity analysis (Definition 4.2 and Section 4.1).

An aggregate query q is *intervention-additive* when
``q(D − Δ^φ) = q(D) − q(D_φ)`` for every explanation φ.  Algorithm 1
relies on this identity to read intervention degrees straight off the
data cube.  The paper gives two sufficient conditions, both of which
this module checks:

* **count(*)** (and, by the same Corollary 3.6 argument, count(expr)
  and sum(expr)) over a schema with **no back-and-forth foreign keys**:
  the residual universal table is exactly ``σ_{¬φ}(U)``, and these
  aggregates are additive over disjoint unions of rows.
* **count(distinct R_i.pk)** when some back-and-forth foreign key
  ``R_j.fk ↔ R_i.pk`` exists and **every universal row contains a
  unique tuple from R_j** (footnote 11): deletion of an R_i key is
  all-or-nothing, so distinct counts subtract cleanly.

We additionally recognize the degenerate variant of the second
condition with no back-and-forth keys at all: count(distinct R_i.pk)
where each R_i tuple occurs in exactly one universal row (e.g. a
single-table schema counting its own primary key).

The data-level uniqueness condition is verified against the actual
universal table, so the report is instance-specific, exactly like the
paper's usage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..engine.database import Database
from ..engine.table import Table
from ..engine.universal import universal_table
from ..errors import NotAdditiveError
from .numquery import NumericalQuery


@dataclass(frozen=True)
class AggregateAdditivity:
    """Verdict for one aggregate query."""

    name: str
    additive: bool
    reason: str


@dataclass(frozen=True)
class AdditivityReport:
    """Verdict for a whole numerical query (additive iff all parts are)."""

    per_aggregate: Tuple[AggregateAdditivity, ...]

    @property
    def additive(self) -> bool:
        """True iff every component aggregate is intervention-additive."""
        return all(a.additive for a in self.per_aggregate)

    def explain(self) -> str:
        """A readable multi-line summary."""
        lines = [
            f"  {a.name}: {'additive' if a.additive else 'NOT additive'} — {a.reason}"
            for a in self.per_aggregate
        ]
        verdict = "intervention-additive" if self.additive else "NOT intervention-additive"
        return f"query is {verdict}:\n" + "\n".join(lines)

    def raise_if_not_additive(self) -> None:
        """Raise :class:`NotAdditiveError` unless all parts are additive."""
        if not self.additive:
            raise NotAdditiveError(self.explain())


def analyze_additivity(
    database: Database,
    query: NumericalQuery,
    *,
    universal: Optional[Table] = None,
) -> AdditivityReport:
    """Check every aggregate of *query* for intervention-additivity.

    The structural rules live in :mod:`repro.analysis.additivity`
    (which can also run them statically, without data); this wrapper
    resolves the footnote-11 data condition against the concrete
    universal table and keeps the historical report type.
    """
    from ..analysis.additivity import certify_additivity

    u = universal if universal is not None else universal_table(database)
    certificate = certify_additivity(
        database.schema, query, database=database, universal=u
    )
    return AdditivityReport(
        tuple(
            AggregateAdditivity(v.name, v.additive, v.reason)
            for v in certificate.verdicts
        )
    )


@dataclass(frozen=True)
class AdditivitySlack:
    """Empirical additivity audit for one (aggregate, explanation) pair.

    ``slack = (q(D) − q(D_φ)) − q(D − Δ^φ)``: zero when the additive
    identity is exact; positive when the cube over-estimates the
    residual value (the footnote-11 boundary).
    """

    aggregate: str
    phi: str
    q_d: object
    q_phi: object
    q_residual: object
    slack: float


def audit_additivity(
    database: Database,
    query: NumericalQuery,
    phis,
    *,
    universal: Optional[Table] = None,
) -> List[AdditivitySlack]:
    """Measure the *empirical* additivity slack on concrete explanations.

    The structural conditions of :func:`analyze_additivity` certify
    Section 4.1's sufficient conditions, which do not cover the
    interaction between each aggregate's WHERE predicate and φ
    (see ``tests/core/test_additivity_boundary.py``).  This audit runs
    program P for each explanation in *phis* and reports, per
    aggregate, the deviation between the cube identity
    ``q(D) − q(D_φ)`` and the ground truth ``q(D − Δ^φ)``.
    """
    from .intervention import InterventionEngine

    u = universal if universal is not None else universal_table(database)
    engine = InterventionEngine(database, universal=u)
    results: List[AdditivitySlack] = []
    originals = {q.name: q.evaluate(u) for q in query.aggregates}
    for phi in phis:
        delta = engine.compute(phi).delta
        residual_u = universal_table(database.subtract(delta))
        restricted = u.filter(phi.to_expression())
        for q in query.aggregates:
            q_d = originals[q.name]
            q_phi = q.evaluate(restricted)
            q_residual = q.evaluate(residual_u)
            slack = 0.0
            if all(
                isinstance(v, (int, float))
                for v in (q_d, q_phi, q_residual)
            ):
                slack = (q_d - q_phi) - q_residual
            results.append(
                AdditivitySlack(
                    aggregate=q.name,
                    phi=str(phi),
                    q_d=q_d,
                    q_phi=q_phi,
                    q_residual=q_residual,
                    slack=slack,
                )
            )
    return results
