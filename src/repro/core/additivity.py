"""Intervention-additivity analysis (Definition 4.2 and Section 4.1).

An aggregate query q is *intervention-additive* when
``q(D − Δ^φ) = q(D) − q(D_φ)`` for every explanation φ.  Algorithm 1
relies on this identity to read intervention degrees straight off the
data cube.  The paper gives two sufficient conditions, both of which
this module checks:

* **count(*)** (and, by the same Corollary 3.6 argument, count(expr)
  and sum(expr)) over a schema with **no back-and-forth foreign keys**:
  the residual universal table is exactly ``σ_{¬φ}(U)``, and these
  aggregates are additive over disjoint unions of rows.
* **count(distinct R_i.pk)** when some back-and-forth foreign key
  ``R_j.fk ↔ R_i.pk`` exists and **every universal row contains a
  unique tuple from R_j** (footnote 11): deletion of an R_i key is
  all-or-nothing, so distinct counts subtract cleanly.

We additionally recognize the degenerate variant of the second
condition with no back-and-forth keys at all: count(distinct R_i.pk)
where each R_i tuple occurs in exactly one universal row (e.g. a
single-table schema counting its own primary key).

The data-level uniqueness condition is verified against the actual
universal table, so the report is instance-specific, exactly like the
paper's usage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..engine.database import Database
from ..engine.table import Table
from ..engine.universal import universal_table
from ..errors import NotAdditiveError
from .numquery import AggregateQuery, NumericalQuery


@dataclass(frozen=True)
class AggregateAdditivity:
    """Verdict for one aggregate query."""

    name: str
    additive: bool
    reason: str


@dataclass(frozen=True)
class AdditivityReport:
    """Verdict for a whole numerical query (additive iff all parts are)."""

    per_aggregate: Tuple[AggregateAdditivity, ...]

    @property
    def additive(self) -> bool:
        """True iff every component aggregate is intervention-additive."""
        return all(a.additive for a in self.per_aggregate)

    def explain(self) -> str:
        """A readable multi-line summary."""
        lines = [
            f"  {a.name}: {'additive' if a.additive else 'NOT additive'} — {a.reason}"
            for a in self.per_aggregate
        ]
        verdict = "intervention-additive" if self.additive else "NOT intervention-additive"
        return f"query is {verdict}:\n" + "\n".join(lines)

    def raise_if_not_additive(self) -> None:
        """Raise :class:`NotAdditiveError` unless all parts are additive."""
        if not self.additive:
            raise NotAdditiveError(self.explain())


def _unqualify(column: str) -> Tuple[Optional[str], str]:
    """Split a possibly-qualified column into (relation, attribute)."""
    if "." in column:
        rel, attr = column.split(".", 1)
        return rel, attr
    return None, column


def _relation_unique_in_universal(
    database: Database, universal: Table, relation: str
) -> bool:
    """True iff each tuple of *relation* occurs in exactly one U row."""
    rs = database.schema.relation(relation)
    qualified = [f"{relation}.{a}" for a in rs.attribute_names]
    bag = universal.project(qualified, distinct=False)
    return len(bag) == len(set(bag.rows()))


def _check_aggregate(
    database: Database, universal: Table, q: AggregateQuery
) -> AggregateAdditivity:
    schema = database.schema
    kind = q.aggregate.kind
    if kind in ("count_star", "count", "sum"):
        if not schema.has_back_and_forth:
            return AggregateAdditivity(
                q.name,
                True,
                f"{kind} with no back-and-forth foreign keys "
                "(Corollary 3.6: U(D-Δ) = σ_¬φ(U))",
            )
        return AggregateAdditivity(
            q.name,
            False,
            f"{kind} is not additive in the presence of back-and-forth "
            "foreign keys (Section 4.1)",
        )
    if kind == "count_distinct":
        rel_name, attr = _unqualify(q.aggregate.argument or "")
        if rel_name is None or not schema.has_relation(rel_name):
            return AggregateAdditivity(
                q.name,
                False,
                f"count(distinct {q.aggregate.argument}) argument is not a "
                "qualified relation column",
            )
        target = schema.relation(rel_name)
        if tuple(target.primary_key) != (attr,):
            return AggregateAdditivity(
                q.name,
                False,
                f"count(distinct {rel_name}.{attr}) does not count "
                f"{rel_name}'s primary key {target.primary_key}",
            )
        # Footnote 11 condition: a b&f key into rel_name whose source
        # relation is unique per universal row.
        for fk in schema.back_and_forth_keys:
            if fk.target != rel_name:
                continue
            if _relation_unique_in_universal(database, universal, fk.source):
                return AggregateAdditivity(
                    q.name,
                    True,
                    f"count(distinct {rel_name}.{attr}) with back-and-forth "
                    f"key {fk} and unique {fk.source} tuples per universal "
                    "row (footnote 11)",
                )
            return AggregateAdditivity(
                q.name,
                False,
                f"back-and-forth key {fk} found but {fk.source} tuples "
                "repeat across universal rows",
            )
        if not schema.has_back_and_forth and _relation_unique_in_universal(
            database, universal, rel_name
        ):
            return AggregateAdditivity(
                q.name,
                True,
                f"count(distinct {rel_name}.{attr}) with no back-and-forth "
                f"keys and unique {rel_name} tuples per universal row",
            )
        return AggregateAdditivity(
            q.name,
            False,
            f"no back-and-forth key into {rel_name} and {rel_name} tuples "
            "are not unique per universal row",
        )
    return AggregateAdditivity(
        q.name, False, f"aggregate kind {kind!r} is never intervention-additive"
    )


def analyze_additivity(
    database: Database,
    query: NumericalQuery,
    *,
    universal: Optional[Table] = None,
) -> AdditivityReport:
    """Check every aggregate of *query* for intervention-additivity."""
    u = universal if universal is not None else universal_table(database)
    return AdditivityReport(
        tuple(_check_aggregate(database, u, q) for q in query.aggregates)
    )


@dataclass(frozen=True)
class AdditivitySlack:
    """Empirical additivity audit for one (aggregate, explanation) pair.

    ``slack = (q(D) − q(D_φ)) − q(D − Δ^φ)``: zero when the additive
    identity is exact; positive when the cube over-estimates the
    residual value (the footnote-11 boundary).
    """

    aggregate: str
    phi: str
    q_d: object
    q_phi: object
    q_residual: object
    slack: float


def audit_additivity(
    database: Database,
    query: NumericalQuery,
    phis,
    *,
    universal: Optional[Table] = None,
) -> List[AdditivitySlack]:
    """Measure the *empirical* additivity slack on concrete explanations.

    The structural conditions of :func:`analyze_additivity` certify
    Section 4.1's sufficient conditions, which do not cover the
    interaction between each aggregate's WHERE predicate and φ
    (see ``tests/core/test_additivity_boundary.py``).  This audit runs
    program P for each explanation in *phis* and reports, per
    aggregate, the deviation between the cube identity
    ``q(D) − q(D_φ)`` and the ground truth ``q(D − Δ^φ)``.
    """
    from .intervention import InterventionEngine

    u = universal if universal is not None else universal_table(database)
    engine = InterventionEngine(database, universal=u)
    results: List[AdditivitySlack] = []
    originals = {q.name: q.evaluate(u) for q in query.aggregates}
    for phi in phis:
        delta = engine.compute(phi).delta
        residual_u = universal_table(database.subtract(delta))
        restricted = u.filter(phi.to_expression())
        for q in query.aggregates:
            q_d = originals[q.name]
            q_phi = q.evaluate(restricted)
            q_residual = q.evaluate(residual_u)
            slack = 0.0
            if all(
                isinstance(v, (int, float))
                for v in (q_d, q_phi, q_residual)
            ):
                slack = (q_d - q_phi) - q_residual
            results.append(
                AdditivitySlack(
                    aggregate=q.name,
                    phi=str(phi),
                    q_d=q_d,
                    q_phi=q_phi,
                    q_residual=q_residual,
                    slack=slack,
                )
            )
    return results
