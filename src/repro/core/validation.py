"""Pre-flight validation: is this database fit for explanation analysis?

The framework's guarantees rest on assumptions the paper states up
front (Section 2): referential integrity, a semijoin-reduced instance,
an acyclic join tree, and — for the cube fast path — an
intervention-additive query.  :func:`validate_database` and
:func:`validate_question` check them all and return a structured
report, so problems surface before a long analysis instead of as
subtly wrong rankings.  The CLI exposes this as ``python -m repro
check``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..engine.database import Database
from ..engine.reduction import semijoin_reduce
from ..engine.table import Table
from ..engine.universal import universal_table
from ..errors import IntegrityError
from .additivity import analyze_additivity
from .causality import SchemaCausalGraph
from .question import UserQuestion


@dataclass(frozen=True)
class Check:
    """One validation check result."""

    name: str
    passed: bool
    detail: str


@dataclass(frozen=True)
class ValidationReport:
    """All checks, with an overall verdict."""

    checks: Tuple[Check, ...]

    @property
    def ok(self) -> bool:
        """True iff every check passed."""
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        """A readable checklist."""
        lines = []
        for c in self.checks:
            mark = "PASS" if c.passed else "FAIL"
            lines.append(f"  [{mark}] {c.name}: {c.detail}")
        verdict = "OK" if self.ok else "PROBLEMS FOUND"
        return f"validation: {verdict}\n" + "\n".join(lines)


def validate_database(database: Database) -> ValidationReport:
    """Structural checks on the instance itself."""
    checks: List[Check] = []

    # 1. Referential integrity.
    try:
        database.check_integrity()
        checks.append(
            Check("referential integrity", True, "all foreign keys resolve")
        )
    except IntegrityError as exc:
        checks.append(Check("referential integrity", False, str(exc)))

    # 2. Semijoin reduction (the Section 2 standing assumption).
    _, removed = semijoin_reduce(database)
    if removed.is_empty():
        checks.append(
            Check("semijoin-reduced", True, "no dangling tuples")
        )
    else:
        dangling = {
            name: len(rows)
            for name, rows in removed.parts().items()
            if rows
        }
        checks.append(
            Check(
                "semijoin-reduced",
                False,
                f"dangling tuples: {dangling} — run "
                "repro.engine.semijoin_reduce() first",
            )
        )

    # 3. Schema causal-graph facts (informational bounds).
    graph = SchemaCausalGraph.of(database.schema)
    s = len(graph.dotted)
    if graph.prop_311_applies():
        checks.append(
            Check(
                "convergence bound",
                True,
                f"Prop 3.11 applies: fixpoints converge in ≤ {2 * s + 2} "
                f"iterations ({s} back-and-forth key(s))",
            )
        )
    else:
        checks.append(
            Check(
                "convergence bound",
                True,
                "some relation carries multiple back-and-forth keys; "
                "only the Θ(n) bound of Prop 3.4 applies",
            )
        )

    # 4. Size sanity.
    n = database.total_rows()
    checks.append(
        Check("size", True, f"{n} tuples across {len(database.schema.relations)} relations")
    )
    return ValidationReport(tuple(checks))


def validate_question(
    database: Database,
    question: UserQuestion,
    attributes: Sequence[str] = (),
    *,
    universal: Optional[Table] = None,
) -> ValidationReport:
    """Checks for one (question, attributes) analysis."""
    u = universal if universal is not None else universal_table(database)
    checks: List[Check] = []

    # 1. Attributes resolve and are non-null (NULL grouping values are
    # ambiguous with the cube's don't-care marker).
    from ..engine.types import is_null

    bad: List[str] = []
    for attr in attributes:
        try:
            pos = u.position(attr)
        except Exception:
            bad.append(f"{attr} (unknown)")
            continue
        if any(is_null(row[pos]) for row in u.rows()):
            bad.append(f"{attr} (contains NULL)")
    if bad:
        checks.append(Check("attributes", False, "; ".join(bad)))
    elif attributes:
        checks.append(
            Check("attributes", True, f"{len(attributes)} attributes usable")
        )

    # 2. Query evaluates on D.
    try:
        value = question.query.evaluate_universal(u)
        checks.append(Check("query", True, f"Q(D) = {value}"))
    except Exception as exc:  # surfaced, not raised: this is a report
        checks.append(Check("query", False, f"Q(D) failed: {exc}"))

    # 3. Additivity / recommended method.
    report = analyze_additivity(database, question.query, universal=u)
    if report.additive:
        checks.append(
            Check("additivity", True, "intervention-additive: use method='cube'")
        )
    else:
        reasons = "; ".join(
            a.reason for a in report.per_aggregate if not a.additive
        )
        checks.append(
            Check(
                "additivity",
                True,
                f"not intervention-additive ({reasons}) — use "
                "method='indexed' or 'exact'",
            )
        )
    return ValidationReport(tuple(checks))
