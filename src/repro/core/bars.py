"""From a chart to a user question (the Section 2 interface workflow).

The paper envisions a UI where the user draws a group-by bar chart,
selects some bars, and asks "why does this relationship hold?"; the
system converts the selection into a numerical query ``(Q, dir)``.
This module implements that conversion:

* a :class:`Bar` is one selected chart point: a label plus the filter
  predicate that defines it (the group-by keys of that bar, possibly
  with extra chart-level filters);
* :func:`ratio_question` — two bars, "why is A/B so high (low)?";
* :func:`double_ratio_question` — four bars, "why did A/B change
  relative to C/D?" (the Figure 1 bump shape);
* :func:`trend_question` — a row of bars, "why is this series
  increasing (decreasing)?", via the regression-slope translation of
  Section 6(iv).

Each bar's count can be ``count(*)`` (single-table charts) or
``count(distinct col)`` (charts over joins, deduplicating entities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Union

from ..engine.aggregates import AggregateSpec, count_distinct, count_star
from ..engine.expressions import Col, Comparison, Const, Expression, conj
from ..engine.types import Value
from ..errors import ExplanationError
from .numquery import (
    AggregateQuery,
    double_ratio_query,
    ratio_query,
    regression_slope_query,
)
from .question import Direction, UserQuestion


@dataclass(frozen=True)
class Bar:
    """One selected chart bar: a label and its defining filters.

    ``filters`` maps qualified universal columns to the equality value
    of this bar's group; ``extra`` is an optional additional predicate
    (range filters, chart-level restrictions).
    """

    label: str
    filters: Mapping[str, Value]
    extra: Optional[Expression] = None

    def predicate(self) -> Optional[Expression]:
        """The WHERE predicate selecting this bar's rows."""
        atoms: List[Expression] = [
            Comparison("=", Col(column), Const(value))
            for column, value in sorted(self.filters.items())
        ]
        if self.extra is not None:
            atoms.append(self.extra)
        if not atoms:
            return None
        return conj(*atoms)


def _bar_query(
    name: str, bar: Bar, count_column: Optional[str]
) -> AggregateQuery:
    spec: AggregateSpec = (
        count_star(name)
        if count_column is None
        else count_distinct(count_column, name)
    )
    return AggregateQuery(name, spec, bar.predicate())


def ratio_question(
    numerator: Bar,
    denominator: Bar,
    direction: Union[str, Direction],
    *,
    count_column: Optional[str] = None,
    epsilon: float = 0.0001,
) -> UserQuestion:
    """"Why is bar A so high (low) relative to bar B?"

    Builds ``Q = count(A) / count(B)`` — the Q_Race / Figure 15 shape.
    """
    query = ratio_query(
        _bar_query("q1", numerator, count_column),
        _bar_query("q2", denominator, count_column),
        epsilon=epsilon,
    )
    return UserQuestion(query, Direction.parse(direction))


def double_ratio_question(
    bars: Sequence[Bar],
    direction: Union[str, Direction],
    *,
    count_column: Optional[str] = None,
    epsilon: float = 0.0001,
) -> UserQuestion:
    """"Why did the A/B ratio change relative to C/D?"

    Takes exactly four bars (q1..q4) and builds
    ``Q = (q1/q2)/(q3/q4)`` — the bump / Q_Marital shape.
    """
    if len(bars) != 4:
        raise ExplanationError(
            f"double_ratio_question takes exactly 4 bars, got {len(bars)}"
        )
    queries = [
        _bar_query(f"q{i + 1}", bar, count_column) for i, bar in enumerate(bars)
    ]
    query = double_ratio_query(*queries, epsilon=epsilon)
    return UserQuestion(query, Direction.parse(direction))


def trend_question(
    bars: Sequence[Bar],
    direction: Union[str, Direction],
    *,
    count_column: Optional[str] = None,
) -> UserQuestion:
    """"Why is this sequence of bars increasing (decreasing)?"

    Section 6(iv): the slope of the least-squares line through the bar
    heights; ``direction='high'`` asks why the slope is so positive.
    """
    if len(bars) < 2:
        raise ExplanationError("trend_question needs at least 2 bars")
    queries = [
        _bar_query(f"q{i}", bar, count_column) for i, bar in enumerate(bars)
    ]
    return UserQuestion(
        regression_slope_query(queries), Direction.parse(direction)
    )


def bars_from_groupby(
    rows: Mapping[Value, Value],
    column: str,
    *,
    extra: Optional[Expression] = None,
) -> List[Bar]:
    """Bars for every group of a one-dimensional group-by result.

    ``rows`` maps group values to counts (the counts are only used for
    labeling); ``column`` is the qualified group-by column.
    """
    return [
        Bar(label=f"{column}={value}", filters={column: value}, extra=extra)
        for value in rows
    ]
