"""Candidate explanations: conjunctions of atomic predicates.

Definition 2.3: a candidate explanation is ``φ = ⋀_j φ_j`` with each
atomic ``φ_j = [R_i.A op c]``, ``op ∈ {=, <, ≤, >, ≥}`` (we also accept
``<>`` as an extension).  Predicates are evaluated against universal
rows, whose columns are qualified ``Relation.attr`` names.

Section 6(ii) of the paper sketches extensions to disjunctions; these
are provided by :class:`DisjunctivePredicate` and accepted anywhere the
framework takes a predicate, at the cost of losing the cube shortcut
(disjunctions do not correspond to single cube rows).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..engine.expressions import (
    And,
    Col,
    Comparison,
    Const,
    Expression,
    Or,
    conj,
)
from ..engine.schema import DatabaseSchema
from ..engine.types import Value, is_missing
from ..errors import ExplanationError

_OPS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class AtomicPredicate:
    """One atomic predicate ``[relation.attribute op constant]``."""

    relation: str
    attribute: str
    op: str
    constant: Value

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ExplanationError(
                f"invalid predicate operator {self.op!r}; use one of {_OPS}"
            )
        if is_missing(self.constant):
            raise ExplanationError(
                "predicates cannot compare against NULL/DUMMY"
            )

    @property
    def column(self) -> str:
        """The qualified universal-table column this predicate reads."""
        return f"{self.relation}.{self.attribute}"

    def to_expression(self) -> Comparison:
        """The engine expression evaluating this predicate."""
        return Comparison(self.op, Col(self.column), Const(self.constant))

    def evaluate(self, env: Mapping[str, Value]) -> bool:
        """Evaluate against a universal-row environment."""
        return self.to_expression().evaluate(env)

    def __str__(self) -> str:
        return f"[{self.column} {self.op} {self.constant!r}]"


class Predicate:
    """Common interface for candidate explanations."""

    def evaluate(self, env: Mapping[str, Value]) -> bool:
        """Truth value on one universal row (given as an environment)."""
        raise NotImplementedError

    def to_expression(self) -> Expression:
        """Equivalent engine expression."""
        raise NotImplementedError

    def columns(self) -> Tuple[str, ...]:
        """Qualified universal-table columns read by this predicate."""
        raise NotImplementedError


@dataclass(frozen=True)
class Explanation(Predicate):
    """A conjunction of atomic predicates (Definition 2.3).

    The empty conjunction is the trivial always-true explanation; the
    framework excludes it from rankings (Section 4.3) but it is a legal
    value, corresponding to the all-NULL cube row.
    """

    atoms: Tuple[AtomicPredicate, ...]

    def __post_init__(self) -> None:
        columns = [a.column for a in self.atoms if a.op == "="]
        if len(set(columns)) != len(columns):
            raise ExplanationError(
                f"explanation repeats an equality attribute: {self}"
            )

    @classmethod
    def of(cls, *atoms: AtomicPredicate) -> "Explanation":
        """Build from atomic predicates."""
        return cls(tuple(atoms))

    @classmethod
    def equality(
        cls, schema: DatabaseSchema, assignments: Mapping[str, Value]
    ) -> "Explanation":
        """Build an all-equality explanation from ``{attr: value}``.

        Keys may be qualified ("Author.name") or unqualified when
        unambiguous.  This is the form produced by cube rows.
        """
        atoms = []
        for spec, value in assignments.items():
            rel, attr = schema.qualified(spec)
            atoms.append(AtomicPredicate(rel, attr, "=", value))
        return cls(tuple(sorted(atoms, key=lambda a: a.column)))

    def evaluate(self, env: Mapping[str, Value]) -> bool:
        return all(atom.evaluate(env) for atom in self.atoms)

    def to_expression(self) -> Expression:
        if not self.atoms:
            return And(())
        return conj(*(atom.to_expression() for atom in self.atoms))

    def columns(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(a.column for a in self.atoms))

    @property
    def size(self) -> int:
        """Number of atomic conjuncts."""
        return len(self.atoms)

    def is_trivial(self) -> bool:
        """True for the empty (always-true) explanation."""
        return not self.atoms

    def assignments(self) -> Dict[str, Value]:
        """``{qualified column: constant}`` for the equality atoms."""
        return {a.column: a.constant for a in self.atoms if a.op == "="}

    def generalizes(self, other: "Explanation") -> bool:
        """True iff this explanation's atoms are a subset of *other*'s.

        This is the domination order of Section 4.3: a more general
        explanation (fewer conditions) dominates a more specific one
        with the same degree.
        """
        return set(self.atoms) <= set(other.atoms)

    def __str__(self) -> str:
        if not self.atoms:
            return "[TRUE]"
        return " ∧ ".join(str(a) for a in self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)


@dataclass(frozen=True)
class DisjunctivePredicate(Predicate):
    """A disjunction of conjunctions (Section 6(ii) extension).

    Example: ``author = Levy ∨ author = Halevy``.  Valid anywhere the
    naive (non-cube) pipeline takes a predicate.
    """

    disjuncts: Tuple[Explanation, ...]

    def __post_init__(self) -> None:
        if not self.disjuncts:
            raise ExplanationError("disjunction needs at least one disjunct")

    def evaluate(self, env: Mapping[str, Value]) -> bool:
        return any(d.evaluate(env) for d in self.disjuncts)

    def to_expression(self) -> Expression:
        return Or(tuple(d.to_expression() for d in self.disjuncts))

    def columns(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for d in self.disjuncts:
            for c in d.columns():
                seen.setdefault(c)
        return tuple(seen)

    def __str__(self) -> str:
        return " ∨ ".join(f"({d})" for d in self.disjuncts)


_ATOM_RE = re.compile(
    r"""
    \s*\[?\s*
    (?P<rel>\w+)\s*\.\s*(?P<attr>\w+)
    \s*(?P<op><=|>=|<>|!=|=|<|>)\s*
    (?P<value>'[^']*'|"[^"]*"|[^\]\s]+)
    \s*\]?\s*
    """,
    re.VERBOSE,
)


def _parse_value(text: str) -> Value:
    if text.startswith(("'", '"')) and text.endswith(text[0]) and len(text) >= 2:
        return text[1:-1]
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def parse_atom(text: str) -> AtomicPredicate:
    """Parse one atomic predicate like ``[Author.name = 'JG']``."""
    match = _ATOM_RE.fullmatch(text)
    if not match:
        raise ExplanationError(f"cannot parse atomic predicate: {text!r}")
    op = match.group("op")
    if op == "!=":
        op = "<>"
    return AtomicPredicate(
        match.group("rel"),
        match.group("attr"),
        op,
        _parse_value(match.group("value")),
    )


def parse_explanation(text: str) -> Explanation:
    """Parse a conjunction like ``Author.name = 'JG' AND Publication.year = 2001``.

    Accepted separators: ``AND``, ``and``, ``∧``, ``&``.
    """
    stripped = text.strip()
    if not stripped or stripped.upper() in ("TRUE", "[TRUE]"):
        return Explanation(())
    parts = re.split(r"\s+(?:AND|and)\s+|\s*∧\s*|\s*&\s*", stripped)
    return Explanation(tuple(parse_atom(p) for p in parts if p.strip()))
