"""Back-and-forth key elimination by schema rewriting (Section 4.1).

A back-and-forth foreign key ``R_j.fk ↔ R_i.pk`` breaks the
intervention-additivity of plain ``count(*)``.  When the fan-out is
bounded — every R_i tuple is referenced by at most F tuples of R_j —
the paper shows how to rewrite the database into an *equivalent* one
(same causal paths) that uses only standard foreign keys:

* make F copies of R_j — and of the whole subtree of the join tree
  hanging off R_j away from R_i — naming them ``R_j__1 … R_j__F``;
* give each copy of R_j a surrogate key ``kad``;
* extend R_i with F new columns ``kad_1 … kad_F``, each a standard
  foreign key into the corresponding copy;
* assign each R_i tuple's referencing R_j tuples to slots 1…F
  (deterministically here; "arbitrarily" in the paper), padding short
  slots with a dummy row that is added to every copied relation.

After the rewrite the universal table has exactly one row per R_i
tuple, ``count(*)`` becomes intervention-additive, and predicates on
the copied side become disjunctions over the copies
(:meth:`RewrittenDatabase.rewrite_explanation`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..engine.database import Database
from ..engine.schema import (
    Attribute,
    DatabaseSchema,
    ForeignKey,
    RelationSchema,
)
from ..engine.types import Row, Value
from ..errors import ExplanationError
from .predicates import (
    AtomicPredicate,
    DisjunctivePredicate,
    Explanation,
    Predicate,
)

#: The padding value used in dummy rows of copied relations.
PAD = "__pad__"


def _copy_name(name: str, slot: int) -> str:
    return f"{name}__{slot}"


@dataclass(frozen=True)
class RewrittenDatabase:
    """The rewritten database plus the bookkeeping to translate queries."""

    database: Database
    #: relations that were copied (original names)
    copied_relations: Tuple[str, ...]
    #: the fan-out F
    fanout: int
    #: the b&f key that was eliminated
    eliminated: ForeignKey

    def copies_of(self, relation: str) -> List[str]:
        """The copy names of an original copied relation."""
        if relation not in self.copied_relations:
            raise ExplanationError(f"{relation} was not copied by the rewrite")
        return [_copy_name(relation, f) for f in range(1, self.fanout + 1)]

    def rewrite_atom(self, atom: AtomicPredicate) -> Predicate:
        """Translate one atomic predicate to the rewritten schema.

        Atoms on uncopied relations pass through; atoms on copied
        relations become a disjunction over the F copies (the paper:
        "the predicate on the Author table changes to a disjunction of
        the condition on three authors").
        """
        if atom.relation not in self.copied_relations:
            return Explanation.of(atom)
        disjuncts = tuple(
            Explanation.of(
                AtomicPredicate(
                    _copy_name(atom.relation, f),
                    atom.attribute,
                    atom.op,
                    atom.constant,
                )
            )
            for f in range(1, self.fanout + 1)
        )
        return DisjunctivePredicate(disjuncts)

    def rewrite_explanation(self, phi: Explanation) -> Predicate:
        """Translate a conjunction; distributes over the copy disjunctions.

        A conjunction of atoms on copied relations becomes the
        disjunction over slot assignments where *all* atoms hit the
        same copy — the sound reading for single-relation predicates.
        Mixed conjunctions (copied + uncopied atoms) distribute
        likewise.
        """
        copied_atoms = [a for a in phi.atoms if a.relation in self.copied_relations]
        fixed_atoms = tuple(
            a for a in phi.atoms if a.relation not in self.copied_relations
        )
        if not copied_atoms:
            return phi
        disjuncts: List[Explanation] = []
        for f in range(1, self.fanout + 1):
            slot_atoms = tuple(
                AtomicPredicate(
                    _copy_name(a.relation, f), a.attribute, a.op, a.constant
                )
                for a in copied_atoms
            )
            disjuncts.append(Explanation(fixed_atoms + slot_atoms))
        return DisjunctivePredicate(tuple(disjuncts))


def _subtree_away_from(
    tree_adjacency: Dict[str, List[str]], start: str, blocked: str
) -> Set[str]:
    """Relations reachable from *start* without crossing *blocked*."""
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbour in tree_adjacency[node]:
            if neighbour == blocked or neighbour in seen:
                continue
            seen.add(neighbour)
            frontier.append(neighbour)
    return seen


def rewrite_back_and_forth(
    database: Database,
    *,
    fanout: Optional[int] = None,
) -> RewrittenDatabase:
    """Eliminate the schema's single back-and-forth key by copying.

    Requirements (checked): exactly one back-and-forth key in the
    schema, and no other back-and-forth key inside the copied subtree
    (trivially true here).  ``fanout`` defaults to the observed maximum
    number of referencing tuples per referenced tuple.
    """
    schema = database.schema
    bf_keys = schema.back_and_forth_keys
    if len(bf_keys) != 1:
        raise ExplanationError(
            f"rewrite supports exactly one back-and-forth key, found {len(bf_keys)}"
        )
    fk = bf_keys[0]

    source_rel = database.relation(fk.source)
    target_rel = database.relation(fk.target)
    src_pos = source_rel.schema.indexes_of(fk.source_attrs)

    # Group referencing tuples by referenced key, deterministically.
    groups: Dict[Row, List[Row]] = {}
    for row in source_rel.sorted_rows():
        key = tuple(row[i] for i in src_pos)
        groups.setdefault(key, []).append(row)
    observed_fanout = max((len(v) for v in groups.values()), default=1)
    F = fanout if fanout is not None else observed_fanout
    if observed_fanout > F:
        raise ExplanationError(
            f"fanout {F} too small: some {fk.target} tuple has "
            f"{observed_fanout} referencing {fk.source} tuples"
        )

    # Which relations get copied: the side of the join tree containing
    # fk.source, after cutting the eliminated edge.
    adjacency: Dict[str, List[str]] = {n: [] for n in schema.relation_names}
    for other_fk in schema.foreign_keys:
        if other_fk is fk:
            continue
        adjacency[other_fk.source].append(other_fk.target)
        adjacency[other_fk.target].append(other_fk.source)
    copied = _subtree_away_from(adjacency, fk.source, fk.target)

    # --- build the new schema -------------------------------------------
    new_relations: List[RelationSchema] = []
    new_fks: List[ForeignKey] = []
    for rs in schema.relations:
        if rs.name in copied:
            for f in range(1, F + 1):
                name = _copy_name(rs.name, f)
                attrs = tuple(Attribute(a.name, a.dtype) for a in rs.attributes)
                pk = tuple(rs.primary_key)
                if rs.name == fk.source:
                    attrs = (Attribute("kad", "str"),) + attrs
                    pk = ("kad",)
                new_relations.append(RelationSchema(name, attrs, pk))
        elif rs.name == fk.target:
            extra = tuple(
                Attribute(f"kad_{f}", "str") for f in range(1, F + 1)
            )
            new_relations.append(
                RelationSchema(rs.name, tuple(rs.attributes) + extra, rs.primary_key)
            )
        else:
            new_relations.append(rs)
    for other_fk in schema.foreign_keys:
        if other_fk is fk:
            continue
        if other_fk.source in copied and other_fk.target in copied:
            for f in range(1, F + 1):
                new_fks.append(
                    ForeignKey(
                        _copy_name(other_fk.source, f),
                        other_fk.source_attrs,
                        _copy_name(other_fk.target, f),
                        other_fk.target_attrs,
                        back_and_forth=False,
                    )
                )
        elif other_fk.source in copied or other_fk.target in copied:
            raise ExplanationError(
                "foreign keys crossing the copied subtree boundary other "
                "than the eliminated key are not supported"
            )
        else:
            new_fks.append(other_fk)
    for f in range(1, F + 1):
        new_fks.append(
            ForeignKey(
                fk.target,
                (f"kad_{f}",),
                _copy_name(fk.source, f),
                ("kad",),
                back_and_forth=False,
            )
        )
    new_schema = DatabaseSchema(tuple(new_relations), tuple(new_fks))
    rewritten = Database(new_schema)

    # --- populate ----------------------------------------------------------
    # Copies of relations other than fk.source: full replica + pad row.
    pad_rows: Dict[str, Row] = {}
    for rs in schema.relations:
        if rs.name not in copied or rs.name == fk.source:
            continue
        pad_rows[rs.name] = tuple(PAD for _ in rs.attributes)
        for f in range(1, F + 1):
            target = rewritten.relation(_copy_name(rs.name, f))
            for row in database.relation(rs.name):
                target.insert(row)
            target.insert(pad_rows[rs.name])

    # fk.source copies: slot assignment + pad row per referenced key.
    # The pad row of fk.source must reference the pad rows of whatever
    # fk.source itself references inside the copied subtree.
    source_schema = schema.relation(fk.source)

    def pad_source_row(key: Row, slot: int) -> Row:
        values: List[Value] = []
        for attr in source_schema.attributes:
            if attr.name in fk.source_attrs:
                values.append(key[fk.source_attrs.index(attr.name)])
            else:
                values.append(PAD)
        return tuple(values)

    kad_of: Dict[Tuple[Row, int], str] = {}
    for key, rows in groups.items():
        for slot in range(1, F + 1):
            kad = "#".join(str(v) for v in key) + f"#{slot}"
            kad_of[(key, slot)] = kad
            row = rows[slot - 1] if slot <= len(rows) else pad_source_row(key, slot)
            rewritten.relation(_copy_name(fk.source, slot)).insert((kad,) + row)

    # Other referenced relations must contain the PAD keys referenced
    # by padded source rows: ensured above by inserting pad_rows into
    # every copy.

    tgt_pos = target_rel.schema.indexes_of(fk.target_attrs)
    for row in target_rel:
        key = tuple(row[i] for i in tgt_pos)
        extras = tuple(
            kad_of.get((key, slot), "#".join(str(v) for v in key) + f"#{slot}")
            for slot in range(1, F + 1)
        )
        # A target tuple with no referencing source tuples cannot occur
        # in a semijoin-reduced database, but guard anyway by minting
        # pad slots for it.
        if key not in groups:
            for slot in range(1, F + 1):
                kad = extras[slot - 1]
                rewritten.relation(_copy_name(fk.source, slot)).insert(
                    (kad,) + pad_source_row(key, slot)
                )
        rewritten.relation(fk.target).insert(row + extras)

    return RewrittenDatabase(
        database=rewritten,
        copied_relations=tuple(sorted(copied)),
        fanout=F,
        eliminated=fk,
    )
