"""User questions ``(Q, dir)`` and the degree sign conventions.

Definition 2.1: a user question pairs a numerical query with a
direction — the user believes Q is *higher* or *lower* than expected.
The two degrees of explanation flip signs in opposite ways
(Definitions 2.4 and 2.7):

==============  =====================  =====================
direction        μ_aggr(φ)              μ_interv(φ)
==============  =====================  =====================
``high``         ``+Q(D_φ)``            ``−Q(D − Δ^φ)``
``low``          ``−Q(D_φ)``            ``+Q(D − Δ^φ)``
==============  =====================  =====================

Aggravation rewards restricting to tuples that push Q further in the
observed direction; intervention rewards deletions that pull Q back
the other way.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Union

from ..errors import ExplanationError
from .numquery import NumericalQuery


class Direction(Enum):
    """The user's belief about the query value."""

    HIGH = "high"
    LOW = "low"

    @classmethod
    def parse(cls, value: Union[str, "Direction"]) -> "Direction":
        """Accept 'high'/'low' strings or Direction members."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except (ValueError, AttributeError):
            raise ExplanationError(
                f"direction must be 'high' or 'low', got {value!r}"
            ) from None


@dataclass(frozen=True)
class UserQuestion:
    """A user question ``(Q, dir)`` (Definition 2.1)."""

    query: NumericalQuery
    direction: Direction

    @classmethod
    def high(cls, query: NumericalQuery) -> "UserQuestion":
        """Question 'why is Q so high?'."""
        return cls(query, Direction.HIGH)

    @classmethod
    def low(cls, query: NumericalQuery) -> "UserQuestion":
        """Question 'why is Q so low?'."""
        return cls(query, Direction.LOW)

    @property
    def aggravation_sign(self) -> int:
        """Multiplier applied to ``Q(D_φ)`` for μ_aggr (Definition 2.4)."""
        return 1 if self.direction is Direction.HIGH else -1

    @property
    def intervention_sign(self) -> int:
        """Multiplier applied to ``Q(D − Δ^φ)`` for μ_interv (Definition 2.7)."""
        return -1 if self.direction is Direction.HIGH else 1

    def __str__(self) -> str:
        return f"({self.query.expression}, {self.direction.value})"
