"""Render the framework's computations as SQL and datalog text.

The paper's prototype pushes everything into the DBMS (Section 4:
"the entire computation can be pushed inside the database engine").
Our engine executes the plans natively, but for documentation,
debugging, and porting to a real DBMS this module renders:

* the universal-relation join (``FROM … JOIN … ON fk = pk``);
* each aggregate query ``q_j`` as a SELECT over that join;
* the per-aggregate cube queries (``GROUP BY … WITH CUBE``);
* Algorithm 1's script — cube materialization, the NULL→dummy
  UPDATEs, the m-way full outer join, and the μ columns;
* program **P** as the datalog program of Proposition 3.2.

Every rendering function takes a ``dialect``:

* ``"sqlserver"`` (default) — the paper's prototype dialect, with
  ``GROUP BY … WITH CUBE``;
* ``"sqlite"`` — executable SQL: the cube becomes a ``UNION ALL`` over
  all 2^d grouping sets (SQLite has no CUBE/GROUPING SETS), and the
  full outer join requires SQLite ≥ 3.39;
* ``"duckdb"`` — executable SQL: the cube becomes ``GROUP BY GROUPING
  SETS``, and the join uses ``IS NOT DISTINCT FROM`` instead of the
  dummy-constant UPDATEs (DuckDB columns are strictly typed, so a
  string dummy cannot be written into a numeric grouping column).

The SQL Server output is tested against golden fragments; the SQLite
output is tested by *executing* it against an in-memory database (see
``tests/core/test_sqlgen.py``).  :mod:`repro.backends` builds on these
primitives to run Algorithm 1 inside a real DBMS.
"""

# reprolint: disable=RL006 (this module IS the sqlgen layer: the remaining bare holes interpolate aggregate-query names and table aliases that the schema layer validated as identifiers, into display-oriented SQL Server/datalog text that is never executed — the executable dialects route through qid()/sql_literal())

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..engine.aggregates import AggregateSpec
from ..engine.cube import grouping_sets
from ..engine.expressions import (
    And,
    Arithmetic,
    Col,
    Comparison,
    Const,
    Expression,
    Not,
    Or,
    Unary,
)
from ..engine.schema import DatabaseSchema
from ..engine.types import Value, is_null
from ..engine.universal import JoinTree
from ..errors import QueryError
from .numquery import AggregateQuery
from .predicates import Predicate
from .question import UserQuestion

DUMMY_SQL = "'__DUMMY__'"

DIALECTS = ("sqlserver", "sqlite", "duckdb")


def _check_dialect(dialect: str) -> None:
    if dialect not in DIALECTS:
        raise QueryError(
            f"unknown SQL dialect {dialect!r}; choose from {DIALECTS}"
        )


def sql_literal(value: Value) -> str:
    """Render a Python value as a SQL literal."""
    if value is None or is_null(value):
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def sql_expression(
    expr: Expression,
    dialect: str = "sqlserver",
    render_col: Optional[Callable[[str], str]] = None,
) -> str:
    """Render an engine expression as SQL text.

    ``render_col`` customizes column-reference rendering (the backends
    quote universal-view columns, whose names contain dots); the
    default renders bare names, which parse as ``table.attr``
    references over the base-table join of
    :func:`universal_from_clause`.
    """
    _check_dialect(dialect)
    col = render_col if render_col is not None else (lambda name: name)

    def render(expr: Expression) -> str:
        if isinstance(expr, Const):
            return sql_literal(expr.value)
        if isinstance(expr, Col):
            return col(expr.name)
        if isinstance(expr, Arithmetic):
            return f"({render(expr.left)} {expr.op} {render(expr.right)})"
        if isinstance(expr, Unary):
            if expr.op == "neg":
                return f"(-{render(expr.operand)})"
            name = expr.op.upper()
            if expr.op == "log" and dialect in ("sqlite", "duckdb"):
                # LOG is base-10 in both dialects; the engine's log is
                # natural, which is LN there (SQL Server's LOG is
                # already natural).
                name = "LN"
            return f"{name}({render(expr.operand)})"
        if isinstance(expr, Comparison):
            op = "<>" if expr.op == "!=" else expr.op
            return f"{render(expr.left)} {op} {render(expr.right)}"
        if isinstance(expr, And):
            if not expr.operands:
                return "TRUE"
            return " AND ".join(f"({render(o)})" for o in expr.operands)
        if isinstance(expr, Or):
            if not expr.operands:
                return "FALSE"
            return " OR ".join(f"({render(o)})" for o in expr.operands)
        if isinstance(expr, Not):
            return f"NOT ({render(expr.operand)})"
        raise QueryError(
            f"cannot render expression of type {type(expr).__name__}"
        )

    return render(expr)


def aggregate_sql(
    spec: AggregateSpec,
    render_col: Optional[Callable[[str], str]] = None,
) -> str:
    """One aggregate spec as a SQL aggregate expression."""
    col = render_col if render_col is not None else (lambda name: name)
    if spec.kind == "count_star":
        return "COUNT(*)"
    if spec.kind == "count_distinct":
        return f"COUNT(DISTINCT {col(spec.argument)})"
    if spec.kind == "count":
        return f"COUNT({col(spec.argument)})"
    return f"{spec.kind.upper()}({col(spec.argument)})"


def _column_alias(qualified: str) -> str:
    """``Author.name`` -> ``Author_name`` (legal SQL identifier)."""
    return qualified.replace(".", "_")


def universal_from_clause(schema: DatabaseSchema) -> str:
    """The FROM clause joining all relations along the FK tree.

    Cycle-closing foreign keys of a ``require_acyclic=False`` schema
    (the join tree's residual edges) are folded into the ON clause of
    whichever side joins later, so the rendered join still enforces
    every declared key without needing a WHERE clause (callers append
    their own).
    """
    tree = JoinTree(schema)
    position = {
        name: i for i, (name, _) in enumerate(tree.traversal_order)
    }
    lines: List[str] = []
    for name, fk in tree.traversal_order:
        if fk is None:
            lines.append(f"FROM {name}")
            continue
        other = fk.target if fk.source == name else fk.source
        conditions = []
        if name == fk.source:
            pairs = zip(fk.source_attrs, fk.target_attrs)
            conditions = [
                f"{name}.{s} = {other}.{t}" for s, t in pairs
            ]
        else:
            pairs = zip(fk.source_attrs, fk.target_attrs)
            conditions = [
                f"{other}.{s} = {name}.{t}" for s, t in pairs
            ]
        lines.append(
            f"  JOIN {name} ON " + " AND ".join(conditions)
        )
    for fk in tree.residual_edges:
        later = max(position[fk.source], position[fk.target])
        extra = " AND ".join(
            f"{fk.source}.{s} = {fk.target}.{t}"
            for s, t in zip(fk.source_attrs, fk.target_attrs)
        )
        lines[later] += f" AND {extra}"
    return "\n".join(lines)


def aggregate_select(
    schema: DatabaseSchema, q: AggregateQuery, dialect: str = "sqlserver"
) -> str:
    """One ``q_j`` as a SELECT statement over the universal join."""
    _check_dialect(dialect)
    select = aggregate_sql(q.aggregate)
    lines = [f"SELECT {select} AS {q.name}", universal_from_clause(schema)]
    if q.where is not None:
        lines.append(f"WHERE {sql_expression(q.where, dialect)}")
    return "\n".join(lines) + ";"


def cube_select(
    schema: DatabaseSchema,
    q: AggregateQuery,
    attributes: Sequence[str],
    dialect: str = "sqlserver",
) -> str:
    """The per-aggregate cube of Algorithm 1 step 2.

    Output grouping columns are aliased to legal identifiers
    (``Author.name`` → ``Author_name``) so that the dummy-rewrite
    UPDATEs and the m-way join of :func:`algorithm1_script` can refer
    to them.  The SQL Server dialect renders ``GROUP BY … WITH CUBE``;
    DuckDB gets ``GROUP BY GROUPING SETS``; SQLite, which has neither,
    gets the equivalent ``UNION ALL`` over all 2^d grouping sets.
    """
    _check_dialect(dialect)
    select_agg = aggregate_sql(q.aggregate)
    from_clause = universal_from_clause(schema)
    where = (
        f"WHERE {sql_expression(q.where, dialect)}"
        if q.where is not None
        else None
    )
    attr_list = ", ".join(attributes)
    select_attrs = ", ".join(
        f"{a} AS {_column_alias(a)}" for a in attributes
    )
    if dialect == "sqlite":
        arms: List[str] = []
        for kept in grouping_sets(attributes):
            kept_set = set(kept)
            cols = ", ".join(
                f"{a} AS {_column_alias(a)}"
                if a in kept_set
                else f"NULL AS {_column_alias(a)}"
                for a in attributes
            )
            lines = [f"SELECT {cols}, {select_agg} AS v_{q.name}", from_clause]
            if where:
                lines.append(where)
            if kept:
                lines.append(f"GROUP BY {', '.join(kept)}")
            arms.append("\n".join(lines))
        return "\nUNION ALL\n".join(arms) + ";"
    lines = [f"SELECT {select_attrs}, {select_agg} AS v_{q.name}", from_clause]
    if where:
        lines.append(where)
    if dialect == "duckdb":
        sets = ", ".join(
            "(" + ", ".join(kept) + ")" for kept in grouping_sets(attributes)
        )
        lines.append(f"GROUP BY GROUPING SETS ({sets})")
    else:
        lines.append(f"GROUP BY {attr_list} WITH CUBE")
    return "\n".join(lines) + ";"


def algorithm1_script(
    schema: DatabaseSchema,
    question: UserQuestion,
    attributes: Sequence[str],
    dialect: str = "sqlserver",
) -> str:
    """The full Algorithm 1 as a SQL script (cubes, dummy rewrite,
    m-way full outer join, μ columns).

    The ``sqlserver`` and ``sqlite`` scripts perform the paper's
    NULL→dummy UPDATEs and then join with plain equality; the
    ``duckdb`` script skips the rewrite (strictly typed columns) and
    joins with the null-safe ``IS NOT DISTINCT FROM`` instead.  The
    sqlite script executes as-is on SQLite ≥ 3.39 (full outer join
    support).
    """
    _check_dialect(dialect)
    query = question.query
    parts: List[str] = ["-- Algorithm 1: explanation table M", ""]
    parts.append("-- Step 1: original aggregate values u_j")
    for q in query.aggregates:
        parts.append(f"-- u_{q.name}:")
        parts.append(aggregate_select(schema, q, dialect))
        parts.append("")
    parts.append("-- Step 2: one cube per aggregate query")
    for q in query.aggregates:
        parts.append(f"CREATE TABLE C_{q.name} AS")
        parts.append(cube_select(schema, q, attributes, dialect))
        parts.append("")
    names = [q.name for q in query.aggregates]
    aliases = [_column_alias(a) for a in attributes]
    if dialect == "duckdb":
        parts.append(
            "-- Step 2b: (dummy rewrite skipped: DuckDB columns are "
            "strictly typed; the join below uses IS NOT DISTINCT FROM)"
        )

        def key_eq(left: str, right: str) -> str:
            return f"{left} IS NOT DISTINCT FROM {right}"

    else:
        parts.append("-- Step 2b: NULL -> dummy rewrite (Section 4.2)")
        for q in query.aggregates:
            for alias in aliases:
                parts.append(
                    f"UPDATE C_{q.name} SET {alias} = {DUMMY_SQL} "
                    f"WHERE {alias} IS NULL;"
                )

        def key_eq(left: str, right: str) -> str:
            return f"{left} = {right}"

    parts.append("")
    parts.append("-- Step 3: full outer join of the cubes on the attributes")
    from_clause = f"FROM C_{names[0]}"
    for i, other in enumerate(names[1:], start=1):
        joined_so_far = names[:i]
        conditions = []
        for alias in aliases:
            refs = [f"C_{n}.{alias}" for n in joined_so_far]
            left = refs[0] if len(refs) == 1 else f"COALESCE({', '.join(refs)})"
            conditions.append(key_eq(left, f"C_{other}.{alias}"))
        from_clause += (
            f"\n  FULL OUTER JOIN C_{other} ON " + " AND ".join(conditions)
        )
    v_parts = []
    for q in query.aggregates:
        default = q.aggregate.default_value
        if is_null(default):
            v_parts.append(f"v_{q.name}")
        else:
            v_parts.append(
                f"COALESCE(v_{q.name}, {sql_literal(default)}) AS v_{q.name}"
            )
    key_parts = []
    for alias in aliases:
        refs = [f"C_{n}.{alias}" for n in names]
        if len(refs) == 1:
            key_parts.append(f"{refs[0]} AS {alias}")
        else:
            key_parts.append(f"COALESCE({', '.join(refs)}) AS {alias}")
    parts.append("CREATE TABLE M AS")
    parts.append(f"SELECT {', '.join(key_parts)}, {', '.join(v_parts)}")
    parts.append(from_clause + ";")
    parts.append("")
    parts.append("-- Step 4: degree columns")
    parts.append(
        f"-- mu_interv = {question.intervention_sign} * "
        f"E(u_1 - v_1, ..., u_m - v_m)"
    )
    parts.append(
        f"-- mu_aggr   = {question.aggravation_sign} * E(v_1, ..., v_m)"
    )
    parts.append(f"--   where E = {sql_expression(query.expression, dialect)}")
    return "\n".join(parts)


# -- Section 4.3: top-K pushed into a window function -----------------------


def topk_select(
    mu_column: str,
    attributes: Sequence[str],
    *,
    k: int,
    minimality: str = "general",
    dialect: str = "sqlserver",
    table: str = "M",
    render_col: Optional[Callable[[str], str]] = None,
    dummy_is_null: Optional[bool] = None,
) -> str:
    """Plain top-K over a materialized *M* as one window query.

    Renders the Section 4.3 No-Minimal ranking — the exact order of
    :func:`repro.core.topk.top_k_no_minimal` — as ``ROW_NUMBER() OVER``
    so a DBMS holding *M* can answer top-K without shipping the table
    back.  The ORDER BY replicates the in-memory ``_rank_key``:

    1. degree descending (rows with an undefined degree are filtered);
    2. the condition count — ascending under ``minimality="general"``
       (fewer conditions win; the paper's dummy trick), descending
       under ``"specific"`` (footnote 12);
    3. per attribute, the don't-care marker sorts above every real
       value, then the raw value descending — the deterministic
       tie-break of the in-memory path.

    The all-dummy row (the trivial explanation) is excluded, matching
    the in-memory eligibility filter.  *dummy_is_null* selects the
    don't-care encoding: the string dummy constant (SQL Server/SQLite
    after the Section 4.2 rewrite; the default) or in-database NULL
    (DuckDB's strictly typed columns).  Because every M row has a
    distinct attribute tuple the order is a strict total order, so the
    rendered ranking matches the in-memory one tie-for-tie.
    """
    _check_dialect(dialect)
    if minimality not in ("general", "specific"):
        raise QueryError(
            f"minimality must be 'general' or 'specific', got {minimality!r}"
        )
    if k < 0:
        raise QueryError(f"k must be non-negative, got {k}")
    col = render_col if render_col is not None else (lambda name: name)
    if dummy_is_null is None:
        dummy_is_null = dialect == "duckdb"

    def dummy_test(name: str) -> str:
        if dummy_is_null:
            return f"{col(name)} IS NULL"
        return f"({col(name)} IS NULL OR {col(name)} = {DUMMY_SQL})"

    conditions = " + ".join(
        f"(CASE WHEN {dummy_test(a)} THEN 0 ELSE 1 END)" for a in attributes
    )
    cond_dir = "ASC" if minimality == "general" else "DESC"
    order_terms = [f"{col(mu_column)} DESC", f"({conditions}) {cond_dir}"]
    for a in attributes:
        order_terms.append(
            f"(CASE WHEN {dummy_test(a)} THEN 1 ELSE 0 END) DESC"
        )
        order_terms.append(f"{col(a)} DESC")
    select_list = ", ".join(col(a) for a in attributes)
    all_dummy = " AND ".join(dummy_test(a) for a in attributes)
    lines = [
        f"SELECT {select_list}, {col(mu_column)}, rn",
        "FROM (",
        f"  SELECT {select_list}, {col(mu_column)},",
        "         ROW_NUMBER() OVER (",
        "           ORDER BY " + ",\n                    ".join(order_terms),
        "         ) AS rn",
        f"  FROM {table}",
        f"  WHERE {col(mu_column)} IS NOT NULL",
        f"    AND NOT ({all_dummy})",
        ") AS ranked",
        f"WHERE rn <= {k}",
        "ORDER BY rn;",
    ]
    return "\n".join(lines)


# -- Proposition 3.2: program P in datalog ---------------------------------


def _vars_for(schema: DatabaseSchema, relation: str) -> List[str]:
    """Datalog variable names: shared across relations via FK equality.

    Each attribute gets an uppercase variable; foreign-key-linked
    attributes reuse the referenced attribute's variable so the join is
    expressed by repetition, as in the paper's rewriting.
    """
    # Union-find over (relation, attribute) pairs linked by FKs.
    parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def find(x):
        while parent.get(x, x) != x:
            x = parent[x]
        return x

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for fk in schema.foreign_keys:
        for s, t in zip(fk.source_attrs, fk.target_attrs):
            union((fk.source, s), (fk.target, t))

    def var_name(rel: str, attr: str) -> str:
        root_rel, root_attr = find((rel, attr))
        return f"{root_attr.upper()}_{root_rel.upper()}"

    rs = schema.relation(relation)
    return [var_name(relation, a) for a in rs.attribute_names]


def program_p_datalog(
    schema: DatabaseSchema, phi: Optional[Predicate] = None
) -> str:
    """Program **P** as the datalog program of Proposition 3.2.

    ``phi`` customizes the ¬φ literal in the S_i rules; omitted, the
    literal is the symbolic ``not phi(...)``.
    """
    phi_text = (
        f"not [{phi}]" if phi is not None else "not phi(...)"
    )
    all_atoms = ", ".join(
        f"{r.name}({', '.join(_vars_for(schema, r.name))})"
        for r in schema.relations
    )
    lines: List[str] = ["% Program P (Proposition 3.2)"]
    lines.append("% Rule (i): seeds")
    for r in schema.relations:
        vs = ", ".join(_vars_for(schema, r.name))
        lines.append(f"S_{r.name}({vs}) :- {all_atoms}, {phi_text}.")
    for r in schema.relations:
        vs = ", ".join(_vars_for(schema, r.name))
        lines.append(f"Delta_{r.name}({vs}) :- {r.name}({vs}), not S_{r.name}({vs}).")
    lines.append("% Rule (ii): semijoin reduction")
    body_ii = ", ".join(
        f"{r.name}({', '.join(_vars_for(schema, r.name))}), "
        f"not Delta_{r.name}({', '.join(_vars_for(schema, r.name))})"
        for r in schema.relations
    )
    for r in schema.relations:
        vs = ", ".join(_vars_for(schema, r.name))
        lines.append(f"T_{r.name}({vs}) :- {body_ii}.")
    for r in schema.relations:
        vs = ", ".join(_vars_for(schema, r.name))
        lines.append(
            f"Delta_{r.name}({vs}) :- {r.name}({vs}), not T_{r.name}({vs})."
        )
    lines.append("% Rule (iii): backward cascade along back-and-forth keys")
    for fk in schema.back_and_forth_keys:
        tgt_vs = ", ".join(_vars_for(schema, fk.target))
        src_vs = ", ".join(_vars_for(schema, fk.source))
        lines.append(
            f"Delta_{fk.target}({tgt_vs}) :- {fk.target}({tgt_vs}), "
            f"Delta_{fk.source}({src_vs})."
        )
    return "\n".join(lines)
