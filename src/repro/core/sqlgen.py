"""Render the framework's computations as SQL and datalog text.

The paper's prototype pushes everything into the DBMS (Section 4:
"the entire computation can be pushed inside the database engine").
Our engine executes the plans natively, but for documentation,
debugging, and porting to a real DBMS this module renders:

* the universal-relation join (``FROM … JOIN … ON fk = pk``);
* each aggregate query ``q_j`` as a SELECT over that join;
* the per-aggregate cube queries (``GROUP BY … WITH CUBE``);
* Algorithm 1's script — cube materialization, the NULL→dummy
  UPDATEs, the m-way full outer join, and the μ columns;
* program **P** as the datalog program of Proposition 3.2.

All output is plain text, deterministic, and tested against golden
fragments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.expressions import (
    And,
    Arithmetic,
    Col,
    Comparison,
    Const,
    Expression,
    Not,
    Or,
    Unary,
)
from ..engine.schema import DatabaseSchema, ForeignKey
from ..engine.types import Value, is_null
from ..engine.universal import JoinTree
from ..errors import QueryError
from .numquery import AggregateQuery, NumericalQuery
from .predicates import Explanation, Predicate
from .question import UserQuestion

DUMMY_SQL = "'__DUMMY__'"


def sql_literal(value: Value) -> str:
    """Render a Python value as a SQL literal."""
    if value is None or is_null(value):
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def sql_expression(expr: Expression) -> str:
    """Render an engine expression as SQL text."""
    if isinstance(expr, Const):
        return sql_literal(expr.value)
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, Arithmetic):
        return (
            f"({sql_expression(expr.left)} {expr.op} "
            f"{sql_expression(expr.right)})"
        )
    if isinstance(expr, Unary):
        if expr.op == "neg":
            return f"(-{sql_expression(expr.operand)})"
        return f"{expr.op.upper()}({sql_expression(expr.operand)})"
    if isinstance(expr, Comparison):
        op = "<>" if expr.op == "!=" else expr.op
        return f"{sql_expression(expr.left)} {op} {sql_expression(expr.right)}"
    if isinstance(expr, And):
        if not expr.operands:
            return "TRUE"
        return " AND ".join(f"({sql_expression(o)})" for o in expr.operands)
    if isinstance(expr, Or):
        if not expr.operands:
            return "FALSE"
        return " OR ".join(f"({sql_expression(o)})" for o in expr.operands)
    if isinstance(expr, Not):
        return f"NOT ({sql_expression(expr.operand)})"
    raise QueryError(f"cannot render expression of type {type(expr).__name__}")


def _column_alias(qualified: str) -> str:
    """``Author.name`` -> ``Author_name`` (legal SQL identifier)."""
    return qualified.replace(".", "_")


def universal_from_clause(schema: DatabaseSchema) -> str:
    """The FROM clause joining all relations along the FK tree."""
    tree = JoinTree(schema)
    lines: List[str] = []
    for name, fk in tree.traversal_order:
        if fk is None:
            lines.append(f"FROM {name}")
            continue
        other = fk.target if fk.source == name else fk.source
        conditions = []
        if name == fk.source:
            pairs = zip(fk.source_attrs, fk.target_attrs)
            conditions = [
                f"{name}.{s} = {other}.{t}" for s, t in pairs
            ]
        else:
            pairs = zip(fk.source_attrs, fk.target_attrs)
            conditions = [
                f"{other}.{s} = {name}.{t}" for s, t in pairs
            ]
        lines.append(
            f"  JOIN {name} ON " + " AND ".join(conditions)
        )
    return "\n".join(lines)


def aggregate_select(schema: DatabaseSchema, q: AggregateQuery) -> str:
    """One ``q_j`` as a SELECT statement over the universal join."""
    agg = q.aggregate
    if agg.kind == "count_star":
        select = "COUNT(*)"
    elif agg.kind == "count_distinct":
        select = f"COUNT(DISTINCT {agg.argument})"
    elif agg.kind == "count":
        select = f"COUNT({agg.argument})"
    else:
        select = f"{agg.kind.upper()}({agg.argument})"
    lines = [f"SELECT {select} AS {q.name}", universal_from_clause(schema)]
    if q.where is not None:
        lines.append(f"WHERE {sql_expression(q.where)}")
    return "\n".join(lines) + ";"


def cube_select(
    schema: DatabaseSchema,
    q: AggregateQuery,
    attributes: Sequence[str],
) -> str:
    """The per-aggregate cube of Algorithm 1 step 2, as SQL Server-style
    ``GROUP BY … WITH CUBE``."""
    agg = q.aggregate
    if agg.kind == "count_star":
        select_agg = "COUNT(*)"
    elif agg.kind == "count_distinct":
        select_agg = f"COUNT(DISTINCT {agg.argument})"
    else:
        select_agg = f"{agg.kind.upper()}({agg.argument})"
    attr_list = ", ".join(attributes)
    lines = [
        f"SELECT {attr_list}, {select_agg} AS v_{q.name}",
        universal_from_clause(schema),
    ]
    if q.where is not None:
        lines.append(f"WHERE {sql_expression(q.where)}")
    lines.append(f"GROUP BY {attr_list} WITH CUBE")
    return "\n".join(lines) + ";"


def algorithm1_script(
    schema: DatabaseSchema,
    question: UserQuestion,
    attributes: Sequence[str],
) -> str:
    """The full Algorithm 1 as a SQL script (cubes, dummy rewrite,
    m-way full outer join, μ columns)."""
    query = question.query
    parts: List[str] = ["-- Algorithm 1: explanation table M", ""]
    parts.append("-- Step 1: original aggregate values u_j")
    for q in query.aggregates:
        parts.append(f"-- u_{q.name}:")
        parts.append(aggregate_select(schema, q))
        parts.append("")
    parts.append("-- Step 2: one cube per aggregate query")
    for q in query.aggregates:
        parts.append(f"CREATE TABLE C_{q.name} AS")
        parts.append(cube_select(schema, q, attributes))
        parts.append("")
    parts.append("-- Step 2b: NULL -> dummy rewrite (Section 4.2)")
    for q in query.aggregates:
        for attr in attributes:
            alias = _column_alias(attr)
            parts.append(
                f"UPDATE C_{q.name} SET {alias} = {DUMMY_SQL} "
                f"WHERE {alias} IS NULL;"
            )
    parts.append("")
    parts.append("-- Step 3: full outer join of the cubes on the attributes")
    names = [q.name for q in query.aggregates]
    join_cols = " AND ".join(
        f"C_{names[0]}.{_column_alias(a)} = C_{{other}}.{_column_alias(a)}"
        for a in attributes
    )
    from_clause = f"FROM C_{names[0]}"
    for other in names[1:]:
        cond = " AND ".join(
            f"C_{names[0]}.{_column_alias(a)} = C_{other}.{_column_alias(a)}"
            for a in attributes
        )
        from_clause += f"\n  FULL OUTER JOIN C_{other} ON {cond}"
    v_list = ", ".join(f"COALESCE(v_{n}, 0) AS v_{n}" for n in names)
    attr_list = ", ".join(
        f"C_{names[0]}.{_column_alias(a)}" for a in attributes
    )
    parts.append("CREATE TABLE M AS")
    parts.append(f"SELECT {attr_list}, {v_list}")
    parts.append(from_clause + ";")
    parts.append("")
    parts.append("-- Step 4: degree columns")
    interv_env = {n: Arithmetic("-", Col(f"u_{n}"), Col(f"v_{n}")) for n in names}
    parts.append(
        f"-- mu_interv = {question.intervention_sign} * "
        f"E(u_1 - v_1, ..., u_m - v_m)"
    )
    parts.append(
        f"-- mu_aggr   = {question.aggravation_sign} * E(v_1, ..., v_m)"
    )
    parts.append(f"--   where E = {sql_expression(query.expression)}")
    return "\n".join(parts)


# -- Proposition 3.2: program P in datalog ---------------------------------


def _vars_for(schema: DatabaseSchema, relation: str) -> List[str]:
    """Datalog variable names: shared across relations via FK equality.

    Each attribute gets an uppercase variable; foreign-key-linked
    attributes reuse the referenced attribute's variable so the join is
    expressed by repetition, as in the paper's rewriting.
    """
    # Union-find over (relation, attribute) pairs linked by FKs.
    parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def find(x):
        while parent.get(x, x) != x:
            x = parent[x]
        return x

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for fk in schema.foreign_keys:
        for s, t in zip(fk.source_attrs, fk.target_attrs):
            union((fk.source, s), (fk.target, t))

    def var_name(rel: str, attr: str) -> str:
        root_rel, root_attr = find((rel, attr))
        return f"{root_attr.upper()}_{root_rel.upper()}"

    rs = schema.relation(relation)
    return [var_name(relation, a) for a in rs.attribute_names]


def program_p_datalog(
    schema: DatabaseSchema, phi: Optional[Predicate] = None
) -> str:
    """Program **P** as the datalog program of Proposition 3.2.

    ``phi`` customizes the ¬φ literal in the S_i rules; omitted, the
    literal is the symbolic ``not phi(...)``.
    """
    phi_text = (
        f"not [{phi}]" if phi is not None else "not phi(...)"
    )
    all_atoms = ", ".join(
        f"{r.name}({', '.join(_vars_for(schema, r.name))})"
        for r in schema.relations
    )
    lines: List[str] = ["% Program P (Proposition 3.2)"]
    lines.append("% Rule (i): seeds")
    for r in schema.relations:
        vs = ", ".join(_vars_for(schema, r.name))
        lines.append(f"S_{r.name}({vs}) :- {all_atoms}, {phi_text}.")
    for r in schema.relations:
        vs = ", ".join(_vars_for(schema, r.name))
        lines.append(f"Delta_{r.name}({vs}) :- {r.name}({vs}), not S_{r.name}({vs}).")
    lines.append("% Rule (ii): semijoin reduction")
    body_ii = ", ".join(
        f"{r.name}({', '.join(_vars_for(schema, r.name))}), "
        f"not Delta_{r.name}({', '.join(_vars_for(schema, r.name))})"
        for r in schema.relations
    )
    for r in schema.relations:
        vs = ", ".join(_vars_for(schema, r.name))
        lines.append(f"T_{r.name}({vs}) :- {body_ii}.")
    for r in schema.relations:
        vs = ", ".join(_vars_for(schema, r.name))
        lines.append(
            f"Delta_{r.name}({vs}) :- {r.name}({vs}), not T_{r.name}({vs})."
        )
    lines.append("% Rule (iii): backward cascade along back-and-forth keys")
    for fk in schema.back_and_forth_keys:
        tgt_vs = ", ".join(_vars_for(schema, fk.target))
        src_vs = ", ".join(_vars_for(schema, fk.source))
        lines.append(
            f"Delta_{fk.target}({tgt_vs}) :- {fk.target}({tgt_vs}), "
            f"Delta_{fk.source}({src_vs})."
        )
    return "\n".join(lines)
