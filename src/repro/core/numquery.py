"""Numerical queries ``Q = E(q_1, …, q_m)`` (Eq. (1) of the paper).

Each :class:`AggregateQuery` ``q_j`` is a single-aggregate SQL query
over the universal relation: an aggregate spec (count(*),
count(distinct col), sum, …) plus an optional WHERE predicate over the
qualified universal columns.  A :class:`NumericalQuery` combines the
``q_j`` values with an arithmetic expression ``E`` built from the
engine expression AST (``+ - * /`` plus ``log``/``exp``), referencing
each aggregate by its name.

The module also provides the ratio builders used throughout the
evaluation section (``q1/q2`` and the double ratio
``(q1/q2)/(q3/q4)``), including the small-epsilon smoothing the paper
applies to avoid division by zero (Section 5.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..engine.aggregates import AggregateSpec
from ..engine.expressions import Arithmetic, Col, Const, Expression
from ..engine.table import Table
from ..engine.types import Value
from ..errors import QueryError


@dataclass(frozen=True)
class AggregateQuery:
    """One single-aggregate query ``q_j`` over the universal relation.

    ``name`` identifies the query inside the numerical expression E;
    ``aggregate`` is the engine aggregate spec whose ``argument`` (if
    any) must be a qualified universal column; ``where`` filters
    universal rows before aggregation (None = no filter).
    """

    name: str
    aggregate: AggregateSpec
    where: Optional[Expression] = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise QueryError(f"aggregate query name {self.name!r} must be an identifier")

    def evaluate(self, universal: Table) -> Value:
        """Evaluate on a materialized universal table."""
        source = universal if self.where is None else universal.filter(self.where)
        from ..engine.groupby import scalar_aggregate

        return scalar_aggregate(source, self.aggregate)

    def filtered(self, universal: Table) -> Table:
        """The universal rows that feed this aggregate."""
        return universal if self.where is None else universal.filter(self.where)

    def __str__(self) -> str:
        where = f" WHERE {self.where}" if self.where is not None else ""
        return f"{self.name}: SELECT {self.aggregate} FROM U{where}"  # reprolint: disable=RL006 (human-readable repr, never executed as SQL)


@dataclass(frozen=True)
class NumericalQuery:
    """``Q = E(q_1, …, q_m)`` — an arithmetic expression over aggregates.

    ``expression`` references aggregates as columns named after each
    :class:`AggregateQuery`.  ``Q(D)`` is computed by evaluating every
    aggregate on the universal table, then the expression on the
    resulting environment.
    """

    aggregates: Tuple[AggregateQuery, ...]
    expression: Expression

    def __post_init__(self) -> None:
        names = [q.name for q in self.aggregates]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate aggregate query names: {names}")
        unknown = set(self.expression.columns()) - set(names)
        if unknown:
            raise QueryError(
                f"expression references unknown aggregates: {sorted(unknown)}"
            )

    @property
    def names(self) -> Tuple[str, ...]:
        """Names of the component aggregate queries, in order."""
        return tuple(q.name for q in self.aggregates)

    def evaluate_environment(self, values: Mapping[str, Value]) -> Value:
        """Evaluate E given per-aggregate values."""
        return self.expression.evaluate(values)

    def evaluate_universal(self, universal: Table) -> Value:
        """``Q`` on a materialized universal table."""
        env = {q.name: q.evaluate(universal) for q in self.aggregates}
        return self.expression.evaluate(env)

    def aggregate_values(self, universal: Table) -> Dict[str, Value]:
        """All ``q_j`` values on a universal table (the u_j of Alg. 1)."""
        return {q.name: q.evaluate(universal) for q in self.aggregates}

    def __str__(self) -> str:
        parts = "; ".join(str(q) for q in self.aggregates)
        return f"Q = {self.expression}  with  {parts}"


def _smooth(name: str, epsilon: float) -> Expression:
    """``q + epsilon`` — the paper's division-by-zero guard."""
    if epsilon == 0:
        return Col(name)
    return Arithmetic("+", Col(name), Const(epsilon))


def ratio_query(
    numerator: AggregateQuery,
    denominator: AggregateQuery,
    *,
    epsilon: float = 0.0,
) -> NumericalQuery:
    """``Q = q1 / q2`` with optional epsilon smoothing of both counts."""
    expr = Arithmetic(
        "/", _smooth(numerator.name, epsilon), _smooth(denominator.name, epsilon)
    )
    return NumericalQuery((numerator, denominator), expr)


def double_ratio_query(
    q1: AggregateQuery,
    q2: AggregateQuery,
    q3: AggregateQuery,
    q4: AggregateQuery,
    *,
    epsilon: float = 0.0,
) -> NumericalQuery:
    """``Q = (q1/q2) / (q3/q4)`` — the running-example shape.

    This is the paper's bump query (Section 2, Example 2.2) and
    Q_Marital (Section 5.1): the ratio of two ratios.
    """
    top = Arithmetic("/", _smooth(q1.name, epsilon), _smooth(q2.name, epsilon))
    bottom = Arithmetic("/", _smooth(q3.name, epsilon), _smooth(q4.name, epsilon))
    expr = Arithmetic("/", top, bottom)
    return NumericalQuery((q1, q2, q3, q4), expr)


def single_query(aggregate: AggregateQuery) -> NumericalQuery:
    """``Q = q1`` — a bare aggregate as a numerical query."""
    return NumericalQuery((aggregate,), Col(aggregate.name))


def difference_query(
    left: AggregateQuery, right: AggregateQuery
) -> NumericalQuery:
    """``Q = q1 - q2``."""
    expr = Arithmetic("-", Col(left.name), Col(right.name))
    return NumericalQuery((left, right), expr)


def regression_slope_query(
    series: Sequence[AggregateQuery],
) -> NumericalQuery:
    """Slope of the least-squares line through ``(j, q_j)`` points.

    Section 6(iv): "why is this sequence of bars increasing?" becomes
    "why is the slope of the linear regression of these datapoints
    positive?".  For x = 0..m-1 the OLS slope is
    ``Σ (x_j - x̄) q_j / Σ (x_j - x̄)²`` — a linear combination of the
    aggregates, hence expressible in E with + - * / only.
    """
    m = len(series)
    if m < 2:
        raise QueryError("regression slope needs at least two aggregates")
    mean_x = (m - 1) / 2
    denom = sum((j - mean_x) ** 2 for j in range(m))
    expr: Optional[Expression] = None
    for j, q in enumerate(series):
        weight = (j - mean_x) / denom
        term = Arithmetic("*", Const(weight), Col(q.name))
        expr = term if expr is None else Arithmetic("+", expr, term)
    assert expr is not None
    return NumericalQuery(tuple(series), expr)
