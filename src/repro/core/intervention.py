"""Program **P**: computing the minimal intervention Δ^φ (Section 3).

Given a database D and a candidate explanation φ, the intervention
Δ^φ (Definition 2.6) is the unique minimal Δ such that

1. Δ is *closed* under the causal semantics of the foreign keys
   (standard cascade, back-and-forth cascade — Definition 2.5),
2. the residual database ``D − Δ`` is semijoin-reduced,
3. no tuple of ``U(D − Δ)`` satisfies φ.

Theorem 3.3 identifies Δ^φ with the least fixpoint of the recursive
program **P**:

* Rule (i)  — *seeds*: ``Δ_i ⊇ R_i − Π_{A_i}(σ_{¬φ} U(D))``
  (first iteration only);
* Rule (ii) — *semijoin reduction*:
  ``Δ_i ⊇ R_i − Π_{A_i}[(R_1−Δ_1) ⋈ … ⋈ (R_k−Δ_k)]``;
* Rule (iii) — *backward cascade*: for each back-and-forth foreign key
  ``R_j.fk ↔ R_i.pk``: ``Δ_i ⊇ R_i ⋉ Δ_j``.

The program is monotone in the Δ's (Proposition 3.1), so *any* fair
evaluation schedule reaches the same least fixpoint.  This module
offers two interchangeable schedules behind the
:class:`InterventionStrategy` protocol:

* :class:`FixpointStrategy` — naive simultaneous evaluation: apply all
  rules to Δ^t, union the results into Δ^{t+1}, stop when nothing
  changes.  Its iteration counter matches the convergence statements
  of Propositions 3.4, 3.5, 3.10 and 3.11 and the n−1 lower bound of
  Example 3.7.  (:data:`InterventionEngine` remains an alias for
  backward compatibility.)
* :class:`ClosureStrategy` — probes the precomputed FK cascade closure
  index (:mod:`repro.engine.closure`): Δ^φ is the union of the seeds'
  transitive deletion closures plus a bounded semijoin repair loop.
  The delta is byte-identical; ``iterations`` counts repair rounds,
  which never exceed the fixpoint count (each round dominates one
  naive iteration) and collapse the Example 3.7 zig-zag to one.

Pick a schedule explicitly (``strategy="fixpoint"|"closure"``), via
the ``REPRO_STRATEGY`` environment variable, or let the static plan
certificate recommend one (``strategy="auto"``, which boils down to
:func:`recommended_strategy_for_schema`).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Protocol, Set, Tuple

from ..engine.closure import ClosureIndex
from ..engine.database import Database, Delta
from ..engine.reduction import RowSets, is_semijoin_reduced, reduce_row_sets
from ..engine.schema import DatabaseSchema, ForeignKey
from ..engine.table import Table
from ..engine.types import Row
from ..engine.universal import JoinTree, universal_table
from ..errors import AnalysisInvariantError, ConvergenceError, ExplanationError
from ..obs import get_registry, phase
from .predicates import Predicate

#: The interchangeable program-P evaluation schedules.
STRATEGIES = ("fixpoint", "closure")

#: Pseudo-strategy: let the plan certificate (or, data-free, the
#: schema's back-and-forth key count) pick the schedule.
AUTO_STRATEGY = "auto"

DEFAULT_STRATEGY = "fixpoint"

#: Productive iterations per fixpoint run — makes the convergence
#: bounds of Props 3.4/3.5/3.10/3.11 observable in ``/v1/metrics``.
_P_ITERATIONS = get_registry().histogram(
    "repro_program_p_iterations",
    buckets=(1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0),
    help="Productive program-P iterations per fixpoint run.",
)


def _strategy_counter(name: str) -> None:
    get_registry().counter(
        "repro_intervention_strategy_total",
        labels={"strategy": name},
        help="Δ^φ computations per intervention strategy.",
    ).inc()


@dataclass(frozen=True)
class IterationTrace:
    """What one fixpoint iteration (or closure repair round) discovered.

    ``new_by_rule`` maps rule labels ("seed", "reduce", "backward" for
    the fixpoint schedule; "seed", "closure", "reduce" for the closure
    schedule) to the number of tuples that rule contributed *new* to Δ
    in this iteration; ``delta_size`` is |Δ| after the iteration.
    """

    iteration: int
    new_by_rule: Dict[str, int]
    delta_size: int

    @property
    def new_total(self) -> int:
        """Total new tuples discovered this iteration."""
        return sum(self.new_by_rule.values())


@dataclass(frozen=True)
class InterventionResult:
    """The computed intervention plus its provenance.

    ``iterations`` counts productive iterations (the final quiescent
    check is excluded), matching the counting used by the paper's
    convergence propositions; under the closure strategy it counts
    productive repair rounds instead, which the same certified bounds
    dominate.
    """

    delta: Delta
    seeds: Delta
    iterations: int
    trace: Tuple[IterationTrace, ...]

    @property
    def size(self) -> int:
        """|Δ^φ| — total tuples deleted."""
        return self.delta.size()


class InterventionStrategy(Protocol):
    """One evaluation schedule for program P over one fixed database."""

    name: str
    database: Database
    universal: Table
    certified_bound: Optional[int]

    def seed_delta(self, phi: Predicate) -> Delta:
        """Δ¹: the Rule (i) seed tuples for *phi*."""
        ...

    def compute(
        self,
        phi: Predicate,
        *,
        max_iterations: Optional[int] = None,
        seeds: Optional[Delta] = None,
    ) -> InterventionResult:
        """Δ^φ — the least fixpoint of program P for *phi*."""
        ...


class _StrategyBase:
    """Shared plumbing: the universal table, join tree and Rule (i).

    The universal table is materialized once and reused for every
    explanation (Rule (i) only needs ``σ_{¬φ}(U)``), which is the
    dominant cost; pass ``universal`` if the caller already has it.
    """

    name = "base"

    def __init__(
        self,
        database: Database,
        *,
        universal: Optional[Table] = None,
        join_tree: Optional[JoinTree] = None,
        certified_bound: Optional[int] = None,
    ) -> None:
        self.database = database
        self.schema = database.schema
        self.join_tree = join_tree or JoinTree(self.schema)
        self.universal = (
            universal
            if universal is not None
            else universal_table(database, self.join_tree)
        )
        self._bf_keys: Tuple[ForeignKey, ...] = self.schema.back_and_forth_keys
        #: When set (by the static analyzer), every run asserts that
        #: its productive iteration count stays within this bound;
        #: a violation raises AnalysisInvariantError (analyzer bug).
        self.certified_bound = certified_bound

    # -- Rule (i) ---------------------------------------------------------

    def seed_delta(self, phi: Predicate) -> Delta:
        """Δ¹: the seed tuples (Rule (i)).

        ``Δ_i¹ = R_i − Π_{A_i}(σ_{¬φ}(U))`` — the minimum deletions
        that leave no φ-satisfying universal tuple, before closure and
        reduction are enforced.
        """
        from ..engine.expressions import compile_predicate

        # Compile φ over only its referenced columns and probe them as
        # zipped slices; survivors stay a zero-copy selection of the
        # universal table.  (``not matches`` — not ``matches(¬φ)`` —
        # so rows where φ is NULL survive, as before.)
        expr = phi.to_expression()
        needed = tuple(expr.columns())
        for col in needed:
            self.universal.position(col)
        matches = compile_predicate(expr, needed)
        if not needed:
            n = len(self.universal)
            selection = [] if matches(()) else list(range(n))
        else:
            cols = [self.universal.column(c) for c in needed]
            selection = [
                i for i, vals in enumerate(zip(*cols)) if not matches(vals)
            ]
        survivors = self.universal.take(selection)
        parts: Dict[str, Set[Row]] = {}
        for name in self.schema.relation_names:
            rs = self.schema.relation(name)
            # Π_{A_i}: zip the relation's qualified survivor columns
            # straight into a deduplicating set — no re-tupling of
            # whole universal rows.
            proj_cols = [
                survivors.column(f"{name}.{a}") for a in rs.attribute_names
            ]
            keep: Set[Row] = set(zip(*proj_cols))
            parts[name] = set(self.database.relation(name).rows()) - keep
        return Delta(self.schema, parts)

    def _assert_certified(self, iterations: int) -> None:
        if (
            self.certified_bound is not None
            and iterations > self.certified_bound
        ):
            raise AnalysisInvariantError(
                f"program P ({self.name} strategy) converged after "
                f"{iterations} productive iterations, exceeding the "
                f"statically certified bound of {self.certified_bound}; "
                f"the convergence analyzer (repro.analysis.fkgraph) "
                f"mis-certified this schema"
            )


class FixpointStrategy(_StrategyBase):
    """The baseline naive-simultaneous fixpoint schedule."""

    name = "fixpoint"

    # -- Rules (ii) and (iii) ----------------------------------------------

    def _rule_reduce(self, residual: RowSets) -> Dict[str, Set[Row]]:
        """Rule (ii): tuples dropped by semijoin-reducing the residual."""
        probe = {name: set(rows) for name, rows in residual.items()}
        reduce_row_sets(self.schema, probe, self.join_tree)
        return {
            name: residual[name] - probe[name] for name in residual
        }

    def _rule_backward(
        self, deleted: Dict[str, Set[Row]]
    ) -> Dict[str, Set[Row]]:
        """Rule (iii): backward cascade along back-and-forth FKs.

        For ``R_j.fk ↔ R_i.pk``: every R_i tuple whose primary key is
        referenced by a *deleted* R_j tuple must be deleted.
        """
        found: Dict[str, Set[Row]] = {
            name: set() for name in self.schema.relation_names
        }
        for fk in self._bf_keys:
            source_schema = self.schema.relation(fk.source)
            target_rel = self.database.relation(fk.target)
            src_pos = source_schema.indexes_of(fk.source_attrs)
            referenced = {
                tuple(row[i] for i in src_pos) for row in deleted[fk.source]
            }
            if not referenced:
                continue
            tgt_pos = target_rel.schema.indexes_of(fk.target_attrs)
            for row in target_rel:
                if tuple(row[i] for i in tgt_pos) in referenced:
                    found[fk.target].add(row)
        return found

    # -- fixpoint loop -------------------------------------------------------

    def compute(
        self,
        phi: Predicate,
        *,
        max_iterations: Optional[int] = None,
        seeds: Optional[Delta] = None,
    ) -> InterventionResult:
        """Run program **P** to its least fixpoint for *phi*.

        ``max_iterations`` defaults to ``n + 2`` (Proposition 3.4 plus
        slack for the seed and final check); exceeding it raises
        :class:`~repro.errors.ConvergenceError`, which indicates an
        internal bug, not a user error.  ``seeds`` lets callers supply
        a precomputed Rule (i) result (the indexed evaluator of
        :mod:`repro.core.iterative` derives seeds from posting lists
        instead of re-scanning the universal table per explanation).
        """
        budget = (
            max_iterations
            if max_iterations is not None
            else self.database.total_rows() + 2
        )
        deleted: Dict[str, Set[Row]] = {
            name: set() for name in self.schema.relation_names
        }
        all_rows: Dict[str, FrozenSet[Row]] = {
            name: self.database.relation(name).rows()
            for name in self.schema.relation_names
        }

        if seeds is None:
            seeds = self.seed_delta(phi)
        trace: List[IterationTrace] = []
        iteration = 0
        _strategy_counter(self.name)

        def residual() -> RowSets:
            return {
                name: set(all_rows[name]) - deleted[name]
                for name in all_rows
            }

        def absorb(new: Dict[str, Set[Row]]) -> int:
            added = 0
            for name, rows in new.items():
                fresh = rows - deleted[name]
                added += len(fresh)
                deleted[name].update(fresh)
            return added

        with phase("program_p") as run_ph:
            while True:
                iteration += 1
                if iteration > budget:
                    raise ConvergenceError(
                        f"program P exceeded {budget} iterations; "
                        "this is a bug"
                    )
                with phase("program_p.iteration") as iter_ph:
                    new_by_rule: Dict[str, int] = {}
                    # Rules (ii) and (iii) evaluate against the Δ of
                    # the *previous* iteration (naive simultaneous
                    # semantics): take snapshots before absorbing any
                    # rule's output, including the seeds — in iteration
                    # 1 rules (ii)/(iii) see Δ⁰ = ∅, which is the
                    # counting used by Example 3.7 / Prop 3.5.
                    snapshot_residual = residual()
                    snapshot_deleted = {
                        name: set(rows) for name, rows in deleted.items()
                    }
                    if iteration == 1:
                        new_by_rule["seed"] = absorb(
                            {
                                name: set(rows)
                                for name, rows in seeds.parts().items()
                            }
                        )
                    reduce_new = self._rule_reduce(snapshot_residual)
                    backward_new = self._rule_backward(snapshot_deleted)
                    new_by_rule["reduce"] = absorb(reduce_new)
                    new_by_rule["backward"] = absorb(backward_new)
                    total_new = sum(new_by_rule.values())
                    delta_size = sum(
                        len(rows) for rows in deleted.values()
                    )
                    iter_ph.annotate(
                        iteration=iteration,
                        seed=new_by_rule.get("seed", 0),
                        reduce=new_by_rule["reduce"],
                        backward=new_by_rule["backward"],
                        delta_size=delta_size,
                    )
                if total_new == 0:
                    # Quiescent iteration: not counted as productive.
                    iteration -= 1
                    break
                trace.append(
                    IterationTrace(
                        iteration,
                        {k: v for k, v in new_by_rule.items() if v},
                        delta_size,
                    )
                )
            _P_ITERATIONS.observe(iteration)
            run_ph.annotate(
                iterations=iteration, certified_bound=self.certified_bound
            )

        self._assert_certified(iteration)
        return InterventionResult(
            delta=Delta(self.schema, deleted),
            seeds=seeds,
            iterations=iteration,
            trace=tuple(trace),
        )


#: Backward-compatible name: the fixpoint schedule is the original
#: (and default) intervention engine.
InterventionEngine = FixpointStrategy


class ClosureStrategy(_StrategyBase):
    """Program P by FK cascade closure probes plus semijoin repair.

    Uses the per-database :class:`~repro.engine.closure.ClosureIndex`
    (built lazily on first use, shared across strategies and
    explanations, invalidated on mutation).  The computed delta is the
    same least fixpoint the :class:`FixpointStrategy` reaches — byte
    identical — while ``iterations`` reports productive repair rounds.
    """

    name = "closure"

    def __init__(
        self,
        database: Database,
        *,
        universal: Optional[Table] = None,
        join_tree: Optional[JoinTree] = None,
        certified_bound: Optional[int] = None,
    ) -> None:
        super().__init__(
            database,
            universal=universal,
            join_tree=join_tree,
            certified_bound=certified_bound,
        )

    @property
    def index(self) -> ClosureIndex:
        """The current (version-cached) closure index for the database."""
        return ClosureIndex.for_database(self.database)

    def compute(
        self,
        phi: Predicate,
        *,
        max_iterations: Optional[int] = None,
        seeds: Optional[Delta] = None,
    ) -> InterventionResult:
        """Δ^φ via closure-index probes.

        ``max_iterations`` bounds the repair rounds (default ``n + 2``,
        matching the fixpoint budget; repair rounds can only be fewer).
        """
        budget = (
            max_iterations
            if max_iterations is not None
            else self.database.total_rows() + 2
        )
        if seeds is None:
            seeds = self.seed_delta(phi)
        _strategy_counter(self.name)
        with phase("program_p", strategy=self.name) as run_ph:
            closure_delta = self.index.delta_from_seeds(
                seeds, join_tree=self.join_tree
            )
            if closure_delta.rounds > budget:
                raise ConvergenceError(
                    f"closure repair exceeded {budget} rounds; this is a bug"
                )
            trace: List[IterationTrace] = []
            delta_size = 0
            for i, new_by_rule in enumerate(closure_delta.new_by_round, 1):
                delta_size += sum(new_by_rule.values())
                trace.append(IterationTrace(i, dict(new_by_rule), delta_size))
            run_ph.annotate(
                iterations=closure_delta.rounds,
                probes=closure_delta.probes,
                certified_bound=self.certified_bound,
            )
        self._assert_certified(closure_delta.rounds)
        return InterventionResult(
            delta=closure_delta.delta,
            seeds=seeds,
            iterations=closure_delta.rounds,
            trace=tuple(trace),
        )


# -- strategy selection -----------------------------------------------------


def recommended_strategy_for_schema(schema: DatabaseSchema) -> str:
    """The schedule the static analyzer would pick for *schema*.

    Back-and-forth keys are what make the fixpoint slow (Example 3.7's
    Θ(n) zig-zag needs them); without any, Proposition 3.5 bounds the
    fixpoint at 2 iterations and the closure index cannot help — its
    repair loop *is* those 2 iterations.  This is the data-free core
    of :attr:`repro.analysis.analyzer.PlanCertificate.recommended_strategy`.
    """
    return "closure" if schema.back_and_forth_keys else "fixpoint"


def resolve_strategy_setting(name: Optional[str]) -> str:
    """The configured strategy: explicit arg, else ``REPRO_STRATEGY``,
    else :data:`DEFAULT_STRATEGY`.  May return :data:`AUTO_STRATEGY`
    unresolved — config layers (service, CLI) keep "auto" symbolic and
    resolve it per plan."""
    if name is None:
        raw = os.environ.get("REPRO_STRATEGY", "").strip()
        if raw and raw not in STRATEGIES and raw != AUTO_STRATEGY:
            warnings.warn(
                f"ignoring unknown REPRO_STRATEGY={raw!r}; choose from "
                f"{STRATEGIES + (AUTO_STRATEGY,)}",
                RuntimeWarning,
            )
            raw = ""
        name = raw or DEFAULT_STRATEGY
    if name != AUTO_STRATEGY and name not in STRATEGIES:
        raise ExplanationError(
            f"unknown intervention strategy {name!r}; choose from "
            f"{STRATEGIES + (AUTO_STRATEGY,)}"
        )
    return name


def resolve_strategy(
    name: Optional[str], *, schema: Optional[DatabaseSchema] = None
) -> str:
    """The effective strategy: :func:`resolve_strategy_setting` with
    :data:`AUTO_STRATEGY` resolved via *schema* (required then)."""
    name = resolve_strategy_setting(name)
    if name == AUTO_STRATEGY:
        if schema is None:
            raise ExplanationError(
                "strategy 'auto' needs a schema (or a plan certificate) "
                "to resolve against"
            )
        return recommended_strategy_for_schema(schema)
    return name


def make_strategy(
    database: Database,
    *,
    strategy: Optional[str] = None,
    universal: Optional[Table] = None,
    join_tree: Optional[JoinTree] = None,
    certified_bound: Optional[int] = None,
) -> InterventionStrategy:
    """Construct the resolved :class:`InterventionStrategy` for *database*."""
    resolved = resolve_strategy(strategy, schema=database.schema)
    cls = ClosureStrategy if resolved == "closure" else FixpointStrategy
    return cls(
        database,
        universal=universal,
        join_tree=join_tree,
        certified_bound=certified_bound,
    )


def compute_intervention(
    database: Database,
    phi: Predicate,
    *,
    universal: Optional[Table] = None,
    strategy: Optional[str] = None,
) -> InterventionResult:
    """One-shot Δ^φ computation (convenience wrapper)."""
    return make_strategy(
        database, strategy=strategy, universal=universal
    ).compute(phi)


# -- validity checking (Definition 2.6) ------------------------------------


def is_closed(database: Database, delta: Delta) -> bool:
    """Definition 2.5: Δ is closed under cascade and backward cascade."""
    for fk in database.schema.foreign_keys:
        source = database.relation(fk.source)
        target = database.relation(fk.target)
        src_pos = source.schema.indexes_of(fk.source_attrs)
        tgt_pos = target.schema.indexes_of(fk.target_attrs)
        deleted_target_keys = {
            tuple(row[i] for i in tgt_pos) for row in delta.rows_for(fk.target)
        }
        # Forward cascade: deleting the referenced tuple deletes all
        # referencing tuples.
        for row in source:
            key = tuple(row[i] for i in src_pos)
            if key in deleted_target_keys and row not in delta.rows_for(fk.source):
                return False
        if fk.back_and_forth:
            deleted_source_keys = {
                tuple(row[i] for i in src_pos)
                for row in delta.rows_for(fk.source)
            }
            # Backward cascade: deleting the referencing tuple deletes
            # the referenced tuple.
            for row in target:
                key = tuple(row[i] for i in tgt_pos)
                if key in deleted_source_keys and row not in delta.rows_for(
                    fk.target
                ):
                    return False
    return True


def is_valid_intervention(
    database: Database, phi: Predicate, delta: Delta
) -> bool:
    """All three conditions of Definition 2.6 (not necessarily minimal)."""
    if not is_closed(database, delta):
        return False
    residual = database.subtract(delta)
    rowsets: RowSets = {
        name: set(rel.rows()) for name, rel in residual.relations.items()
    }
    if not is_semijoin_reduced(database.schema, rowsets):
        return False
    from ..engine.expressions import compile_predicate

    residual_universal = universal_table(residual)
    expr = phi.to_expression()
    needed = tuple(expr.columns())
    matches = compile_predicate(expr, needed)
    if not needed:
        return len(residual_universal) == 0 or not matches(())
    cols = [residual_universal.column(c) for c in needed]
    return not any(matches(vals) for vals in zip(*cols))
