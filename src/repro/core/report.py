"""Full explanation reports: everything a user needs in one object.

:func:`explain_question` runs the complete workflow — original value,
additivity analysis, table *M*, top-K under both degrees, and the
concrete intervention behind the best answer — and returns an
:class:`ExplanationReport` that renders as readable text or a plain
dict (for JSON serialization by callers).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.database import Database
from ..engine.types import Value
from .additivity import AdditivityReport
from .degrees import ExplanationScore
from .explainer import Explainer
from .question import UserQuestion
from .topk import RankedExplanation


@dataclass(frozen=True)
class ExplanationReport:
    """The assembled answer to one user question."""

    question: str
    direction: str
    original_value: Value
    additivity: AdditivityReport
    method: str
    table_size: int
    top_by_intervention: Tuple[RankedExplanation, ...]
    top_by_aggravation: Tuple[RankedExplanation, ...]
    best_intervention: Optional[ExplanationScore]

    def render(self) -> str:
        """A readable multi-section text report."""
        lines: List[str] = []
        lines.append("=" * 64)
        lines.append(f"Question : why is Q so {self.direction}?")
        lines.append(f"Q        : {self.question}")
        lines.append(f"Q(D)     = {_fmt(self.original_value)}")
        lines.append(f"Method   : {self.method} ({self.table_size} candidate rows)")
        lines.append("")
        lines.append(self.additivity.explain())
        lines.append("")
        lines.append("Top explanations by INTERVENTION:")
        for r in self.top_by_intervention:
            lines.append(f"  {r.rank:>2}. {_fmt(r.degree):>12}  {r.explanation}")
        lines.append("")
        lines.append("Top explanations by AGGRAVATION:")
        for r in self.top_by_aggravation:
            lines.append(f"  {r.rank:>2}. {_fmt(r.degree):>12}  {r.explanation}")
        if self.best_intervention is not None:
            score = self.best_intervention
            lines.append("")
            lines.append(
                f"Minimal intervention for the top answer "
                f"({score.phi}):"
            )
            lines.append(
                f"  deletes {score.delta_size} tuples in "
                f"{score.intervention.iterations} fixpoint iterations"
            )
            for name, rows in score.intervention.delta.parts().items():
                if rows:
                    lines.append(f"    {name}: {len(rows)} tuples")
            lines.append(
                f"  Q(D)        = {_fmt(_env_value(score.q_original, self))}"
            )
            lines.append(
                f"  Q(D - Δ^φ)  = {_fmt(_env_value(score.q_intervention, self))}"
            )
        lines.append("=" * 64)
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """A JSON-serializable summary (degrees as floats or None)."""
        return {
            "question": self.question,
            "direction": self.direction,
            "original_value": _jsonable(self.original_value),
            "intervention_additive": self.additivity.additive,
            "method": self.method,
            "table_size": self.table_size,
            "top_by_intervention": [
                {
                    "rank": r.rank,
                    "explanation": str(r.explanation),
                    "degree": _jsonable(r.degree),
                }
                for r in self.top_by_intervention
            ],
            "top_by_aggravation": [
                {
                    "rank": r.rank,
                    "explanation": str(r.explanation),
                    "degree": _jsonable(r.degree),
                }
                for r in self.top_by_aggravation
            ],
            "best_intervention": (
                {
                    "explanation": str(self.best_intervention.phi),
                    "deleted_tuples": self.best_intervention.delta_size,
                    "iterations": self.best_intervention.intervention.iterations,
                }
                if self.best_intervention is not None
                else None
            ),
        }

    def to_json(self, **kwargs) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), **kwargs)


def _fmt(value: Value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _jsonable(value: Value):
    if isinstance(value, (int, float, str, bool)):
        if isinstance(value, float) and (
            value != value or value in (float("inf"), float("-inf"))
        ):
            return str(value)
        return value
    return None


def _env_value(env: Dict[str, Value], report: "ExplanationReport") -> str:
    return ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(env.items()))


def explain_question(
    database: Database,
    question: UserQuestion,
    attributes: Sequence[str],
    *,
    k: int = 5,
    strategy: str = "minimal_append",
    method: Optional[str] = None,
    support_threshold: Optional[float] = None,
) -> ExplanationReport:
    """Run the full workflow and assemble a report.

    ``method=None`` picks automatically: the cube when the query is
    intervention-additive, the indexed exact evaluator otherwise.
    """
    explainer = Explainer(
        database, question, attributes, support_threshold=support_threshold
    )
    additivity = explainer.additivity_report()
    if method is None:
        method = "cube" if additivity.additive else "indexed"
    m = explainer.explanation_table(method)
    top_i = tuple(explainer.top(k, by="intervention", strategy=strategy, method=method))
    top_a = tuple(explainer.top(k, by="aggravation", strategy=strategy, method=method))
    best = explainer.score(top_i[0].explanation) if top_i else None
    return ExplanationReport(
        question=str(question.query),
        direction=question.direction.value,
        original_value=explainer.original_value(),
        additivity=additivity,
        method=method,
        table_size=len(m),
        top_by_intervention=top_i,
        top_by_aggravation=top_a,
        best_intervention=best,
    )
