"""Top-K explanation strategies over the table *M* (Section 4.3).

An explanation φ is *minimal* when no strictly more general
explanation φ' (its non-dummy (attribute, value) pairs a proper subset
of φ's) has degree ≥ φ's.  Three strategies are implemented, matching
the paper's Figure 14 comparison:

* **No-Minimal** — a plain top-K by degree; may output redundant
  (dominated) explanations.
* **Minimal-self-join** — mark dominated rows via a (hash) self-join
  of M with itself on the generalization relation, then top-K the
  survivors.
* **Minimal-append** — K rounds of top-1; after outputting φ, the
  predicate ``¬φ`` is appended to the WHERE clause, pruning every
  remaining specialization of φ (all of which are dominated, because
  remaining rows have degree ≤ φ's).  Ties prefer shorter explanations
  because the DUMMY marker sorts above every real value.

All strategies skip the trivial all-dummy explanation (and rows whose
degree is undefined).

Footnote 12 of the paper notes an alternative reading of minimality
that prefers *specific* explanations (more conditions, matched by
fewer tuples) over general ones, and says the system supports both.
Every strategy here takes ``minimality="general"`` (the default,
used in the paper's experiments) or ``minimality="specific"``:

* **general** — φ is dominated by a strict *generalization* with
  degree ≥ φ's; ties prefer fewer conditions (DUMMY sorts high).
* **specific** — φ is dominated by a strict *specialization* with
  degree ≥ φ's; ties prefer more conditions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Set, Tuple

from ..engine.types import Row, Value, is_dummy, is_missing, is_null, sort_key
from ..errors import ExplanationError
from ..obs import phase
from .cube_algorithm import MU_INTERV, ExplanationTable
from .predicates import Explanation


@dataclass(frozen=True)
class RankedExplanation:
    """One ranked output: the explanation, its degree, the M row."""

    rank: int
    explanation: Explanation
    degree: Value
    row: Row


def _check_minimality(minimality: str) -> None:
    if minimality not in ("general", "specific"):
        raise ExplanationError(
            f"minimality must be 'general' or 'specific', got {minimality!r}"
        )


def _rank_key(mu_pos: int, attr_pos: Sequence[int], minimality: str = "general"):
    """Sort key: degree first, then a specificity tie-break.

    ``general``: among equal degrees, fewer conditions win (the
    paper's dummy trick — DUMMY sorts above every real value, so
    dummy-heavy rows rank higher).  ``specific``: more conditions win
    (footnote 12's alternative).  A full attribute tuple breaks the
    remaining ties deterministically.
    """
    sign = -1 if minimality == "general" else 1

    def key(row: Row):
        conditions = sum(
            1
            for i in attr_pos
            if not is_dummy(row[i]) and not is_null(row[i])
        )
        return (
            sort_key(row[mu_pos]),
            sign * conditions,
            tuple(sort_key(row[i]) for i in attr_pos),
        )

    return key


def _eligible_rows(m: ExplanationTable, by: str) -> Tuple[List[Row], int, Tuple[int, ...]]:
    """Rows with a defined degree and at least one real condition.

    Eligibility is decided from the degree and attribute *columns*
    (no row materialization for filtered-out rows); the surviving
    rows are then gathered once for the strategies, which are
    row-at-a-time by nature (heaps, signature subsets).
    """
    table = m.table
    mu_pos = table.position(by)
    attr_pos = table.positions(m.attributes)
    store = table.store()
    mu_col = store.column(mu_pos)
    attr_cols = [store.column(i) for i in attr_pos]
    selection = [
        i
        for i in range(len(table))
        if not is_missing(mu_col[i])
        and not all(is_dummy(col[i]) or is_null(col[i]) for col in attr_cols)
    ]
    rows = table.take(selection).rows()
    return rows, mu_pos, attr_pos


def _package(
    m: ExplanationTable, rows: Sequence[Row], by: str
) -> List[RankedExplanation]:
    mu_pos = m.table.position(by)
    return [
        RankedExplanation(
            rank=i + 1,
            explanation=m.explanation_of(row),
            degree=row[mu_pos],
            row=row,
        )
        for i, row in enumerate(rows)
    ]


def top_k_no_minimal(
    m: ExplanationTable,
    k: int,
    *,
    by: str = MU_INTERV,
    minimality: str = "general",
) -> List[RankedExplanation]:
    """Strategy (i): plain top-K by the chosen degree column."""
    _check_minimality(minimality)
    rows, mu_pos, attr_pos = _eligible_rows(m, by)
    chosen = heapq.nlargest(
        k, rows, key=_rank_key(mu_pos, attr_pos, minimality)
    )
    return _package(m, chosen, by)


def _pair_signature(row: Row, attr_pos: Sequence[int]) -> Tuple[Tuple[int, Value], ...]:
    """The non-dummy (position, value) pairs of a row."""
    return tuple(
        (i, row[i])
        for i in attr_pos
        if not is_dummy(row[i]) and not is_null(row[i])
    )


def dominated_rows(
    m: ExplanationTable,
    *,
    by: str = MU_INTERV,
    minimality: str = "general",
) -> Set[Row]:
    """Rows dominated under the chosen minimality order.

    ``general``: a row is dominated by a strict *generalization* with
    degree ≥ its own.  ``specific``: by a strict *specialization* with
    degree ≥ its own.  Both are the Section 4.3 self-join realized as
    hash lookups over pair-signature subsets.
    """
    _check_minimality(minimality)
    rows, mu_pos, attr_pos = _eligible_rows(m, by)
    degree_by_signature: Dict[Tuple[Tuple[int, Value], ...], Value] = {}
    row_by_signature: Dict[Tuple[Tuple[int, Value], ...], Row] = {}
    for row in rows:
        sig = _pair_signature(row, attr_pos)
        mu = row[mu_pos]
        best = degree_by_signature.get(sig)
        if best is None or sort_key(mu) > sort_key(best):
            degree_by_signature[sig] = mu
            row_by_signature[sig] = row
    dominated: Set[Row] = set()
    if minimality == "general":
        for row in rows:
            sig = _pair_signature(row, attr_pos)
            mu = row[mu_pos]
            for size in range(len(sig)):  # proper subsets only
                for subset in combinations(sig, size):
                    if not subset:
                        continue  # trivial explanation is excluded
                    general = degree_by_signature.get(subset)
                    if general is not None and sort_key(general) >= sort_key(mu):
                        dominated.add(row)
                        break
                else:
                    continue
                break
        return dominated
    # specific: iterate rows as dominators; their proper sub-signatures
    # present in M with degree ≤ theirs are dominated.
    for row in rows:
        sig = _pair_signature(row, attr_pos)
        mu = row[mu_pos]
        for size in range(1, len(sig)):  # proper, non-trivial subsets
            for subset in combinations(sig, size):
                target = degree_by_signature.get(subset)
                if target is not None and sort_key(mu) >= sort_key(target):
                    dominated.add(row_by_signature[subset])
    return dominated


def top_k_minimal_self_join(
    m: ExplanationTable,
    k: int,
    *,
    by: str = MU_INTERV,
    minimality: str = "general",
) -> List[RankedExplanation]:
    """Strategy (ii): filter dominated rows via self-join, then top-K."""
    _check_minimality(minimality)
    rows, mu_pos, attr_pos = _eligible_rows(m, by)
    dominated = dominated_rows(m, by=by, minimality=minimality)
    survivors = [row for row in rows if row not in dominated]
    chosen = heapq.nlargest(
        k, survivors, key=_rank_key(mu_pos, attr_pos, minimality)
    )
    return _package(m, chosen, by)


def top_k_minimal_append(
    m: ExplanationTable,
    k: int,
    *,
    by: str = MU_INTERV,
    minimality: str = "general",
) -> List[RankedExplanation]:
    """Strategy (iii): K rounds of top-1 with appended ``¬φ`` filters.

    General mode: after outputting φ_i, every remaining *specialization*
    of φ_i is pruned (its degree is ≤ φ_i's by top-1 order, hence it is
    dominated).  Specific mode: every remaining *generalization* is
    pruned instead.
    """
    _check_minimality(minimality)
    rows, mu_pos, attr_pos = _eligible_rows(m, by)
    key = _rank_key(mu_pos, attr_pos, minimality)
    remaining = list(rows)
    output: List[Row] = []
    for _ in range(k):
        if not remaining:
            break
        best = max(remaining, key=key)
        output.append(best)
        sig = _pair_signature(best, attr_pos)
        if minimality == "general":
            remaining = [
                row
                for row in remaining
                if not _matches_signature(row, sig)
            ]
        else:
            sig_set = set(sig)
            remaining = [
                row
                for row in remaining
                if not set(_pair_signature(row, attr_pos)) <= sig_set
            ]
    return _package(m, output, by)


def _matches_signature(
    row: Row, signature: Tuple[Tuple[int, Value], ...]
) -> bool:
    """True iff *row* satisfies φ: equals the signature on its pairs."""
    return all(row[i] == v for i, v in signature)


STRATEGIES = {
    "no_minimal": top_k_no_minimal,
    "minimal_self_join": top_k_minimal_self_join,
    "minimal_append": top_k_minimal_append,
}


def top_k_explanations(
    m: ExplanationTable,
    k: int,
    *,
    by: str = MU_INTERV,
    strategy: str = "minimal_append",
    minimality: str = "general",
) -> List[RankedExplanation]:
    """Dispatch to one of the three Section 4.3 strategies."""
    try:
        fn = STRATEGIES[strategy]
    except KeyError:
        raise ExplanationError(
            f"unknown strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
        ) from None
    with phase("topk", strategy=strategy, by=by, k=k, rows=len(m)) as ph:
        ranked = fn(m, k, by=by, minimality=minimality)
        ph.annotate(returned=len(ranked))
    return ranked
