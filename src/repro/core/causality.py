"""Causal graphs and causal paths (Definitions 3.8–3.9).

Two graphs depict the causal relations induced by the foreign keys:

* the **schema causal graph** ``G`` — one node per relation; a solid
  edge ``R_i → R_j`` per foreign key ``R_j.fk → R_i.pk`` and an extra
  dotted edge ``R_j → R_i`` when the key is back-and-forth;
* the **data causal graph** ``G_D`` — one node per tuple; a solid edge
  ``t_i → t_j`` when every universal tuple containing ``t_j`` also
  contains ``t_i`` (this folds in semijoin-reduction effects), and a
  dotted edge ``t_j → t_i`` along each back-and-forth key match.

The *causal length* of a simple directed path is its number of dotted
edges; Proposition 3.10 bounds the fixpoint iterations of program P by
``2q + 2`` where q is the maximum causal length over paths starting at
seed tuples.  These graphs are analysis/verification tools: the
fixpoint itself never materializes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..engine.database import Database, Delta
from ..engine.schema import DatabaseSchema
from ..engine.table import Table
from ..engine.types import Row
from ..engine.universal import universal_table

#: A node of the data causal graph: (relation name, row).
TupleNode = Tuple[str, Row]


@dataclass(frozen=True)
class SchemaCausalGraph:
    """The schema causal graph G (Definition 3.8, schema level).

    ``solid`` and ``dotted`` are edge sets of (from_relation,
    to_relation) pairs.
    """

    schema: DatabaseSchema
    solid: FrozenSet[Tuple[str, str]]
    dotted: FrozenSet[Tuple[str, str]]

    @classmethod
    def of(cls, schema: DatabaseSchema) -> "SchemaCausalGraph":
        """Build G from a schema's foreign keys."""
        solid: Set[Tuple[str, str]] = set()
        dotted: Set[Tuple[str, str]] = set()
        for fk in schema.foreign_keys:
            solid.add((fk.target, fk.source))
            if fk.back_and_forth:
                dotted.add((fk.source, fk.target))
        return cls(schema, frozenset(solid), frozenset(dotted))

    def successors(self, relation: str) -> List[Tuple[str, bool]]:
        """Outgoing (neighbour, is_dotted) pairs of *relation*."""
        out = [(b, False) for (a, b) in self.solid if a == relation]
        out.extend((b, True) for (a, b) in self.dotted if a == relation)
        return out

    def is_simple(self) -> bool:
        """At most one foreign key between any two relations.

        This is the 'simple' condition of Proposition 3.11;
        :class:`~repro.engine.schema.DatabaseSchema` already enforces
        it, so this always holds for validated schemas.
        """
        undirected = {frozenset(e) for e in self.solid}
        return len(undirected) == len(self.solid)

    def max_back_and_forth_per_relation(self) -> int:
        """Max number of b&f foreign keys any single relation carries.

        Proposition 3.11 applies when this is ≤ 1 (each relation has at
        most one back-and-forth foreign key as its *source*).
        """
        counts: Dict[str, int] = {}
        for fk in self.schema.foreign_keys:
            if fk.back_and_forth:
                counts[fk.source] = counts.get(fk.source, 0) + 1
        return max(counts.values(), default=0)

    def prop_311_applies(self) -> bool:
        """True when Proposition 3.11's preconditions hold."""
        return self.is_simple() and self.max_back_and_forth_per_relation() <= 1

    def prop_311_bound(self) -> int:
        """The 2s + 2 iteration bound (s = number of b&f keys)."""
        s = len(self.dotted)
        return 2 * s + 2


@dataclass
class DataCausalGraph:
    """The data causal graph G_D (Definition 3.8, data level).

    Edges carry flavour flags: a pair of tuples may be linked by a
    solid edge, a dotted edge, or both (the figures omit the solid edge
    when a dotted one exists, but for path arithmetic both matter).
    """

    nodes: Set[TupleNode] = field(default_factory=set)
    #: adjacency: node -> {successor: (has_solid, has_dotted)}
    edges: Dict[TupleNode, Dict[TupleNode, Tuple[bool, bool]]] = field(
        default_factory=dict
    )

    def _add_edge(self, a: TupleNode, b: TupleNode, dotted: bool) -> None:
        if a == b:
            return
        self.nodes.add(a)
        self.nodes.add(b)
        bucket = self.edges.setdefault(a, {})
        has_solid, has_dotted = bucket.get(b, (False, False))
        if dotted:
            has_dotted = True
        else:
            has_solid = True
        bucket[b] = (has_solid, has_dotted)

    @classmethod
    def of(
        cls,
        database: Database,
        *,
        universal: Optional[Table] = None,
    ) -> "DataCausalGraph":
        """Build G_D for a database instance.

        Solid edges implement the containment condition
        ``∀u ∈ U(D): Π_{A_j}u = t_j ⇒ Π_{A_i}u = t_i`` pairwise over
        relations; this is quadratic in the universal table and meant
        for analysis on small/medium instances.
        """
        graph = cls()
        schema = database.schema
        u = universal if universal is not None else universal_table(database)
        for name, rel in database.relations.items():
            for row in rel:
                graph.nodes.add((name, row))

        # Map each tuple to the set of universal row indexes containing it.
        containing: Dict[TupleNode, Set[int]] = {}
        projections: Dict[str, Tuple[int, ...]] = {}
        for name in schema.relation_names:
            rs = schema.relation(name)
            projections[name] = u.positions(
                [f"{name}.{a}" for a in rs.attribute_names]
            )
        for idx, urow in enumerate(u.rows()):
            for name, pos in projections.items():
                node = (name, tuple(urow[i] for i in pos))
                containing.setdefault(node, set()).add(idx)

        names = schema.relation_names
        for i_name in names:
            for j_name in names:
                if i_name == j_name:
                    continue
                for tj in database.relation(j_name):
                    rows_with_tj = containing.get((j_name, tj), set())
                    if not rows_with_tj:
                        continue
                    # Which R_i tuple appears in those rows? If it is
                    # always the same one, we have a solid edge.
                    pos = projections[i_name]
                    urows = u.rows()
                    seen_ti: Set[Row] = set()
                    for idx in rows_with_tj:
                        seen_ti.add(tuple(urows[idx][k] for k in pos))
                        if len(seen_ti) > 1:
                            break
                    if len(seen_ti) == 1:
                        ti = next(iter(seen_ti))
                        graph._add_edge((i_name, ti), (j_name, tj), dotted=False)

        for fk in schema.back_and_forth_keys:
            source = database.relation(fk.source)
            target = database.relation(fk.target)
            src_pos = source.schema.indexes_of(fk.source_attrs)
            tgt_index = target.index_on(list(fk.target_attrs))
            for tj in source:
                key = tuple(tj[i] for i in src_pos)
                for ti in tgt_index.get(key, ()):
                    graph._add_edge((fk.source, tj), (fk.target, ti), dotted=True)
        return graph

    # -- path analysis --------------------------------------------------------

    def successors(self, node: TupleNode) -> Dict[TupleNode, Tuple[bool, bool]]:
        """Outgoing edges of *node* with (has_solid, has_dotted) flags."""
        return self.edges.get(node, {})

    def max_causal_length_from(self, start: TupleNode) -> int:
        """Max number of dotted edges over simple paths from *start*.

        Exhaustive DFS over simple paths — exponential in the worst
        case, intended for verification on small instances (the paper's
        q in Proposition 3.10).
        """
        best = 0
        path: List[TupleNode] = [start]
        on_path = {start}

        def dfs(node: TupleNode, dotted_count: int) -> None:
            nonlocal best
            best = max(best, dotted_count)
            for succ, (has_solid, has_dotted) in self.successors(node).items():
                if succ in on_path:
                    continue
                on_path.add(succ)
                path.append(succ)
                # Maximizing: traverse as dotted when available.
                dfs(succ, dotted_count + (1 if has_dotted else 0))
                path.pop()
                on_path.discard(succ)

        dfs(start, 0)
        return best

    def max_causal_length_from_seeds(self, seeds: Delta) -> int:
        """q of Proposition 3.10: max causal length from any seed tuple."""
        best = 0
        for name in seeds.schema.relation_names:
            for row in seeds.rows_for(name):
                node = (name, row)
                if node in self.nodes:
                    best = max(best, self.max_causal_length_from(node))
        return best


def prop_310_bound(database: Database, seeds: Delta) -> int:
    """The 2q + 2 iteration bound of Proposition 3.10 for given seeds."""
    graph = DataCausalGraph.of(database)
    q = graph.max_causal_length_from_seeds(seeds)
    return 2 * q + 2
