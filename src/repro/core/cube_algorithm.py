"""Algorithm 1: all explanation degrees via the data cube (Section 4.2).

Given an intervention-additive numerical query ``Q = E(q_1 … q_m)`` and
relevant attributes ``A'``:

1. compute ``u_j = q_j(D)`` on the original database;
2. for each ``q_j`` compute a data cube over ``σ_{w_j}(U)`` grouped by
   ``A'``, holding ``v_j(φ) = q_j(D_φ)`` per cube row φ;
3. rewrite cube NULLs to the DUMMY constant and full-outer-join the m
   cubes on ``A'`` (missing explanations get the aggregate's
   empty-input default, i.e. 0 for counts);
4. per row, ``μ_interv(φ) = sign_i × E(u_1 − v_1, …, u_m − v_m)`` and
   ``μ_aggr(φ) = sign_a × E(v_1, …, v_m)``.

The materialized result (the paper's table *M*) is wrapped in
:class:`ExplanationTable`, which the top-K strategies of
:mod:`repro.core.topk` consume.

The additivity precondition is checked by default
(:mod:`repro.core.additivity`); pass ``check_additivity=False`` to use
the cube as a fast approximation on non-additive queries, as Section 6
contemplates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from ..engine.aggregates import AggregateSpec
from ..engine.cube import cube, dummy_rewrite
from ..engine.joins import full_outer_join_many
from ..engine.table import Table
from ..engine.types import NULL, Row, Value, is_dummy, is_null
from ..engine.universal import universal_table
from ..engine.database import Database
from ..errors import ExplanationError
from ..obs import phase
from .additivity import AdditivityReport, analyze_additivity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.additivity import AdditivityCertificate

#: Signature of a cube implementation (table, dimensions, aggregates).
CubeImpl = Callable[[Table, Sequence[str], Sequence[AggregateSpec]], Table]
from .numquery import NumericalQuery
from .predicates import AtomicPredicate, Explanation
from .question import UserQuestion

MU_INTERV = "mu_interv"
MU_AGGR = "mu_aggr"
MU_HYBRID = "mu_hybrid"


@dataclass(frozen=True)
class ExplanationTable:
    """The materialized table *M* of Algorithm 1.

    ``table`` columns: the relevant attributes (with DUMMY marking
    "don't care"), one ``v_<name>`` column per aggregate, then
    ``mu_interv`` and ``mu_aggr``.
    """

    table: Table
    attributes: Tuple[str, ...]
    aggregate_names: Tuple[str, ...]
    q_original: Dict[str, Value]

    def explanation_of(self, row: Sequence[Value]) -> Explanation:
        """The candidate explanation a table row denotes.

        The non-DUMMY attribute values are the equality conjuncts; the
        all-DUMMY row is the trivial explanation.
        """
        atoms: List[AtomicPredicate] = []
        for attr, pos in zip(self.attributes, self.table.positions(self.attributes)):
            value = tuple(row)[pos]
            if is_dummy(value) or is_null(value):
                continue
            rel, a = attr.split(".", 1)
            atoms.append(AtomicPredicate(rel, a, "=", value))
        return Explanation(tuple(atoms))

    def degree_of(self, row: Sequence[Value], *, by: str = MU_INTERV) -> Value:
        """The requested degree column of a row."""
        return tuple(row)[self.table.position(by)]

    def content_fingerprint(self) -> str:
        """A sha256 over the canonical content of the table *M*.

        Backend- and method-independent: rows are hashed as a sorted
        multiset, NULL/DUMMY render as distinct sentinels, and integral
        floats collapse to their integer rendering (SQL backends hand
        back ``2.0`` where the engine keeps ``2``).  Two explanation
        tables fingerprint identically iff they have the same columns
        and the same canonical rows — the equality the differential
        test battery asserts across backends and methods.
        """
        lines = sorted(
            "\x1f".join(_canonical_cell(v) for v in row)
            for row in self.table.rows()
        )
        head = "\x1f".join(self.table.columns)
        payload = "\x1e".join([head, *lines])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.table)


def _canonical_cell(value: Value) -> str:
    """One cell of :meth:`ExplanationTable.content_fingerprint`."""
    if is_dummy(value):
        return "\x00D"
    if is_null(value):
        return "\x00N"
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, float):
        if value != value:  # NaN
            return "f:nan"
        if value in (float("inf"), float("-inf")):
            return f"f:{value}"
        if value.is_integer():
            return f"i:{int(value)}"
        return f"f:{value!r}"
    if isinstance(value, int):
        return f"i:{value}"
    return f"s:{value}"


def build_explanation_table(
    database: Database,
    question: UserQuestion,
    attributes: Sequence[str],
    *,
    universal: Optional[Table] = None,
    check_additivity: bool = True,
    use_dummy_rewrite: bool = True,
    support_threshold: Optional[float] = None,
    cube_impl: Optional[CubeImpl] = None,
    use_fastpath: bool = True,
    backend: object = "memory",
    certificate: Optional["AdditivityCertificate"] = None,
    shards: Optional[int] = None,
) -> ExplanationTable:
    """Run Algorithm 1 and return the materialized table *M*.

    ``attributes`` are qualified universal columns (the relevant set
    A').  ``support_threshold`` drops explanations where *no* aggregate
    reaches the threshold (Section 5.1.1 uses 1000).
    ``use_dummy_rewrite=False`` switches off the Section 4.2 null→dummy
    optimization and uses a slower null-aware join — kept for the
    ablation benchmark.  ``cube_impl`` overrides the cube
    implementation (benchmarks inject the retained row-path oracles
    through it; by default the columnar cube — numpy-vectorized via
    ``use_fastpath`` where supported — is used).

    ``certificate`` is a data-resolved
    :class:`~repro.analysis.additivity.AdditivityCertificate` for this
    (database, query): when supplied, the additivity precondition is
    read off the certificate instead of being re-probed against the
    universal table (the per-request probe the serving path avoids).

    ``backend`` selects the execution substrate: ``"memory"`` (this
    module's native path), ``"sqlite"`` / ``"duckdb"`` (push the whole
    algorithm into a real DBMS — see :mod:`repro.backends`), or any
    :class:`~repro.backends.ExecutionBackend` instance.  The ablation
    knobs (``use_dummy_rewrite``, ``cube_impl``, ``use_fastpath``)
    only apply to the in-memory path.

    ``shards`` (default: the ``REPRO_SHARDS`` environment variable,
    else 1) spreads each per-aggregate cube across worker processes
    via :mod:`repro.parallel`: the universal table is partitioned once
    by a driver key and every aggregate's cube is computed as a merge
    of per-shard partial states — content-identical to serial
    execution at any shard count.  Sharding applies only to the
    in-memory path and is superseded by an explicit ``cube_impl``.
    """
    if backend != "memory":
        from ..backends import MemoryBackend, get_backend

        impl = get_backend(backend)
        if not isinstance(impl, MemoryBackend):
            return impl.build_explanation_table(
                database,
                question,
                attributes,
                universal=universal,
                check_additivity=check_additivity,
                support_threshold=support_threshold,
                certificate=certificate,
            )
    query = question.query
    u = universal if universal is not None else universal_table(database)
    for attr in attributes:
        u.position(attr)  # raise early on unknown columns
    if check_additivity:
        with phase("additivity_check"):
            report = _additivity_report(database, query, u, certificate)
            report.raise_if_not_additive()

    # Step 1: u_j = q_j(D).
    with phase("q_original", aggregates=len(query.aggregates)):
        q_original = query.aggregate_values(u)

    # Step 2: one cube per aggregate query, over its filtered input.
    from ..engine import fastpath

    shard_session = _shard_session(u, attributes, query, shards, cube_impl)

    cubes: List[Table] = []
    value_columns: List[str] = []
    for q in query.aggregates:
        with phase("cube_aggregate", aggregate=q.name) as cube_ph:
            alias = f"v_{q.name}"
            value_columns.append(alias)
            spec = type(q.aggregate)(
                q.aggregate.kind, q.aggregate.argument, alias
            )
            if shard_session is not None:
                c = shard_session.cube(q.where, attributes, (spec,))
                cube_ph.annotate(sharded=shard_session.shards)
            else:
                source = q.filtered(u)
                if cube_impl is not None:
                    chosen: CubeImpl = cube_impl
                elif use_fastpath and fastpath.supports((spec,)):
                    chosen = fastpath.cube_numpy
                else:
                    chosen = cube
                c = chosen(source, attributes, (spec,))
                cube_ph.annotate(rows_in=len(source))
            if use_dummy_rewrite:
                c = dummy_rewrite(c, attributes)
            cube_ph.annotate(groups=len(c))
            cubes.append(c)

    # Step 3: combine the m cubes on the explanation columns.
    if use_dummy_rewrite:
        joined = full_outer_join_many(cubes, attributes, fill=NULL)
    else:
        with phase("dummy_join", tables=len(cubes), naive=True):
            joined = _null_aware_outer_join(cubes, list(attributes))

    # Steps 3b/4: fill defaults, μ columns, support filter.
    with phase("finalize", rows=len(joined)):
        return finalize_explanation_table(
            joined,
            question,
            attributes,
            q_original,
            support_threshold=support_threshold,
        )


def _shard_session(
    u: Table,
    attributes: Sequence[str],
    query: NumericalQuery,
    shards: Optional[int],
    cube_impl: Optional[CubeImpl],
):
    """A :class:`~repro.parallel.ShardedCubeSession` when sharding applies.

    Returns ``None`` (serial execution) when the resolved shard count
    is 1 or an explicit ``cube_impl`` overrides the cube.  The session
    scatters the universal table once, projected down to the columns
    any aggregate's cube will touch; the driver key prefers a shared
    ``count(distinct X)`` argument so per-shard distinct-sets stay
    disjoint.
    """
    from ..parallel import (
        ShardedCubeSession,
        choose_driver_key,
        resolve_shard_count,
    )

    if cube_impl is not None:
        return None
    n = resolve_shard_count(shards)
    if n <= 1:
        return None
    needed: Dict[str, None] = dict.fromkeys(attributes)
    arguments: List[Optional[str]] = []
    for q in query.aggregates:
        arguments.append(q.aggregate.argument)
        if q.aggregate.argument is not None:
            needed.setdefault(q.aggregate.argument)
        if q.where is not None:
            for c in q.where.columns():
                needed.setdefault(c)
    driver = choose_driver_key(tuple(attributes), arguments)
    needed.setdefault(driver)
    return ShardedCubeSession(
        u,
        tuple(attributes),
        shards=n,
        driver_key=driver,
        columns=tuple(needed),
    )


def _additivity_report(
    database: Database,
    query: NumericalQuery,
    universal: Table,
    certificate: Optional["AdditivityCertificate"],
) -> AdditivityReport:
    """The additivity verdicts, from the certificate when one exists.

    A supplied certificate replaces the per-request universal-table
    probe; its verdicts must have been resolved against this database
    (the :class:`~repro.core.explainer.Explainer` and the serving layer
    guarantee that by construction).  An unresolved (static-only)
    certificate is not trusted — its conservative verdicts would
    reject additive-in-data plans — so we fall back to probing.
    """
    from .additivity import AggregateAdditivity

    if certificate is not None and certificate.data_resolved:
        return AdditivityReport(
            tuple(
                AggregateAdditivity(v.name, v.additive, v.reason)
                for v in certificate.verdicts
            )
        )
    return analyze_additivity(database, query, universal=universal)


def finalize_explanation_table(
    joined: Table,
    question: UserQuestion,
    attributes: Sequence[str],
    q_original: Dict[str, Value],
    *,
    support_threshold: Optional[float] = None,
) -> ExplanationTable:
    """Steps 3b–4 of Algorithm 1: defaults, μ columns, support filter.

    *joined* is the m-way combination of the per-aggregate cubes: the
    explanation attributes (DUMMY marking "don't care") plus one
    ``v_<name>`` column per aggregate, with NULL where an explanation
    was missing from a cube.  Shared by the in-memory path above and
    the SQL execution backends (:mod:`repro.backends`), which marshal
    their in-database join result into *joined* and delegate here so
    the degree arithmetic — including the ±∞ division conventions of
    the engine expression evaluator — is identical across backends.
    """
    query = question.query
    value_columns = [f"v_{q.name}" for q in query.aggregates]
    joined = _fill_missing_values(joined, query, value_columns)

    # Step 4: μ columns, computed from the v_j column slices — the
    # attribute columns pass through untouched (zero copy).
    n = len(joined)
    names = [q.name for q in query.aggregates]
    value_cols = [joined.column(c) for c in value_columns]
    interv_sign = question.intervention_sign
    aggr_sign = question.aggravation_sign
    mu_interv_col: List[Value] = []
    mu_aggr_col: List[Value] = []
    value_tuples = zip(*value_cols) if value_cols else (() for _ in range(n))
    for vals in value_tuples:
        values = dict(zip(names, vals))
        interv_env = {
            name: _subtract(q_original[name], values[name])
            for name in values
        }
        mu_i = query.evaluate_environment(interv_env)
        if not is_null(mu_i):
            mu_i = interv_sign * mu_i
        mu_a = query.evaluate_environment(values)
        if not is_null(mu_a):
            mu_a = aggr_sign * mu_a
        mu_interv_col.append(mu_i)
        mu_aggr_col.append(mu_a)
    m = Table.from_columns(
        list(joined.columns) + [MU_INTERV, MU_AGGR],
        joined.column_arrays() + [mu_interv_col, mu_aggr_col],
        nrows=n,
    )

    if support_threshold is not None:
        support_cols = [m.column(c) for c in value_columns]
        keep = [
            i
            for i in range(len(m))
            if any(
                not is_null(col[i]) and col[i] >= support_threshold
                for col in support_cols
            )
        ]
        m = m.take(keep)

    return ExplanationTable(
        table=m,
        attributes=tuple(attributes),
        aggregate_names=tuple(query.names),
        q_original=q_original,
    )


def _subtract(original: Value, restricted: Value) -> Value:
    if is_null(original) or is_null(restricted):
        return NULL
    return original - restricted


def add_hybrid_column(
    m: ExplanationTable, weight: float = 0.5
) -> ExplanationTable:
    """Append a ``mu_hybrid`` column (Section 6(iii) hybrid degree).

    μ_interv and μ_aggr live on incomparable scales (aggravation ratios
    can blow up to 10⁶ while intervention degrees stay near Q(D)), so
    the hybrid combines *ranks* rather than raw scores:
    ``mu_hybrid = −(weight·rank_interv + (1−weight)·rank_aggr)``, with
    rank 1 = best.  Rows whose either degree is undefined get NULL.
    """
    from ..engine.types import is_missing, sort_key

    if not 0.0 <= weight <= 1.0:
        raise ExplanationError(f"hybrid weight must be in [0, 1], got {weight}")
    if m.table.has_column(MU_HYBRID):
        return m
    def ranks(column: List[Value]) -> Dict[int, int]:
        scored = [
            (idx, value)
            for idx, value in enumerate(column)
            if not is_missing(value)
        ]
        scored.sort(key=lambda iv: sort_key(iv[1]), reverse=True)
        return {idx: rank for rank, (idx, _) in enumerate(scored, start=1)}

    interv_ranks = ranks(m.table.column(MU_INTERV))
    aggr_ranks = ranks(m.table.column(MU_AGGR))
    hybrid_col: List[Value] = []
    for idx in range(len(m.table)):
        if idx in interv_ranks and idx in aggr_ranks:
            hybrid: Value = -(
                weight * interv_ranks[idx] + (1 - weight) * aggr_ranks[idx]
            )
        else:
            hybrid = NULL
        hybrid_col.append(hybrid)
    table = Table.from_columns(
        list(m.table.columns) + [MU_HYBRID],
        m.table.column_arrays() + [hybrid_col],
        nrows=len(m.table),
    )
    return ExplanationTable(
        table=table,
        attributes=m.attributes,
        aggregate_names=m.aggregate_names,
        q_original=m.q_original,
    )


def _fill_missing_values(
    joined: Table, query: NumericalQuery, value_columns: Sequence[str]
) -> Table:
    """Replace NULL fills in aggregate columns by empty-input defaults."""
    defaults = {
        f"v_{q.name}": q.aggregate.default_value for q in query.aggregates
    }
    for c in value_columns:
        joined.position(c)  # raise early on unknown columns
    store = joined.store()
    value_set = set(value_columns)
    data: List[List[Value]] = []
    for i, name in enumerate(joined.columns):
        col = store.column(i)
        if name in value_set:
            default = defaults[name]
            col = [default if is_null(v) else v for v in col]
        data.append(col)
    return Table.from_columns(joined.columns, data, nrows=len(joined))


def _null_aware_outer_join(cubes: Sequence[Table], on: List[str]) -> Table:
    """The naive combination without the dummy rewrite (ablation).

    Treats NULL as an ordinary joinable marker by comparing key tuples
    with Python equality per pair of rows — the quadratic
    "(isnull A and isnull B) or (A = B)" plan the paper's optimization
    replaces.
    """
    result = cubes[0]
    for right in cubes[1:]:
        left_key_pos = result.positions(on)
        right_key_pos = right.positions(on)
        left_rest = [c for c in result.columns if c not in set(on)]
        right_rest = [c for c in right.columns if c not in set(on)]
        left_rest_pos = result.positions(left_rest)
        right_rest_pos = right.positions(right_rest)
        out_cols = on + left_rest + right_rest
        out_rows: List[Row] = []
        matched_right = [False] * len(right.rows())
        right_rows = right.rows()
        for lrow in result.rows():
            lkey = tuple(lrow[i] for i in left_key_pos)
            lvals = tuple(lrow[i] for i in left_rest_pos)
            matched = False
            for ridx, rrow in enumerate(right_rows):
                rkey = tuple(rrow[i] for i in right_key_pos)
                if lkey == rkey:  # NULL is a singleton: NULL == NULL here
                    matched = True
                    matched_right[ridx] = True
                    rvals = tuple(rrow[i] for i in right_rest_pos)
                    out_rows.append(lkey + lvals + rvals)
            if not matched:
                out_rows.append(lkey + lvals + (NULL,) * len(right_rest))
        for ridx, rrow in enumerate(right_rows):
            if matched_right[ridx]:
                continue
            rkey = tuple(rrow[i] for i in right_key_pos)
            rvals = tuple(rrow[i] for i in right_rest_pos)
            out_rows.append(rkey + (NULL,) * len(left_rest) + rvals)
        result = Table(out_cols, out_rows)
    return result
