"""``repro.core`` — the paper's contribution: explanations by intervention.

Public surface:

* predicates and candidate explanations (:mod:`~repro.core.predicates`),
* numerical queries and user questions (:mod:`~repro.core.numquery`,
  :mod:`~repro.core.question`),
* the intervention fixpoint, program P (:mod:`~repro.core.intervention`),
* causal graphs (:mod:`~repro.core.causality`),
* degrees μ_aggr / μ_interv (:mod:`~repro.core.degrees`),
* intervention-additivity analysis (:mod:`~repro.core.additivity`),
* Algorithm 1 over the data cube (:mod:`~repro.core.cube_algorithm`),
* top-K strategies (:mod:`~repro.core.topk`),
* the :class:`~repro.core.explainer.Explainer` facade.
"""

from .additivity import (
    AdditivityReport,
    AdditivitySlack,
    AggregateAdditivity,
    analyze_additivity,
    audit_additivity,
)
from .bars import (
    Bar,
    bars_from_groupby,
    double_ratio_question,
    ratio_question,
    trend_question,
)
from .candidates import (
    active_domain,
    bucket_atoms,
    count_candidates,
    enumerate_explanations,
    enumerate_with_buckets,
)
from .causality import DataCausalGraph, SchemaCausalGraph, prop_310_bound
from .cube_algorithm import (
    MU_AGGR,
    MU_HYBRID,
    MU_INTERV,
    ExplanationTable,
    add_hybrid_column,
    build_explanation_table,
)
from .degrees import DegreeEvaluator, ExplanationScore, hybrid_degree
from .explainer import (
    Explainer,
    ExplanationPlan,
    backend_key,
    question_key,
    render_ranking,
)
from .iterative import IndexedInterventionEvaluator
from .intervention import (
    InterventionEngine,
    InterventionResult,
    IterationTrace,
    compute_intervention,
    is_closed,
    is_valid_intervention,
)
from .numquery import (
    AggregateQuery,
    NumericalQuery,
    difference_query,
    double_ratio_query,
    ratio_query,
    regression_slope_query,
    single_query,
)
from .predicates import (
    AtomicPredicate,
    DisjunctivePredicate,
    Explanation,
    Predicate,
    parse_atom,
    parse_explanation,
)
from .parsing import (
    parse_aggregate_query,
    parse_expression,
    parse_numerical_query,
    parse_question,
)
from .question import Direction, UserQuestion
from .report import ExplanationReport, explain_question
from .validation import Check, ValidationReport, validate_database, validate_question
from .rewrite import PAD, RewrittenDatabase, rewrite_back_and_forth
from .topk import (
    RankedExplanation,
    STRATEGIES,
    dominated_rows,
    top_k_explanations,
    top_k_minimal_append,
    top_k_minimal_self_join,
    top_k_no_minimal,
)

__all__ = [
    "AdditivityReport",
    "AdditivitySlack",
    "AggregateAdditivity",
    "analyze_additivity",
    "audit_additivity",
    "active_domain",
    "bucket_atoms",
    "count_candidates",
    "enumerate_explanations",
    "enumerate_with_buckets",
    "DataCausalGraph",
    "SchemaCausalGraph",
    "prop_310_bound",
    "Bar",
    "bars_from_groupby",
    "double_ratio_question",
    "ratio_question",
    "trend_question",
    "MU_AGGR",
    "MU_HYBRID",
    "MU_INTERV",
    "ExplanationTable",
    "add_hybrid_column",
    "build_explanation_table",
    "DegreeEvaluator",
    "ExplanationScore",
    "hybrid_degree",
    "Explainer",
    "ExplanationPlan",
    "backend_key",
    "question_key",
    "render_ranking",
    "IndexedInterventionEvaluator",
    "InterventionEngine",
    "InterventionResult",
    "IterationTrace",
    "compute_intervention",
    "is_closed",
    "is_valid_intervention",
    "AggregateQuery",
    "NumericalQuery",
    "difference_query",
    "double_ratio_query",
    "ratio_query",
    "regression_slope_query",
    "single_query",
    "AtomicPredicate",
    "DisjunctivePredicate",
    "Explanation",
    "Predicate",
    "parse_atom",
    "parse_explanation",
    "parse_aggregate_query",
    "parse_expression",
    "parse_numerical_query",
    "parse_question",
    "Direction",
    "UserQuestion",
    "ExplanationReport",
    "explain_question",
    "Check",
    "ValidationReport",
    "validate_database",
    "validate_question",
    "PAD",
    "RewrittenDatabase",
    "rewrite_back_and_forth",
    "RankedExplanation",
    "STRATEGIES",
    "dominated_rows",
    "top_k_explanations",
    "top_k_minimal_append",
    "top_k_minimal_self_join",
    "top_k_no_minimal",
]
