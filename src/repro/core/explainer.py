"""The :class:`Explainer` facade — question in, ranked explanations out.

This is the public entry point most users need:

    >>> explainer = Explainer(database, question, attributes)
    >>> for ranked in explainer.top(5):
    ...     print(ranked.rank, ranked.explanation, ranked.degree)

Three evaluation methods build the explanation table *M*:

* ``"cube"`` — Algorithm 1 (Section 4.2); requires an
  intervention-additive query (checked; the fast path).
* ``"naive"`` — the Figure 12 'No Cube' baseline: iterate over every
  candidate explanation and evaluate each ``q_j(D_φ)`` by filtering
  the universal table, deriving intervention degrees by the same
  additive identity.
* ``"exact"`` — ground truth: per candidate, run program P and
  re-evaluate Q on the residual database.  Correct even for
  non-additive queries; slowest.
* ``"indexed"`` — the Section 6(i) optimized exact evaluator
  (:mod:`repro.core.iterative`): same ground-truth degrees as
  ``"exact"`` for count aggregates, sharing posting lists, seed
  indexes and survival scans across candidates.

All methods produce the same table layout, so the Section 4.3 top-K
strategies apply uniformly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.analyzer import PlanCertificate
    from ..incremental import IncrementalSession, RefreshStats

from ..engine.database import Database
from ..engine.table import Table
from ..engine.types import DUMMY, NULL, Row, Value, is_null
from ..engine.universal import JoinTree, universal_table
from ..errors import ExplanationError
from ..obs import phase
from .additivity import AdditivityReport, analyze_additivity
from .candidates import enumerate_explanations
from .cube_algorithm import (
    MU_AGGR,
    MU_INTERV,
    ExplanationTable,
    build_explanation_table,
)
from .degrees import DegreeEvaluator
from .predicates import Explanation
from .question import UserQuestion
from .topk import RankedExplanation, top_k_explanations

METHODS = ("cube", "naive", "exact", "indexed")

#: Pseudo-method: let the static plan certificate pick the fastest
#: sound method (resolved to one of METHODS before execution).
AUTO_METHOD = "auto"


def question_key(question: UserQuestion) -> str:
    """A stable, canonical text identity for a user question.

    Built from the question's direction plus the deterministic string
    renderings of the expression E and every aggregate (including WHERE
    predicates), so two structurally identical questions — whether
    parsed from text or built from AST objects — share one key.
    """
    return f"{question.direction.value}|{question.query}"


def backend_key(backend: object) -> str:
    """The registry name (or a stable stand-in) for a backend spec."""
    if isinstance(backend, str):
        return backend
    name = getattr(backend, "name", "")
    return name or repr(backend)


@dataclass(frozen=True)
class ExplanationPlan:
    """The fingerprintable identity of one explanation-table build.

    Everything that determines the finalized
    :class:`~repro.core.cube_algorithm.ExplanationTable` bit-for-bit is
    captured here: the database content fingerprint, the canonical
    question key, the attribute tuple (order-sensitive — it fixes the
    table's column layout), the evaluation method, the backend, and
    the support threshold.  Two plans with equal :meth:`fingerprint`
    values are guaranteed to produce interchangeable tables, which is
    what makes the table *M* safely cacheable across requests
    (:mod:`repro.service.cache`).
    """

    database_fingerprint: str
    question: str
    attributes: Tuple[str, ...]
    method: str
    backend: str
    support_threshold: Optional[float] = None
    #: The static analysis that justified (or merely accompanies) this
    #: plan.  Deliberately excluded from equality and the fingerprint:
    #: the certificate is derived from the other fields, not an input.
    certificate: Optional["PlanCertificate"] = field(
        default=None, compare=False, repr=False
    )

    @property
    def fingerprint(self) -> str:
        """SHA-256 content address of this plan."""
        text = "\x1f".join(
            (
                self.database_fingerprint,
                self.question,
                "\x1e".join(self.attributes),
                self.method,
                self.backend,
                repr(self.support_threshold),
            )
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


class Explainer:
    """Finds top explanations for one user question over one database.

    Parameters
    ----------
    database:
        The (semijoin-reduced) database instance.
    question:
        The user question ``(Q, dir)``.
    attributes:
        Qualified universal columns to search explanations over (the
        relevant set A' of Section 4.2).
    support_threshold:
        If set, drop explanations where no aggregate reaches it
        (Section 5.1.1 uses 1000).
    backend:
        Execution substrate for the ``"cube"`` method: ``"memory"``
        (default), ``"sqlite"``, ``"duckdb"``, or an
        :class:`~repro.backends.ExecutionBackend` instance.  The SQL
        backends run Algorithm 1 inside a real DBMS and produce the
        same rankings as the in-memory engine; the other methods
        (``naive``/``exact``/``indexed``) are memory-only.
    shards:
        Partition-parallel cube execution: spread each cube build
        over this many worker processes (:mod:`repro.parallel`).
        ``None`` defers to the ``REPRO_SHARDS`` environment variable;
        1 runs serially.  The resulting table is content-identical at
        every shard count, so this is a pure execution knob — it does
        not enter the plan fingerprint.  Memory backend only.
    strategy:
        Program-P evaluation schedule for the intervention-running
        methods (``indexed``/``exact``/``naive`` and :meth:`score`):
        ``"fixpoint"`` (the baseline loop), ``"closure"`` (FK cascade
        closure-index probes, :mod:`repro.engine.closure`), or
        ``"auto"`` (let the plan certificate's
        ``recommended_strategy`` pick).  ``None`` defers to the
        ``REPRO_STRATEGY`` environment variable, default fixpoint.
        Like ``shards`` this is a pure execution knob — any strategy
        yields byte-identical tables, so it does not enter the plan
        fingerprint.  (Not to be confused with the *top-K* strategy
        of :meth:`top`, which names Section 4.3's ranking variants.)
    """

    def __init__(
        self,
        database: Database,
        question: UserQuestion,
        attributes: Sequence[str],
        *,
        support_threshold: Optional[float] = None,
        backend: object = "memory",
        shards: Optional[int] = None,
        strategy: Optional[str] = None,
    ) -> None:
        if not attributes:
            raise ExplanationError("Explainer needs at least one attribute")
        self.database = database
        self.question = question
        self.attributes = tuple(attributes)
        self.support_threshold = support_threshold
        self.backend = backend
        #: Shard count for partition-parallel cube builds (None defers
        #: to ``REPRO_SHARDS``).  An execution knob, not part of the
        #: plan fingerprint: any shard count yields identical tables.
        self.shards = shards
        #: Intervention strategy (None defers to ``REPRO_STRATEGY``).
        #: An execution knob like ``shards``: any strategy yields
        #: byte-identical tables, so it is not part of the fingerprint.
        #: Validated eagerly; ``"auto"`` resolves lazily per plan.
        from .intervention import resolve_strategy_setting

        self.strategy = resolve_strategy_setting(strategy)
        self.join_tree = JoinTree(database.schema)
        self.universal = universal_table(database, self.join_tree)
        for attr in self.attributes:
            self.universal.position(attr)  # fail fast on unknown columns
        self._tables: Dict[str, ExplanationTable] = {}
        self._certificate: Optional["PlanCertificate"] = None
        self._incremental: Optional["IncrementalSession"] = None

    # -- analysis -----------------------------------------------------------

    def additivity_report(self) -> AdditivityReport:
        """Is the question's query intervention-additive here?"""
        return analyze_additivity(
            self.database, self.question.query, universal=self.universal
        )

    def certificate(self) -> "PlanCertificate":
        """The (cached) static plan certificate for this explainer.

        Data-resolved: the analyzer sees the instance, so footnote-11
        ``count(distinct ...)`` cases get definitive verdicts and the
        convergence bound is concrete.  Consumers use it to *pick* the
        evaluation method (:data:`AUTO_METHOD`) instead of probing.
        """
        if self._certificate is None:
            from ..analysis.analyzer import analyze_plan

            self._certificate = analyze_plan(
                self.database.schema,
                self.question,
                self.attributes,
                database=self.database,
                universal=self.universal,
            )
        return self._certificate

    def resolve_method(self, method: str) -> str:
        """Map :data:`AUTO_METHOD` to a concrete method via the certificate."""
        if method != AUTO_METHOD:
            return method
        return self.certificate().recommended_method

    def resolve_strategy(self) -> str:
        """The concrete intervention strategy for this explainer.

        ``"auto"`` consumes the plan certificate's
        ``recommended_strategy`` verdict (closure when back-and-forth
        keys make the fixpoint worth skipping, fixpoint otherwise).
        """
        from .intervention import AUTO_STRATEGY

        if self.strategy == AUTO_STRATEGY:
            return self.certificate().recommended_strategy
        return self.strategy

    def original_value(self) -> Value:
        """``Q(D)`` — the value the user is asking about."""
        return self.question.query.evaluate_universal(self.universal)

    # -- table construction ----------------------------------------------------

    def plan(self, method: str = "cube") -> ExplanationPlan:
        """The fingerprintable plan for building *M* with *method*.

        The plan's :attr:`~ExplanationPlan.fingerprint` is the cache
        key used by the serving layer: equal fingerprints mean
        :meth:`explanation_table` would return an interchangeable
        table, so a cached copy can be substituted via
        :meth:`seed_table`.
        """
        method = self.resolve_method(method)
        if method not in METHODS:
            raise ExplanationError(
                f"unknown method {method!r}; choose from {METHODS}"
            )
        return ExplanationPlan(
            database_fingerprint=self.database.content_fingerprint(),
            question=question_key(self.question),
            attributes=self.attributes,
            method=method,
            backend=backend_key(self.backend),
            support_threshold=self.support_threshold,
            certificate=self.certificate(),
        )

    def seed_table(self, method: str, table: ExplanationTable) -> None:
        """Inject a previously computed table *M* for *method*.

        Subsequent :meth:`explanation_table`/:meth:`top` calls with
        that method reuse *table* instead of recomputing it.  The
        caller is responsible for only seeding tables whose plan
        fingerprint matches (:meth:`plan`) — the serving layer's cache
        does exactly that.
        """
        method = self.resolve_method(method)
        if method not in METHODS:
            raise ExplanationError(
                f"unknown method {method!r}; choose from {METHODS}"
            )
        self._tables[method] = table

    def explanation_table(
        self, method: str = "cube", **kwargs
    ) -> ExplanationTable:
        """Build (and cache) the table *M* with the chosen method."""
        method = self.resolve_method(method)
        if method not in METHODS:
            raise ExplanationError(
                f"unknown method {method!r}; choose from {METHODS}"
            )
        if method != "cube" and backend_key(self.backend) != "memory":
            raise ExplanationError(
                f"method {method!r} runs only on the in-memory engine; "
                f"SQL backends implement the 'cube' method"
            )
        cache_key = method if not kwargs else None
        if cache_key and cache_key in self._tables:
            return self._tables[cache_key]
        with phase(
            "explanation_table",
            method=method,
            backend=backend_key(self.backend),
        ) as ph:
            ph.annotate(certified_bound=self.certificate().certified_bound)
            if method == "cube":
                kwargs.setdefault(
                    "certificate", self.certificate().additivity
                )
                kwargs.setdefault("shards", self.shards)
                m = build_explanation_table(
                    self.database,
                    self.question,
                    self.attributes,
                    universal=self.universal,
                    support_threshold=self.support_threshold,
                    backend=self.backend,
                    **kwargs,
                )
            elif method == "naive":
                m = self._naive_table(exact=False)
            elif method == "indexed":
                from .iterative import IndexedInterventionEvaluator

                m = IndexedInterventionEvaluator(
                    self.database,
                    self.question,
                    self.attributes,
                    universal=self.universal,
                    strategy=self.resolve_strategy(),
                ).build_table()
            else:
                m = self._naive_table(exact=True)
            ph.annotate(rows=len(m))
        if cache_key:
            self._tables[cache_key] = m
        return m

    def _naive_table(self, *, exact: bool) -> ExplanationTable:
        query = self.question.query
        evaluator = DegreeEvaluator(
            self.database, self.question, strategy=self.resolve_strategy()
        )
        value_columns = [f"v_{q.name}" for q in query.aggregates]
        columns = (
            list(self.attributes)
            + value_columns
            + [MU_INTERV, MU_AGGR]
        )
        rows: List[Row] = []
        candidates = list(
            enumerate_explanations(
                self.universal, self.attributes, include_trivial=True
            )
        )
        for phi in candidates:
            aggr_values = evaluator.aggravation_values(phi)
            if self.support_threshold is not None and not phi.is_trivial():
                if not any(
                    not is_null(v) and v >= self.support_threshold
                    for v in aggr_values.values()
                ):
                    continue
            mu_a = query.evaluate_environment(aggr_values)
            if not is_null(mu_a):
                mu_a = self.question.aggravation_sign * mu_a
            if exact:
                interv_values = evaluator.intervention_values(phi)
            else:
                interv_values = {
                    name: _subtract(evaluator.q_original[name], aggr_values[name])
                    for name in aggr_values
                }
            mu_i = query.evaluate_environment(interv_values)
            if not is_null(mu_i):
                mu_i = self.question.intervention_sign * mu_i
            assignments = phi.assignments()
            attr_values = tuple(
                assignments.get(attr, DUMMY) for attr in self.attributes
            )
            v_values = tuple(aggr_values[q.name] for q in query.aggregates)
            rows.append(attr_values + v_values + (mu_i, mu_a))
        return ExplanationTable(
            table=Table(columns, rows),
            attributes=self.attributes,
            aggregate_names=tuple(query.names),
            q_original=dict(evaluator.q_original),
        )

    # -- incremental maintenance ------------------------------------------------

    def apply_delta(
        self,
        mutations: Mapping[str, Mapping[str, Iterable[Sequence[Value]]]],
        *,
        method: str = "cube",
    ) -> "RefreshStats":
        """Mutate the database and refresh the table *M* incrementally.

        *mutations* maps relation names to ``{"insert": rows,
        "delete": rows}`` batches (deletes run first, so an update is a
        delete+insert pair).  The first call sets up an
        :class:`~repro.incremental.IncrementalSession` — one extra
        table build — after which each delta is folded into the live
        cube states in time proportional to the delta's universal
        rows; non-additive plans or exactness violations fall back to
        a full recompute (never a wrong table).

        The explainer's derived state (universal table, cached tables,
        certificate) is re-synced to the mutated instance, with the
        refreshed table seeded under *method*, so subsequent
        :meth:`top`/:meth:`explanation_table` calls serve the new
        state.  Mutate the database only through this method while
        using it — out-of-band writes before the first call escape the
        session's mutation log.
        """
        from ..incremental import IncrementalSession

        session = self._incremental
        if session is None or session.method != method:
            if session is not None:
                session.close()
            session = IncrementalSession(
                self.database,
                self.question,
                self.attributes,
                method=method,
                support_threshold=self.support_threshold,
                shards=self.shards,
                strategy=self.strategy,
            )
            self._incremental = session
        for name, spec in mutations.items():
            relation = self.database.relation(name)
            relation.delete_many(tuple(spec.get("delete", ()) or ()))
            relation.insert_many(tuple(spec.get("insert", ()) or ()))
        stats = session.refresh()
        # Derived state is stale after the writes: recompute the
        # universal table, drop memoized tables and the certificate,
        # and seed the refreshed M so reads skip a rebuild.
        self.universal = universal_table(self.database, self.join_tree)
        self._tables = {}
        self._certificate = None
        self._tables[self.resolve_method(method)] = session.table()
        return stats

    # -- ranking ----------------------------------------------------------------

    def top(
        self,
        k: int,
        *,
        by: str = "intervention",
        strategy: str = "minimal_append",
        method: str = "cube",
        hybrid_weight: float = 0.5,
        minimality: str = "general",
    ) -> List[RankedExplanation]:
        """The top-K (minimal) explanations.

        ``by`` is ``"intervention"``, ``"aggravation"`` or ``"hybrid"``
        (the Section 6(iii) rank-combined degree, weighted by
        ``hybrid_weight`` toward intervention); ``strategy`` one of
        ``no_minimal`` / ``minimal_self_join`` / ``minimal_append``
        (Section 4.3); ``minimality`` is ``"general"`` (paper default)
        or ``"specific"`` (footnote 12's alternative).
        """
        from .cube_algorithm import MU_HYBRID, add_hybrid_column

        column = {
            "intervention": MU_INTERV,
            "aggravation": MU_AGGR,
            "hybrid": MU_HYBRID,
        }.get(by)
        if column is None:
            raise ExplanationError(
                f"by must be 'intervention', 'aggravation' or 'hybrid', "
                f"got {by!r}"
            )
        m = self.explanation_table(method)
        if by == "hybrid":
            m = add_hybrid_column(m, weight=hybrid_weight)
        return top_k_explanations(
            m, k, by=column, strategy=strategy, minimality=minimality
        )

    # -- one-off scoring ------------------------------------------------------

    def score(self, phi: Explanation):
        """Exact degrees for one explanation (program P ground truth)."""
        return DegreeEvaluator(
            self.database, self.question, strategy=self.resolve_strategy()
        ).score(phi)


def _subtract(original: Value, restricted: Value) -> Value:
    if is_null(original) or is_null(restricted):
        return NULL
    return original - restricted


def render_ranking(ranking: Iterable[RankedExplanation]) -> str:
    """A readable table of ranked explanations for examples and CLIs."""
    lines = ["rank  degree        explanation"]
    for r in ranking:
        degree = f"{r.degree:.4g}" if isinstance(r.degree, (int, float)) else str(r.degree)
        lines.append(f"{r.rank:>4}  {degree:<12}  {r.explanation}")
    return "\n".join(lines)
