"""Degrees of explanation: μ_aggr and μ_interv (Definitions 2.4, 2.7).

This module is the *naive* evaluator: it scores one explanation at a
time, computing Δ^φ with program P and re-evaluating Q on the residual
database.  It is the ground truth the cube algorithm (Algorithm 1,
:mod:`repro.core.cube_algorithm`) is validated against, and the "No
Cube" baseline of Figure 12.

Operationally, following Section 4.1, ``q_j(D_φ)`` is evaluated as
``q_j(σ_φ(U))``: restricting the database to the φ-satisfying universal
tuples and re-joining cannot add rows for the SPJA aggregates the
framework supports, so the two readings coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..engine.database import Database
from ..engine.types import Value, is_null
from ..engine.universal import JoinTree, universal_table
from .intervention import InterventionResult, make_strategy
from .predicates import Predicate
from .question import UserQuestion


@dataclass(frozen=True)
class ExplanationScore:
    """Everything the naive evaluator knows about one explanation."""

    phi: Predicate
    mu_aggr: Value
    mu_interv: Value
    q_original: Dict[str, Value]
    q_aggravation: Dict[str, Value]
    q_intervention: Dict[str, Value]
    intervention: InterventionResult

    @property
    def delta_size(self) -> int:
        """|Δ^φ|."""
        return self.intervention.size


class DegreeEvaluator:
    """Scores explanations against one (database, question) pair.

    The universal table, the join tree and the original aggregate
    values ``q_j(D)`` are computed once and shared across explanations.
    """

    def __init__(
        self,
        database: Database,
        question: UserQuestion,
        *,
        strategy: Optional[str] = None,
    ) -> None:
        self.database = database
        self.question = question
        self.join_tree = JoinTree(database.schema)
        self.universal = universal_table(database, self.join_tree)
        self.engine = make_strategy(
            database,
            strategy=strategy,
            universal=self.universal,
            join_tree=self.join_tree,
        )
        self.q_original: Dict[str, Value] = (
            question.query.aggregate_values(self.universal)
        )
        self.q_on_d: Value = question.query.evaluate_environment(self.q_original)

    # -- aggravation ------------------------------------------------------

    def aggravation_values(self, phi: Predicate) -> Dict[str, Value]:
        """``q_j(D_φ)`` for all aggregates (evaluated on σ_φ(U))."""
        restricted = self.universal.filter(phi.to_expression())
        return self.question.query.aggregate_values(restricted)

    def aggravation(self, phi: Predicate) -> Value:
        """μ_aggr(φ) = aggravation_sign × Q(D_φ)."""
        values = self.aggravation_values(phi)
        q = self.question.query.evaluate_environment(values)
        if is_null(q):
            return q
        return self.question.aggravation_sign * q

    # -- intervention ------------------------------------------------------

    def intervention_result(self, phi: Predicate) -> InterventionResult:
        """Δ^φ via program P."""
        return self.engine.compute(phi)

    def intervention_values(
        self, phi: Predicate, result: Optional[InterventionResult] = None
    ) -> Dict[str, Value]:
        """``q_j(D − Δ^φ)`` for all aggregates."""
        res = result if result is not None else self.intervention_result(phi)
        residual = self.database.subtract(res.delta)
        residual_universal = universal_table(residual, self.join_tree)
        return self.question.query.aggregate_values(residual_universal)

    def intervention(self, phi: Predicate) -> Value:
        """μ_interv(φ) = intervention_sign × Q(D − Δ^φ)."""
        values = self.intervention_values(phi)
        q = self.question.query.evaluate_environment(values)
        if is_null(q):
            return q
        return self.question.intervention_sign * q

    # -- combined ---------------------------------------------------------

    def score(self, phi: Predicate) -> ExplanationScore:
        """Both degrees plus all intermediate values for one explanation."""
        aggr_values = self.aggravation_values(phi)
        mu_a = self.question.query.evaluate_environment(aggr_values)
        if not is_null(mu_a):
            mu_a = self.question.aggravation_sign * mu_a
        result = self.intervention_result(phi)
        interv_values = self.intervention_values(phi, result)
        mu_i = self.question.query.evaluate_environment(interv_values)
        if not is_null(mu_i):
            mu_i = self.question.intervention_sign * mu_i
        return ExplanationScore(
            phi=phi,
            mu_aggr=mu_a,
            mu_interv=mu_i,
            q_original=dict(self.q_original),
            q_aggravation=aggr_values,
            q_intervention=interv_values,
            intervention=result,
        )


def hybrid_degree(
    score: ExplanationScore, weight: float = 0.5
) -> Value:
    """A hybrid aggravation/intervention degree (Section 6(iii)).

    The paper proposes (as future work) a definition between the two
    extremes; we provide the convex combination
    ``weight·μ_interv + (1−weight)·μ_aggr`` over *rank-comparable*
    scores.  Returns NULL if either component is undefined.
    """
    if is_null(score.mu_aggr) or is_null(score.mu_interv):
        from ..engine.types import NULL

        return NULL
    return weight * score.mu_interv + (1 - weight) * score.mu_aggr
