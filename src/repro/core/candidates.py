"""Candidate-explanation enumeration over a chosen attribute subset.

The system searches explanations over a user-chosen set of *relevant
attributes* ``A'`` (Section 4.2: "the subset A' helps both in focusing
the search and improving performance").  The cube algorithm enumerates
candidates implicitly (one cube row each); the naive baseline and the
tests need the explicit enumeration implemented here: every conjunction
of equality predicates assigning values from the active domain to a
subset of ``A'``.

Section 6(ii) extensions are supported by :func:`bucket_atoms`, which
turns a numeric attribute into range predicates (pairs of ``>=``/``<``
atoms) so inequalities can participate in candidate explanations.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..engine.table import Table
from ..engine.types import Value, sort_key
from ..errors import ExplanationError
from .predicates import AtomicPredicate, Explanation


def active_domain(
    universal: Table, column: str, *, limit: Optional[int] = None
) -> List[Value]:
    """Distinct non-null values of a universal column, sorted.

    ``limit`` caps the number of values (most-frequent first would need
    counting; we keep the deterministic sorted prefix, which suffices
    for the synthetic workloads).
    """
    values = sorted(universal.column_values(column), key=sort_key)
    if limit is not None:
        return values[:limit]
    return values


def enumerate_explanations(
    universal: Table,
    attributes: Sequence[str],
    *,
    max_atoms: Optional[int] = None,
    include_trivial: bool = False,
    domain_limit: Optional[int] = None,
) -> Iterator[Explanation]:
    """All equality candidate explanations over *attributes*.

    Yields conjunctions over every non-empty subset of the attributes
    (up to ``max_atoms`` conjuncts), assigning each chosen attribute a
    value from its active domain.  Attribute names must be qualified
    universal columns (``Relation.attr``).
    """
    for attr in attributes:
        if "." not in attr:
            raise ExplanationError(
                f"candidate attribute {attr!r} must be qualified Relation.attr"
            )
    domains: Dict[str, List[Value]] = {
        attr: active_domain(universal, attr, limit=domain_limit)
        for attr in attributes
    }
    if include_trivial:
        yield Explanation(())
    cap = max_atoms if max_atoms is not None else len(attributes)
    for size in range(1, cap + 1):
        for subset in combinations(attributes, size):
            value_lists = [domains[a] for a in subset]
            for values in product(*value_lists):
                atoms = tuple(
                    AtomicPredicate(*_split(attr), "=", value)
                    for attr, value in zip(subset, values)
                )
                yield Explanation(atoms)


def count_candidates(
    universal: Table,
    attributes: Sequence[str],
    *,
    max_atoms: Optional[int] = None,
) -> int:
    """Number of candidate explanations without materializing them.

    ``Π over subsets S of Π_{a∈S} |adom(a)|`` — the paper quotes these
    counts for the natality experiments (">71K candidate explanations").
    """
    sizes = [len(universal.column_values(a)) for a in attributes]
    cap = max_atoms if max_atoms is not None else len(attributes)
    total = 0
    for size in range(1, cap + 1):
        for subset in combinations(range(len(sizes)), size):
            prod = 1
            for i in subset:
                prod *= sizes[i]
            total += prod
    return total


def _split(qualified: str) -> Tuple[str, str]:
    rel, attr = qualified.split(".", 1)
    return rel, attr


def bucket_atoms(
    relation: str,
    attribute: str,
    boundaries: Sequence[Value],
) -> List[Tuple[AtomicPredicate, ...]]:
    """Range-predicate candidates for a numeric attribute (Section 6(ii)).

    ``boundaries = [b0, b1, …, bn]`` produces the half-open buckets
    ``[b0,b1), [b1,b2), …`` each as a pair of atoms
    ``attr >= b_i ∧ attr < b_{i+1}``, usable as additional conjunct
    groups when enumerating explanations with inequalities.
    """
    if len(boundaries) < 2:
        raise ExplanationError("bucketing needs at least two boundaries")
    buckets: List[Tuple[AtomicPredicate, ...]] = []
    for lo, hi in zip(boundaries, boundaries[1:]):
        buckets.append(
            (
                AtomicPredicate(relation, attribute, ">=", lo),
                AtomicPredicate(relation, attribute, "<", hi),
            )
        )
    return buckets


def enumerate_with_buckets(
    universal: Table,
    equality_attributes: Sequence[str],
    bucketed: Dict[str, Sequence[Value]],
    *,
    max_atoms: Optional[int] = None,
) -> Iterator[Explanation]:
    """Candidates mixing equality attributes and bucketed numeric ones.

    ``bucketed`` maps qualified numeric attributes to their boundary
    lists.  Each bucket contributes its two inequality atoms as a unit.
    """
    options: List[List[Tuple[AtomicPredicate, ...]]] = []
    for attr in equality_attributes:
        rel, a = _split(attr)
        options.append(
            [
                (AtomicPredicate(rel, a, "=", v),)
                for v in active_domain(universal, attr)
            ]
        )
    for attr, boundaries in bucketed.items():
        rel, a = _split(attr)
        options.append(bucket_atoms(rel, a, list(boundaries)))
    cap = max_atoms if max_atoms is not None else len(options)
    for size in range(1, cap + 1):
        for subset in combinations(range(len(options)), size):
            for choice in product(*(options[i] for i in subset)):
                atoms: Tuple[AtomicPredicate, ...] = tuple(
                    atom for group in choice for atom in group
                )
                yield Explanation(atoms)
