"""Pluggable execution backends for Algorithm 1.

The explanation pipeline can run its cube computation on three
substrates, selected by name through
``build_explanation_table(..., backend=...)``, ``Explainer(...,
backend=...)`` or the CLI ``--backend`` flag:

* ``"memory"`` — the pure-Python engine (the reference);
* ``"sqlite"`` — stdlib :mod:`sqlite3`, always available;
* ``"duckdb"`` — optional extra (``pip install repro[duckdb]``).

All backends return the same :class:`~repro.core.cube_algorithm.ExplanationTable`
layout, so the top-K strategies and rendering are backend-agnostic and
rankings are identical across backends (the parity test suite under
``tests/backends/`` enforces this).

Third-party backends subclass :class:`ExecutionBackend` (or
:class:`~repro.backends.sqlbase.SQLBackend` for DBMS-backed ones) and
call :func:`register_backend`; see ``docs/backends.md``.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type, Union

from ..errors import ExplanationError
from .base import ExecutionBackend, MemoryBackend
from .duckdb_backend import DuckDBBackend
from .sqlbase import SQLBackend
from .sqlite_backend import SQLiteBackend

_REGISTRY: Dict[str, Type[ExecutionBackend]] = {}


def register_backend(cls: Type[ExecutionBackend]) -> Type[ExecutionBackend]:
    """Register a backend class under its ``name`` (usable as decorator)."""
    if not cls.name:
        raise ExplanationError(
            f"backend class {cls.__name__} must set a non-empty name"
        )
    _REGISTRY[cls.name] = cls
    return cls


register_backend(MemoryBackend)
register_backend(SQLiteBackend)
register_backend(DuckDBBackend)


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, in registration order."""
    return tuple(_REGISTRY)


def available_backends() -> Tuple[str, ...]:
    """Registered backends whose dependencies are importable."""
    return tuple(
        name for name, cls in _REGISTRY.items() if cls.is_available()
    )


def get_backend(
    spec: Union[str, ExecutionBackend, Type[ExecutionBackend]]
) -> ExecutionBackend:
    """Resolve a backend name, class or instance to a ready instance.

    Raises :class:`~repro.errors.ExplanationError` for unknown names and
    for backends whose dependencies are missing (with an install hint).
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, type) and issubclass(spec, ExecutionBackend):
        return spec()
    cls = _REGISTRY.get(spec)  # type: ignore[arg-type]
    if cls is None:
        raise ExplanationError(
            f"unknown backend {spec!r}; choose from {backend_names()}"
        )
    if not cls.is_available():
        raise ExplanationError(
            f"backend {spec!r} is not available: {cls.unavailable_reason()}"
        )
    return cls()


def get_backend_with_fallback(
    spec: Union[str, ExecutionBackend, Type[ExecutionBackend]]
) -> Tuple[ExecutionBackend, str]:
    """Resolve *spec*, degrading to ``memory`` when unavailable.

    Unknown names still raise (a typo should not silently change the
    execution substrate), but a *known* backend whose dependency is
    missing — ``duckdb`` without the optional extra — resolves to
    :class:`MemoryBackend` instead.  Returns ``(backend, warning)``
    where *warning* is ``""`` when no degradation happened; rankings
    are unaffected because all backends are parity-tested against the
    memory reference.  This is the resolution rule the serving layer
    (:mod:`repro.service`) uses.
    """
    if isinstance(spec, str):
        cls = _REGISTRY.get(spec)
        if cls is None:
            raise ExplanationError(
                f"unknown backend {spec!r}; choose from {backend_names()}"
            )
        if not cls.is_available():
            return MemoryBackend(), (
                f"backend {spec!r} is not available "
                f"({cls.unavailable_reason()}); falling back to 'memory'"
            )
    return get_backend(spec), ""


__all__ = [
    "DuckDBBackend",
    "ExecutionBackend",
    "MemoryBackend",
    "SQLBackend",
    "SQLiteBackend",
    "available_backends",
    "backend_names",
    "get_backend",
    "get_backend_with_fallback",
    "register_backend",
]
