"""The :class:`ExecutionBackend` contract and the in-memory reference.

A backend is an execution substrate for Algorithm 1: given a database,
a user question and the relevant attributes, it produces the
materialized explanation table *M* as an
:class:`~repro.core.cube_algorithm.ExplanationTable`.  Everything
downstream — the top-K strategies, minimality post-processing,
``render_ranking`` — consumes that table and is backend-agnostic.

Two families exist:

* :class:`MemoryBackend` — the pure-Python engine path of
  :func:`repro.core.cube_algorithm.build_explanation_table` (the
  reference implementation every other backend is tested against);
* :class:`~repro.backends.sqlbase.SQLBackend` subclasses — push the
  cube computation, the NULL→dummy rewrite and the m-way join into a
  real DBMS, as the paper's SQL Server prototype does (Section 4).

Backends are stateless service objects: one instance can serve many
``build_explanation_table`` calls, each on a fresh DBMS connection.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ClassVar, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.additivity import AdditivityCertificate
    from ..core.cube_algorithm import ExplanationTable
    from ..core.question import UserQuestion
    from ..engine.database import Database
    from ..engine.table import Table


class ExecutionBackend(abc.ABC):
    """Abstract execution substrate for Algorithm 1.

    Subclasses set :attr:`name` (the registry key used by
    ``Explainer(backend=...)`` and the CLI ``--backend`` flag) and
    implement :meth:`build_explanation_table`.  Backends whose
    dependencies may be missing override :meth:`is_available` and
    :meth:`unavailable_reason` so callers can degrade gracefully.
    """

    #: Registry key, e.g. ``"sqlite"``.
    name: ClassVar[str] = ""

    @classmethod
    def is_available(cls) -> bool:
        """True iff this backend can run in the current environment."""
        return True

    @classmethod
    def unavailable_reason(cls) -> str:
        """Human-readable hint shown when the backend is unavailable."""
        return f"backend {cls.name!r} is unavailable"

    @abc.abstractmethod
    def build_explanation_table(
        self,
        database: "Database",
        question: "UserQuestion",
        attributes: Sequence[str],
        *,
        universal: Optional["Table"] = None,
        check_additivity: bool = True,
        support_threshold: Optional[float] = None,
        certificate: Optional["AdditivityCertificate"] = None,
    ) -> "ExplanationTable":
        """Run Algorithm 1 and return the explanation table *M*.

        Must match the in-memory reference: same columns (attributes,
        ``v_<name>`` per aggregate, ``mu_interv``, ``mu_aggr``), DUMMY
        marking don't-care attribute positions, and μ values computed
        with the engine's arithmetic conventions.  Row order is
        unconstrained (the top-K strategies are order-independent).

        ``certificate`` is an optional data-resolved additivity
        certificate for this (database, query); backends use it to skip
        the per-request additivity probe (which otherwise materializes
        the universal table just to re-derive a static fact).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class MemoryBackend(ExecutionBackend):
    """The pure-Python engine path — the reference implementation."""

    name: ClassVar[str] = "memory"

    def build_explanation_table(
        self,
        database: "Database",
        question: "UserQuestion",
        attributes: Sequence[str],
        *,
        universal: Optional["Table"] = None,
        check_additivity: bool = True,
        support_threshold: Optional[float] = None,
        certificate: Optional["AdditivityCertificate"] = None,
    ) -> "ExplanationTable":
        from ..core.cube_algorithm import build_explanation_table

        return build_explanation_table(
            database,
            question,
            attributes,
            universal=universal,
            check_additivity=check_additivity,
            support_threshold=support_threshold,
            backend="memory",
            certificate=certificate,
        )
