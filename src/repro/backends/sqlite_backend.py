"""Algorithm 1 on SQLite — always available (stdlib :mod:`sqlite3`).

SQLite is dynamically typed, which makes it the most faithful host for
the paper's script: the NULL→dummy rewrite really is an ``UPDATE``
writing the string dummy constant into the grouping columns, exactly as
the SQL Server prototype does (Section 4.2), and the cube joins are
plain equality.  SQLite has neither ``WITH CUBE`` nor ``GROUPING
SETS``, so the cube is expanded into a ``UNION ALL`` over all 2^d
grouping sets (d is small — the paper's relevant attribute sets have a
handful of attributes).

Because the dummy constant lives in the data domain, a *data* value
equal to ``'__DUMMY__'`` would be ambiguous; like the engine's
NULL-dimension check, the backend rejects it explicitly rather than
silently merging explanations.
"""

from __future__ import annotations

import math
import sqlite3
from typing import Any, ClassVar, List, Optional, Sequence

from ..core.sqlgen import sql_literal
from ..engine.cube import grouping_sets
from ..errors import QueryError
from .sqlbase import DUMMY_TEXT, UNIVERSAL_VIEW, SQLBackend, qid


def _sql_ln(value: Optional[float]) -> Optional[float]:
    if value is None or value <= 0:
        return None
    return math.log(value)


def _sql_exp(value: Optional[float]) -> Optional[float]:
    if value is None:
        return None
    return math.exp(value)


class SQLiteBackend(SQLBackend):
    """Execute Algorithm 1 inside an in-memory SQLite database."""

    name: ClassVar[str] = "sqlite"
    dialect = "sqlite"

    def _connect(self) -> sqlite3.Connection:
        con = sqlite3.connect(":memory:")
        # Predicate/expression rendering may emit LN/EXP; older SQLite
        # builds lack the math functions, so provide them always.
        con.create_function("LN", 1, _sql_ln, deterministic=True)
        con.create_function("EXP", 1, _sql_exp, deterministic=True)
        return con

    def _cube_sql(
        self,
        attributes: Sequence[str],
        aliases: Sequence[str],
        aggregate_sql: str,
        value_column: str,
        where_sql: Optional[str],
    ) -> str:
        arms: List[str] = []
        for kept in grouping_sets(attributes):
            kept_set = set(kept)
            cols = ", ".join(
                f"{qid(attr)} AS {qid(alias)}"
                if attr in kept_set
                else f"NULL AS {qid(alias)}"
                for attr, alias in zip(attributes, aliases)
            )
            lines = [
                f"SELECT {cols}, {aggregate_sql} AS {qid(value_column)}",
                f"FROM {qid(UNIVERSAL_VIEW)}",
            ]
            if where_sql:
                lines.append(f"WHERE {where_sql}")
            if kept:
                lines.append(
                    "GROUP BY " + ", ".join(qid(attr) for attr in kept)
                )
            arms.append("\n".join(lines))
        return "\nUNION ALL\n".join(arms)

    def _rewrite_dummies(
        self, con: Any, table: str, aliases: Sequence[str]
    ) -> None:
        # The paper's Section 4.2 rewrite, verbatim: replace the cube's
        # NULL don't-care markers with the dummy constant so the m-way
        # join can use plain (NULL-blind) equality.
        for alias in aliases:
            con.execute(
                f"UPDATE {qid(table)} SET {qid(alias)} = "
                f"{sql_literal(DUMMY_TEXT)} "
                f"WHERE {qid(alias)} IS NULL"
            )

    def _check_dimension_values(
        self, con: Any, attributes: Sequence[str]
    ) -> None:
        super()._check_dimension_values(con, attributes)
        for attr in attributes:
            hit = self._fetchall(
                con,
                f"SELECT 1 FROM {qid(UNIVERSAL_VIEW)} "
                f"WHERE {qid(attr)} = {sql_literal(DUMMY_TEXT)} LIMIT 1",
            )
            if hit:
                raise QueryError(
                    f"cube dimension {attr!r} contains the literal "
                    f"{DUMMY_TEXT!r} string, which is reserved as the "
                    "dummy constant of the SQLite backend"
                )
