"""Shared machinery for DBMS-backed Algorithm 1 (:class:`SQLBackend`).

This is the paper's Section 4 claim made literal: "the entire
computation can be pushed inside the database engine".  A
:class:`SQLBackend` runs one :meth:`build_explanation_table` call as a
single in-database script against a fresh connection:

1. load every relation of the engine :class:`~repro.engine.database.Database`
   into a DBMS table (engine ``NULL`` → SQL ``NULL``);
2. create the universal-relation view ``__U`` joining all relations
   along the foreign-key join tree, with qualified column names
   (``"Author.name"``) matching the engine's universal table;
3. evaluate every ``u_j = q_j(D)`` as a scalar SELECT over ``__U``;
4. materialize one cube table ``__C_<name>`` per aggregate query — the
   dialect decides how (``GROUPING SETS`` on DuckDB, a ``UNION ALL``
   expansion on SQLite) — and optionally perform the paper's
   NULL→dummy UPDATE rewrite;
5. build the driver table ``__K`` (the UNION of all cube keys) and
   LEFT JOIN every cube back onto it — equivalent to the paper's m-way
   full outer join but without nested COALESCE key chains;
6. marshal the result rows back into an engine
   :class:`~repro.engine.table.Table` (SQL ``NULL`` value → engine
   ``NULL``, don't-care key → ``DUMMY``) and delegate the μ columns and
   support filtering to
   :func:`repro.core.cube_algorithm.finalize_explanation_table`, so the
   degree arithmetic is bit-identical to the in-memory path.

Dialect differences are isolated in five template methods
(:meth:`SQLBackend._connect`, :meth:`~SQLBackend._column_type`,
:meth:`~SQLBackend._cube_sql`, :meth:`~SQLBackend._rewrite_dummies`,
:meth:`~SQLBackend._key_eq` / :meth:`~SQLBackend._key_to_engine`); a
new DBMS backend only needs those.  See ``docs/backends.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.additivity import AdditivityCertificate

from ..core.cube_algorithm import (
    MU_INTERV,
    ExplanationTable,
    finalize_explanation_table,
)
from ..core.numquery import AggregateQuery
from ..core.question import UserQuestion
from ..core.sqlgen import aggregate_sql, sql_expression, topk_select
from ..core.topk import RankedExplanation
from ..core.additivity import analyze_additivity
from ..engine.database import Database
from ..engine.schema import DatabaseSchema
from ..engine.table import Table
from ..engine.types import DUMMY, NULL, Value, is_null
from ..engine.universal import JoinTree, universal_table
from ..errors import QueryError
from ..obs import phase
from .base import ExecutionBackend

#: The string constant standing in for the engine's DUMMY singleton
#: inside dynamically-typed DBMS columns (the paper's dummy value).
DUMMY_TEXT = "__DUMMY__"

#: In-database object names used by the script.  They are illegal as
#: paper schema content only by convention, so collisions are checked.
UNIVERSAL_VIEW = "__U"
KEYS_TABLE = "__K"
CUBE_PREFIX = "__C_"
TOPK_TABLE = "__M"


def qid(name: str) -> str:
    """Quote *name* as a SQL identifier (handles dots and quotes)."""
    return '"' + name.replace('"', '""') + '"'


def _attribute_aliases(
    attributes: Sequence[str], reserved: Sequence[str]
) -> List[str]:
    """Legal, unique column aliases for qualified attribute names.

    ``Author.name`` → ``Author_name``; collisions with *reserved* names
    (the ``v_<name>`` value columns) or with each other get a numeric
    suffix.
    """
    aliases: List[str] = []
    used = set(reserved)
    for attr in attributes:
        base = attr.replace(".", "_")
        alias, i = base, 2
        while alias in used:
            alias = f"{base}_{i}"
            i += 1
        used.add(alias)
        aliases.append(alias)
    return aliases


class SQLBackend(ExecutionBackend):
    """Template-method base for backends that execute in a real DBMS."""

    #: The :mod:`repro.core.sqlgen` dialect used for expression rendering.
    dialect: str = "sqlite"

    # -- dialect template methods --------------------------------------

    def _connect(self) -> Any:
        """Open a fresh in-memory DBMS connection."""
        raise NotImplementedError

    def _column_type(
        self, dtype: str, rows: Sequence[Tuple[Value, ...]], position: int
    ) -> str:
        """SQL column type for one attribute ('' = untyped/dynamic)."""
        return ""

    def _cube_sql(
        self,
        attributes: Sequence[str],
        aliases: Sequence[str],
        aggregate_sql: str,
        value_column: str,
        where_sql: Optional[str],
    ) -> str:
        """The SELECT computing one aggregate's cube over ``__U``.

        ``aggregate_sql``/``where_sql`` are pre-rendered fragments from
        :mod:`repro.core.sqlgen` — the ``*_sql`` names mark them as
        already quoted (RL006).
        """
        raise NotImplementedError

    def _rewrite_dummies(
        self, con: Any, table: str, aliases: Sequence[str]
    ) -> None:
        """Post-process a cube table (the NULL→dummy UPDATE, if any)."""

    def _key_eq(self, left_sql: str, right_sql: str) -> str:
        """The join condition between two (already-quoted) key columns."""
        return f"{left_sql} = {right_sql}"

    def _key_to_engine(self, value: Any) -> Value:
        """Map one SQL key value back to the engine domain."""
        if value is None or value == DUMMY_TEXT:
            return DUMMY
        return value

    #: Whether the don't-care marker is in-database NULL (DuckDB) or
    #: the string dummy constant (the paper's Section 4.2 encoding).
    dummy_is_null: bool = False

    def _key_to_sql(self, value: Value) -> Any:
        """Inverse of :meth:`_key_to_engine` for loading M rows."""
        if value is DUMMY:
            return None if self.dummy_is_null else DUMMY_TEXT
        if is_null(value):
            return None
        return value

    # -- shared plumbing ------------------------------------------------

    def _execute(self, con: Any, sql: str) -> None:
        con.execute(sql)

    def _fetchall(self, con: Any, sql: str) -> List[Tuple[Any, ...]]:
        return con.execute(sql).fetchall()

    def _value_to_engine(self, value: Any) -> Value:
        return NULL if value is None else value

    def _load_database(self, con: Any, database: Database) -> None:
        """CREATE + INSERT every relation (engine NULL → SQL NULL)."""
        for name in database.relation_names:
            rs = database.schema.relation(name)
            rows = database.relation(name).sorted_rows()
            defs = []
            for i, attribute in enumerate(rs.attributes):
                col_type = self._column_type(attribute.dtype, rows, i)
                defs.append(f"{qid(attribute.name)} {col_type}".rstrip())
            self._execute(
                con, f"CREATE TABLE {qid(name)} ({', '.join(defs)})"
            )
            if rows:
                marks = ", ".join("?" for _ in rs.attributes)
                con.executemany(
                    f"INSERT INTO {qid(name)} VALUES ({marks})",
                    [
                        tuple(None if is_null(v) else v for v in row)
                        for row in rows
                    ],
                )

    def _create_universal_view(self, con: Any, schema: DatabaseSchema) -> None:
        """``__U``: all relations joined along the FK tree, columns
        qualified exactly like the engine's universal table."""
        tree = JoinTree(schema)
        select_parts: List[str] = []
        from_lines: List[str] = []
        for name, fk in tree.traversal_order:
            for attr in schema.relation(name).attribute_names:
                select_parts.append(
                    f"{qid(name)}.{qid(attr)} AS {qid(f'{name}.{attr}')}"
                )
            if fk is None:
                from_lines.append(f"FROM {qid(name)}")
                continue
            other = fk.target if fk.source == name else fk.source
            if name == fk.source:
                pairs = [
                    (name, s, other, t)
                    for s, t in zip(fk.source_attrs, fk.target_attrs)
                ]
            else:
                pairs = [
                    (other, s, name, t)
                    for s, t in zip(fk.source_attrs, fk.target_attrs)
                ]
            conditions = " AND ".join(
                f"{qid(a)}.{qid(b)} = {qid(c)}.{qid(d)}" for a, b, c, d in pairs
            )
            from_lines.append(f"JOIN {qid(name)} ON {conditions}")
        # Cycle-closing keys (residual edges of a require_acyclic=False
        # schema): both sides are joined by the time the later one
        # appears, so the equality rides on that JOIN's ON clause.
        position = {
            name: i for i, (name, _) in enumerate(tree.traversal_order)
        }
        for fk in tree.residual_edges:
            later = max(position[fk.source], position[fk.target])
            extra = " AND ".join(
                f"{qid(fk.source)}.{qid(s)} = {qid(fk.target)}.{qid(t)}"
                for s, t in zip(fk.source_attrs, fk.target_attrs)
            )
            from_lines[later] += f" AND {extra}"
        self._execute(
            con,
            f"CREATE VIEW {qid(UNIVERSAL_VIEW)} AS\n"
            f"SELECT {', '.join(select_parts)}\n" + "\n".join(from_lines),
        )

    def _check_dimension_values(
        self, con: Any, attributes: Sequence[str]
    ) -> None:
        """Mirror the engine cube's NULL-dimension rejection."""
        for attr in attributes:
            hit = self._fetchall(
                con,
                f"SELECT 1 FROM {qid(UNIVERSAL_VIEW)} "
                f"WHERE {qid(attr)} IS NULL LIMIT 1",
            )
            if hit:
                raise QueryError(
                    f"cube dimension {attr!r} contains NULL; NULL grouping "
                    "values are ambiguous with the cube's don't-care marker"
                )

    def _scalar_aggregate(self, con: Any, q: AggregateQuery) -> Value:
        """One ``u_j = q_j(D)`` as a scalar SELECT over ``__U``."""
        select = aggregate_sql(q.aggregate, render_col=qid)
        sql = f"SELECT {select} FROM {qid(UNIVERSAL_VIEW)}"
        if q.where is not None:
            sql += f" WHERE {sql_expression(q.where, self.dialect, render_col=qid)}"
        return self._value_to_engine(self._fetchall(con, sql)[0][0])

    # -- Section 4.3: top-K pushed into the DBMS ------------------------

    def top_k(
        self,
        m: ExplanationTable,
        k: int,
        *,
        by: str = MU_INTERV,
        minimality: str = "general",
    ) -> List[RankedExplanation]:
        """Plain top-K of a finalized *M* as one window query.

        Loads the table's attribute and degree columns into the DBMS
        and ranks with the ``ROW_NUMBER() OVER`` rendering of
        :func:`repro.core.sqlgen.topk_select` — the paper's "push the
        computation inside the database engine" applied to Section
        4.3's No-Minimal strategy.  The result matches
        :func:`repro.core.topk.top_k_no_minimal` tie-for-tie (the
        window ORDER BY is a strict total order over M rows).  The
        minimal strategies stay in-memory: their domination filters
        are iterative subset probes, not a single ranking.
        """
        attributes = list(m.attributes)
        table = m.table
        mu_pos = table.position(by)
        attr_pos = table.positions(attributes)
        aliases = _attribute_aliases(attributes, [by])
        rows = table.rows()
        sql_rows = [
            tuple(self._key_to_sql(row[i]) for i in attr_pos)
            + (
                None
                if is_null(row[mu_pos]) or row[mu_pos] is DUMMY
                else row[mu_pos],
            )
            for row in rows
        ]
        by_key = {tuple(row[i] for i in attr_pos): row for row in rows}
        con = self._connect()
        try:
            with phase("backend_topk", backend=self.name, k=k, rows=len(rows)):
                defs = []
                for j, alias in enumerate(aliases):
                    col_type = self._column_type("any", sql_rows, j)
                    defs.append(f"{qid(alias)} {col_type}".rstrip())
                mu_type = self._column_type("any", sql_rows, len(aliases))
                defs.append(f"{qid(by)} {mu_type}".rstrip())
                self._execute(
                    con,
                    f"CREATE TABLE {qid(TOPK_TABLE)} ({', '.join(defs)})",
                )
                if sql_rows:
                    marks = ", ".join("?" for _ in defs)
                    con.executemany(
                        f"INSERT INTO {qid(TOPK_TABLE)} VALUES ({marks})",
                        sql_rows,
                    )
                sql = topk_select(
                    by,
                    aliases,
                    k=k,
                    minimality=minimality,
                    dialect=self.dialect,
                    table=qid(TOPK_TABLE),
                    render_col=qid,
                    dummy_is_null=self.dummy_is_null,
                ).rstrip(";")
                ranked_rows = self._fetchall(con, sql)
        finally:
            con.close()
        n = len(attributes)
        output: List[RankedExplanation] = []
        for ranked in ranked_rows:
            key = tuple(self._key_to_engine(v) for v in ranked[:n])
            row = by_key[key]
            output.append(
                RankedExplanation(
                    rank=int(ranked[n + 1]),
                    explanation=m.explanation_of(row),
                    degree=row[mu_pos],
                    row=row,
                )
            )
        return output

    # -- the algorithm --------------------------------------------------

    def build_explanation_table(
        self,
        database: Database,
        question: UserQuestion,
        attributes: Sequence[str],
        *,
        universal: Optional[Table] = None,
        check_additivity: bool = True,
        support_threshold: Optional[float] = None,
        certificate: Optional["AdditivityCertificate"] = None,
    ) -> ExplanationTable:
        attributes = list(attributes)
        schema = database.schema
        for attr in attributes:
            if "." not in attr:
                raise QueryError(
                    f"attribute {attr!r} must be a qualified universal "
                    "column (Relation.attr)"
                )
            schema.qualified(attr)  # raises SchemaError on unknown names
        query = question.query
        if check_additivity:
            # A data-resolved certificate replaces the probe below,
            # which otherwise materializes the engine-side universal
            # table per request just to re-derive the same verdicts.
            if certificate is not None and certificate.data_resolved:
                if not certificate.all_exact_cube:
                    from ..core.additivity import (
                        AdditivityReport,
                        AggregateAdditivity,
                    )

                    AdditivityReport(
                        tuple(
                            AggregateAdditivity(v.name, v.additive, v.reason)
                            for v in certificate.verdicts
                        )
                    ).raise_if_not_additive()
            else:
                u = (
                    universal
                    if universal is not None
                    else universal_table(database)
                )
                analyze_additivity(
                    database, query, universal=u
                ).raise_if_not_additive()

        cube_names = {q.name: f"{CUBE_PREFIX}{q.name}" for q in query.aggregates}
        reserved = {UNIVERSAL_VIEW, KEYS_TABLE, *cube_names.values()}
        clash = reserved & set(schema.relation_names)
        if clash:
            raise QueryError(
                f"relation names {sorted(clash)} collide with the SQL "
                "backend's internal object names"
            )
        value_columns = [f"v_{q.name}" for q in query.aggregates]
        aliases = _attribute_aliases(attributes, value_columns)

        con = self._connect()
        try:
            with phase("backend_sql", backend=self.name) as sql_ph:
                with phase("backend_sql.load"):
                    self._load_database(con, database)
                    self._create_universal_view(con, schema)
                    self._check_dimension_values(con, attributes)

                # Step 1: the original aggregate values u_j.
                with phase("backend_sql.q_original"):
                    q_original: Dict[str, Value] = {
                        q.name: self._scalar_aggregate(con, q)
                        for q in query.aggregates
                    }

                # Step 2 (+2b): one cube table per aggregate,
                # dummy-rewritten where the dialect supports it.
                for q, value_column in zip(query.aggregates, value_columns):
                    with phase("backend_sql.cube", aggregate=q.name):
                        select = aggregate_sql(q.aggregate, render_col=qid)
                        where_sql = (
                            sql_expression(
                                q.where, self.dialect, render_col=qid
                            )
                            if q.where is not None
                            else None
                        )
                        body = self._cube_sql(
                            attributes,
                            aliases,
                            select,
                            value_column,
                            where_sql,
                        )
                        self._execute(
                            con,
                            f"CREATE TABLE {qid(cube_names[q.name])} "
                            f"AS\n{body}",
                        )
                        self._rewrite_dummies(
                            con, cube_names[q.name], aliases
                        )

                # Step 3: combine the cubes.  The UNION of all cube
                # keys is the set of candidate explanations; LEFT
                # JOINing each cube onto it is the m-way full outer
                # join without COALESCE chains (absent combinations
                # stay NULL and get the aggregate defaults in
                # finalize_explanation_table).
                with phase("backend_sql.join") as join_ph:
                    key_list = ", ".join(qid(a) for a in aliases)
                    keys_union = "\nUNION\n".join(
                        f"SELECT {key_list} FROM {qid(name)}"
                        for name in cube_names.values()
                    )
                    self._execute(
                        con,
                        f"CREATE TABLE {qid(KEYS_TABLE)} AS\n{keys_union}",
                    )
                    select_parts = [
                        f"{qid(KEYS_TABLE)}.{qid(a)}" for a in aliases
                    ]
                    select_parts += [
                        f"{qid(cube_names[q.name])}.{qid(vc)}"
                        for q, vc in zip(query.aggregates, value_columns)
                    ]
                    join_lines = []
                    for name in cube_names.values():
                        conditions = " AND ".join(
                            self._key_eq(
                                f"{qid(KEYS_TABLE)}.{qid(a)}",
                                f"{qid(name)}.{qid(a)}",
                            )
                            for a in aliases
                        )
                        join_lines.append(
                            f"LEFT JOIN {qid(name)} ON {conditions}"
                        )
                    rows = self._fetchall(
                        con,
                        f"SELECT {', '.join(select_parts)}\n"
                        f"FROM {qid(KEYS_TABLE)}\n" + "\n".join(join_lines),
                    )
                    join_ph.annotate(rows=len(rows))
                sql_ph.annotate(rows=len(rows))
        finally:
            con.close()

        # Step 3b/4 run in Python on the marshalled rows so the μ
        # arithmetic matches the in-memory reference exactly.
        n = len(attributes)
        marshalled = [
            tuple(self._key_to_engine(v) for v in row[:n])
            + tuple(self._value_to_engine(v) for v in row[n:])
            for row in rows
        ]
        joined = Table(list(attributes) + value_columns, marshalled)
        with phase("finalize", rows=len(joined)):
            return finalize_explanation_table(
                joined,
                question,
                attributes,
                q_original,
                support_threshold=support_threshold,
            )
