"""Algorithm 1 on DuckDB — optional extra (``pip install repro[duckdb]``).

DuckDB speaks ``GROUP BY GROUPING SETS`` natively, so the cube is a
single grouped query per aggregate rather than SQLite's ``UNION ALL``
expansion.  Its columns are strictly typed, which rules out the paper's
string-dummy UPDATE (a ``'__DUMMY__'`` cannot be written into a BIGINT
grouping column); instead the don't-care marker stays NULL in-database,
the cube join uses the null-safe ``IS NOT DISTINCT FROM``, and NULL
keys are mapped to the engine's ``DUMMY`` singleton at marshal time.
The two formulations are equivalent because the backend (like the
engine cube) rejects NULL *data* in grouping columns up front.

The module imports :mod:`duckdb` lazily so the rest of the package —
and the backend registry — works when the extra is not installed;
:meth:`DuckDBBackend.is_available` reports the situation and
:func:`repro.backends.get_backend` raises a helpful error.
"""

from __future__ import annotations

from typing import Any, ClassVar, Optional, Sequence, Tuple

from ..engine.cube import grouping_sets
from ..engine.types import Value, is_null
from ..errors import ExplanationError, QueryError
from .sqlbase import DUMMY, UNIVERSAL_VIEW, SQLBackend, qid

_DTYPE_SQL = {
    "int": "BIGINT",
    "float": "DOUBLE",
    "str": "VARCHAR",
    "bool": "BOOLEAN",
}


def _import_duckdb():
    try:
        import duckdb
    except ImportError:
        return None
    return duckdb


class DuckDBBackend(SQLBackend):
    """Execute Algorithm 1 inside an in-memory DuckDB database."""

    name: ClassVar[str] = "duckdb"
    dialect = "duckdb"
    dummy_is_null = True

    @classmethod
    def is_available(cls) -> bool:
        return _import_duckdb() is not None

    @classmethod
    def unavailable_reason(cls) -> str:
        return (
            "the duckdb package is not installed; "
            "install the optional extra: pip install repro[duckdb]"
        )

    def _connect(self) -> Any:
        duckdb = _import_duckdb()
        if duckdb is None:
            raise ExplanationError(self.unavailable_reason())
        return duckdb.connect(":memory:")

    def _column_type(
        self, dtype: str, rows: Sequence[Tuple[Value, ...]], position: int
    ) -> str:
        """DuckDB columns are strictly typed; infer ``any`` from data."""
        if dtype != "any":
            return _DTYPE_SQL[dtype]
        kinds = set()
        for row in rows:
            value = row[position]
            # None rows appear when inferring over already-marshalled
            # SQL rows (the top-K pushdown's NULL don't-care markers).
            if value is None or is_null(value):
                continue
            if isinstance(value, bool):
                kinds.add("bool")
            elif isinstance(value, int):
                kinds.add("int")
            elif isinstance(value, float):
                kinds.add("float")
            elif isinstance(value, str):
                kinds.add("str")
            else:
                raise QueryError(
                    f"cannot map value {value!r} to a DuckDB column type"
                )
        if not kinds:
            return "VARCHAR"
        if kinds == {"bool"}:
            return "BOOLEAN"
        if kinds == {"int"}:
            return "BIGINT"
        if kinds <= {"int", "float"}:
            return "DOUBLE"
        if kinds == {"str"}:
            return "VARCHAR"
        raise QueryError(
            f"column mixes incompatible value types {sorted(kinds)}; "
            "DuckDB columns are strictly typed — declare an explicit "
            "dtype or clean the data"
        )

    def _cube_sql(
        self,
        attributes: Sequence[str],
        aliases: Sequence[str],
        aggregate_sql: str,
        value_column: str,
        where_sql: Optional[str],
    ) -> str:
        cols = ", ".join(
            f"{qid(attr)} AS {qid(alias)}"
            for attr, alias in zip(attributes, aliases)
        )
        sets = ", ".join(
            "(" + ", ".join(qid(attr) for attr in kept) + ")"
            for kept in grouping_sets(attributes)
        )
        lines = [
            f"SELECT {cols}, {aggregate_sql} AS {qid(value_column)}",
            f"FROM {qid(UNIVERSAL_VIEW)}",
        ]
        if where_sql:
            lines.append(f"WHERE {where_sql}")
        lines.append(f"GROUP BY GROUPING SETS ({sets})")
        return "\n".join(lines)

    # No _rewrite_dummies: the don't-care marker stays NULL in-database.

    def _key_eq(self, left_sql: str, right_sql: str) -> str:
        return f"{left_sql} IS NOT DISTINCT FROM {right_sql}"

    def _key_to_engine(self, value: Any) -> Value:
        return DUMMY if value is None else value

    def _value_to_engine(self, value: Any) -> Value:
        if value is None:
            return super()._value_to_engine(value)
        # DuckDB surfaces SUM(BIGINT) as Decimal in some versions;
        # normalize numerics to the engine's int/float domain.
        if type(value) not in (int, float, str, bool):
            from decimal import Decimal

            if isinstance(value, Decimal):
                as_int = int(value)
                return as_int if value == as_int else float(value)
        return value
