"""Sharded partition-parallel cube execution.

This package spreads one cube build across CPU cores while keeping
the result byte-identical to serial execution:

* :mod:`~repro.parallel.planner` hash-partitions the universal table
  by a driver key into N disjoint, deterministic slices;
* :mod:`~repro.parallel.pool` pins each shard to one spawned worker
  process and keeps pools warm across requests;
* :mod:`~repro.parallel.tasks` defines the picklable task protocol
  and the worker-side scatter-once slice cache;
* :mod:`~repro.parallel.executor` scatters, fans out, merges partial
  cube states through an associativity-checked reduction tree, and
  degrades gracefully to serial execution on infrastructure failure.

Configure with ``REPRO_SHARDS`` / ``--shards N`` (see
``docs/sharding.md``); ``REPRO_SHARD_MODE=inline`` runs the same
partition/merge pipeline in-process for deterministic tests.
"""

from .executor import (
    MODE_INLINE,
    MODE_PROCESS,
    ShardedCubeSession,
    install_cube_hook,
    merge_shard_states,
    resolve_shard_count,
    resolve_shard_mode,
    sharded_base_states_hook,
    uninstall_cube_hook,
)
from .planner import (
    ShardPlan,
    canonical_shard_bytes,
    choose_driver_key,
    plan_shards,
    shard_of,
)
from .pool import ShardPool, discard_pool, get_pool, shutdown_pools
from .tasks import CubeTask, ShardCacheMiss, ShardStates, run_cube_task

__all__ = [
    "MODE_INLINE",
    "MODE_PROCESS",
    "CubeTask",
    "ShardCacheMiss",
    "ShardPlan",
    "ShardPool",
    "ShardStates",
    "ShardedCubeSession",
    "canonical_shard_bytes",
    "choose_driver_key",
    "discard_pool",
    "get_pool",
    "install_cube_hook",
    "merge_shard_states",
    "plan_shards",
    "resolve_shard_count",
    "resolve_shard_mode",
    "run_cube_task",
    "shard_of",
    "sharded_base_states_hook",
    "shutdown_pools",
    "uninstall_cube_hook",
]
