"""The shard worker pool: pinned, spawn-safe, crash-detecting.

One :class:`ShardPool` holds N single-process executors, with shard
``i`` pinned to worker ``i``.  Pinning is what makes the scatter-once
protocol work: a shard's slice lives in exactly one worker's cache
(:mod:`repro.parallel.tasks`), so tasks for that shard must always
land on that worker.

Pools are process-global and keyed by shard count — the service can
answer many requests over one warm pool.  A crashed worker surfaces as
``BrokenProcessPool`` (or a timeout) on ``result()``; the executor
treats every such infrastructure failure as a signal to
:func:`discard_pool` and fall back to serial execution, never as a
user-facing error.

Workers use the ``spawn`` start method unconditionally: fork is unsafe
under threads (the service is threaded) and spawn is the only method
available everywhere, so workers re-import the package and share no
parent state beyond what the task payload carries.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, List, Union

from ..obs import Gauge, get_registry
from .tasks import CubeTask, ShardCacheMiss, ShardStates, run_cube_task

TaskFuture = Future[Union[ShardStates, ShardCacheMiss]]

_POOL_SIZE_GAUGE_NAME = "repro_shard_pool_size"


def _pool_gauge() -> Gauge:
    return get_registry().gauge(
        _POOL_SIZE_GAUGE_NAME,
        help="Worker processes currently provisioned for sharded cubes.",
    )


class ShardPool:
    """N pinned single-worker executors (shard i -> worker i)."""

    def __init__(self, shards: int) -> None:
        ctx = multiprocessing.get_context("spawn")
        self.shards = shards
        self._executors: List[ProcessPoolExecutor] = [
            ProcessPoolExecutor(max_workers=1, mp_context=ctx)
            for _ in range(shards)
        ]
        self._closed = False
        _pool_gauge().inc(shards)

    def submit(self, task: CubeTask) -> TaskFuture:
        """Submit one task to its shard's pinned worker."""
        return self._executors[task.shard].submit(run_cube_task, task)

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        _pool_gauge().dec(self.shards)
        for executor in self._executors:
            executor.shutdown(wait=False, cancel_futures=True)


_POOLS: Dict[int, ShardPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(shards: int) -> ShardPool:
    """The process-global warm pool for *shards* workers."""
    with _POOLS_LOCK:
        pool = _POOLS.get(shards)
        if pool is None:
            pool = ShardPool(shards)
            _POOLS[shards] = pool
        return pool


def discard_pool(shards: int) -> None:
    """Tear down the pool for *shards* (after a crash or timeout)."""
    with _POOLS_LOCK:
        pool = _POOLS.pop(shards, None)
    if pool is not None:
        pool.shutdown()


def shutdown_pools() -> None:
    """Tear down every warm pool (interpreter exit, test cleanup)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()
