"""The fan-out executor: scatter once, cube many, merge exactly.

:class:`ShardedCubeSession` is the subsystem's front door.  It is
built once per explanation-table build (or held warm by the service
for a hot question): the universal table is projected to the needed
columns, hash-partitioned by the driver key
(:mod:`repro.parallel.planner`), and scattered to the pinned worker
pool (:mod:`repro.parallel.pool`).  Each subsequent
:meth:`ShardedCubeSession.cube` call then ships only a predicate and
an aggregate spec; workers filter their resident slice, group it at
full granularity, and send the partial states back, where an
associativity-checked reduction tree merges them and the engine's own
rollup/emit finishes the cube.  Because the merged base states are
exactly the serial ones, the finished table is content-identical at
any shard count.

Failure policy: deterministic data errors (``ReproError``) re-raise —
they would fail serially too.  Infrastructure failures (a crashed
worker, a timeout, a broken pool) degrade gracefully: the pool is
discarded, a ``RuntimeWarning`` is emitted, an ``obs`` counter ticks,
and the cube is computed serially in-process — same bytes, one core.

Configuration: ``REPRO_SHARDS`` (or the explicit ``shards=`` argument
/ ``--shards`` CLI flag) picks the shard count;
``REPRO_SHARD_MODE=inline`` keeps the partition/merge pipeline but
runs shard tasks in-process (deterministic tests, pickling-free
profiling); ``REPRO_SHARD_TIMEOUT`` bounds one task's wall clock.
"""

from __future__ import annotations

import os
import warnings
from itertools import count
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine.aggregates import AggregateSpec
from ..engine.cube import (
    BaseStatesHook,
    GroupState,
    base_states,
    cube_from_base_states,
    merge_states,
    set_parallel_base_hook,
    validate_cube_args,
)
from ..engine.expressions import Expression
from ..engine.table import Table
from ..engine.types import Row
from ..errors import ReproError, ShardError
from ..obs import Counter, Histogram, get_registry, phase
from .planner import ShardPlan, plan_shards
from .pool import discard_pool, get_pool
from .tasks import (
    CubeTask,
    ShardCacheMiss,
    ShardStates,
    run_cube_task,
    shard_table_payload,
)

#: Modes for executing shard tasks.
MODE_PROCESS = "process"
MODE_INLINE = "inline"

_SESSION_IDS = count(1)


def resolve_shard_count(explicit: Optional[int] = None) -> int:
    """The effective shard count: explicit arg, else ``REPRO_SHARDS``, else 1."""
    if explicit is not None:
        return max(1, int(explicit))
    raw = os.environ.get("REPRO_SHARDS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        warnings.warn(
            f"ignoring non-integer REPRO_SHARDS={raw!r}", RuntimeWarning
        )
        return 1


def resolve_shard_mode(explicit: Optional[str] = None) -> str:
    """``process`` (default) or ``inline`` (``REPRO_SHARD_MODE``)."""
    mode = explicit or os.environ.get("REPRO_SHARD_MODE", MODE_PROCESS)
    if mode not in (MODE_PROCESS, MODE_INLINE):
        raise ShardError(
            f"unknown shard mode {mode!r}; choose "
            f"{MODE_PROCESS!r} or {MODE_INLINE!r}"
        )
    return mode


def _task_timeout() -> float:
    raw = os.environ.get("REPRO_SHARD_TIMEOUT", "").strip()
    try:
        return float(raw) if raw else 60.0
    except ValueError:
        return 60.0


def _task_histogram(shard: int) -> Histogram:
    return get_registry().histogram(
        "repro_shard_task_seconds",
        labels={"shard": str(shard)},
        help="Wall-clock seconds of one shard's cube task.",
    )


def _retry_counter() -> Counter:
    return get_registry().counter(
        "repro_shard_retries_total",
        help="Shard tasks retried after a worker-side cache miss.",
    )


def _fallback_counter(reason: str) -> Counter:
    return get_registry().counter(
        "repro_shard_fallbacks_total",
        labels={"reason": reason},
        help="Sharded cube builds that degraded to serial execution.",
    )


def _count_total(states_seq: Sequence[Dict[Row, GroupState]]) -> int:
    """Total row count across count-only base states.

    On the count-only path every :data:`GroupState` is an ``int``; this
    narrows the union for the type checker and turns a miswired state
    (a list where a count belongs) into a :class:`ShardError` instead
    of a ``TypeError`` deep inside ``sum``.
    """
    total = 0
    for states in states_seq:
        for state in states.values():
            if not isinstance(state, int):
                raise ShardError(
                    "count-only merge saw a non-integer group state "
                    f"({type(state).__name__})"
                )
            total += state
    return total


def merge_shard_states(
    partials: Sequence[Dict[Row, GroupState]],
    aggregates: Sequence[AggregateSpec],
    count_only: bool,
) -> Dict[Row, GroupState]:
    """Pairwise reduction tree over per-shard base states.

    Each merge step checks conservation — the merged key set must be
    exactly the union of its inputs, and on the count-only path the
    total count must be the sum — so a non-associative (buggy) merge
    surfaces as a loud :class:`~repro.errors.ShardError` instead of a
    silently wrong table.  The inputs are consumed (merged in place).
    """
    if not partials:
        return {}
    expected_keys: Set[Row] = set()
    for p in partials:
        expected_keys.update(p)
    expected_total = _count_total(partials) if count_only else None
    level: List[Dict[Row, GroupState]] = list(partials)
    while len(level) > 1:
        merged_level: List[Dict[Row, GroupState]] = []
        for i in range(0, len(level) - 1, 2):
            dst, src = level[i], level[i + 1]
            union = set(dst) | set(src)
            merge_states(dst, src, aggregates, count_only)
            if set(dst) != union:
                raise ShardError(
                    "shard merge lost or invented groups "
                    f"({len(dst)} merged vs {len(union)} expected)"
                )
            merged_level.append(dst)
        if len(level) % 2:
            merged_level.append(level[-1])
        level = merged_level
    merged = level[0]
    if set(merged) != expected_keys:
        raise ShardError(
            "shard reduction dropped groups: "
            f"{len(merged)} merged vs {len(expected_keys)} expected"
        )
    if expected_total is not None:
        merged_total = _count_total((merged,))
        if merged_total != expected_total:
            raise ShardError(
                f"shard reduction lost rows: merged count {merged_total} "
                f"!= scattered count {expected_total}"
            )
    return merged


class ShardedCubeSession:
    """Scatter one table; answer many cube calls over its shards.

    Parameters
    ----------
    table:
        The (universal) table to partition.  It is projected down to
        ``columns`` (when given) before partitioning, so workers never
        hold columns no cube will touch.
    attributes:
        The cube dimensions every call will group by (used for driver
        key defaulting and validation).
    shards:
        Number of partitions; 1 short-circuits to serial execution.
    driver_key:
        Partition column; defaults to the first attribute.
    columns:
        The full set of columns workers need (dimensions, aggregate
        arguments, predicate columns).  Defaults to all of ``table``.
    mode / timeout:
        Override the environment-derived execution mode and per-task
        timeout.
    """

    def __init__(
        self,
        table: Table,
        attributes: Sequence[str],
        *,
        shards: int,
        driver_key: Optional[str] = None,
        columns: Optional[Sequence[str]] = None,
        mode: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.shards = max(1, int(shards))
        self.mode = resolve_shard_mode(mode)
        self.timeout = timeout if timeout is not None else _task_timeout()
        self.attributes = tuple(attributes)
        needed = list(
            dict.fromkeys((*self.attributes, *(columns or table.columns)))
        )
        self._table = table.project(needed)
        self.driver_key = driver_key or (
            self.attributes[0] if self.attributes else needed[0]
        )
        self._table.position(self.driver_key)
        self._plan: Optional[ShardPlan] = None
        self._scattered = False
        self._token = f"{os.getpid()}-{next(_SESSION_IDS)}"
        #: Test seam: shard indexes whose next task dies mid-run.
        self._crash_shards: Set[int] = set()

    # -- planning -----------------------------------------------------------

    @property
    def plan(self) -> ShardPlan:
        if self._plan is None:
            with phase(
                "shard.plan", rows=len(self._table), shards=self.shards
            ) as ph:
                self._plan = plan_shards(
                    self._table, self.shards, self.driver_key
                )
                ph.annotate(sizes=self._plan.sizes)
        return self._plan

    # -- the cube -----------------------------------------------------------

    def cube(
        self,
        where: Optional[Expression],
        dimensions: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> Table:
        """``cube(σ_where(table), dimensions, aggregates)``, fanned out.

        Content-identical (same rows, possibly different row order) to
        the serial :func:`repro.engine.cube.cube` over the filtered
        table at every shard count.
        """
        validate_cube_args(self._table, dimensions, aggregates)
        dims = tuple(dimensions)
        aggs = tuple(aggregates)
        with phase(
            "cube.sharded", shards=self.shards, mode=self.mode
        ) as ph:
            if self.shards <= 1:
                merged, count_only = self._serial_states(where, dims, aggs)
            else:
                try:
                    merged, count_only = self._fanout_states(
                        where, dims, aggs
                    )
                except ReproError:
                    raise
                except Exception as exc:
                    merged, count_only = self._degrade(
                        exc, where, dims, aggs
                    )
            ph.annotate(groups=len(merged))
            return cube_from_base_states(merged, dims, aggs, count_only)

    def _serial_states(
        self,
        where: Optional[Expression],
        dims: Tuple[str, ...],
        aggs: Tuple[AggregateSpec, ...],
    ) -> Tuple[Dict[Row, GroupState], bool]:
        source = self._table if where is None else self._table.filter(where)
        return base_states(source, dims, aggs)

    def _degrade(
        self,
        exc: Exception,
        where: Optional[Expression],
        dims: Tuple[str, ...],
        aggs: Tuple[AggregateSpec, ...],
    ) -> Tuple[Dict[Row, GroupState], bool]:
        """Serial fallback after an infrastructure failure."""
        discard_pool(self.shards)
        self._scattered = False
        _fallback_counter(type(exc).__name__).inc()
        warnings.warn(
            f"sharded cube execution failed ({type(exc).__name__}: {exc}); "
            "falling back to serial execution",
            RuntimeWarning,
            stacklevel=3,
        )
        return self._serial_states(where, dims, aggs)

    def _fanout_states(
        self,
        where: Optional[Expression],
        dims: Tuple[str, ...],
        aggs: Tuple[AggregateSpec, ...],
    ) -> Tuple[Dict[Row, GroupState], bool]:
        plan = self.plan
        if self.mode == MODE_INLINE:
            results = [
                run_cube_task(
                    CubeTask(
                        token=self._token,
                        shard=i,
                        dimensions=dims,
                        aggregates=aggs,
                        where=where,
                        columns=tuple(sl.columns),
                        data=tuple(tuple(c) for c in sl.column_arrays()),
                    )
                )
                for i, sl in enumerate(plan.slices)
            ]
            shard_results = [
                r for r in results if isinstance(r, ShardStates)
            ]
        else:
            shard_results = self._pool_round(plan, where, dims, aggs)
        if len(shard_results) != self.shards:
            raise ShardError(
                f"expected {self.shards} shard results, "
                f"got {len(shard_results)}"
            )
        for r in shard_results:
            _task_histogram(r.shard).observe(r.elapsed)
        count_only = shard_results[0].count_only
        merged = merge_shard_states(
            [r.states for r in shard_results], aggs, count_only
        )
        return merged, count_only

    def _pool_round(
        self,
        plan: ShardPlan,
        where: Optional[Expression],
        dims: Tuple[str, ...],
        aggs: Tuple[AggregateSpec, ...],
    ) -> List[ShardStates]:
        pool = get_pool(self.shards)
        crash = self._crash_shards
        self._crash_shards = set()

        def make_task(shard: int, with_data: bool) -> CubeTask:
            columns = data = None
            if with_data:
                columns, data = shard_table_payload(plan.slices[shard])
            return CubeTask(
                token=self._token,
                shard=shard,
                dimensions=dims,
                aggregates=aggs,
                where=where,
                columns=columns,
                data=data,
                crash_for_test=shard in crash,
            )

        scatter = not self._scattered
        futures = [
            (i, pool.submit(make_task(i, with_data=scatter)))
            for i in range(self.shards)
        ]
        results: List[ShardStates] = []
        misses: List[int] = []
        for shard, future in futures:
            result = future.result(timeout=self.timeout)
            if isinstance(result, ShardCacheMiss):
                misses.append(shard)
            elif isinstance(result, ShardStates):
                results.append(result)
            else:  # pragma: no cover - defensive
                raise ShardError(
                    f"unexpected shard result {type(result).__name__}"
                )
        if misses:
            # A restarted (or never-scattered) worker lost its slice:
            # re-scatter those shards and retry once.
            _retry_counter().inc(len(misses))
            retry = [
                (i, pool.submit(make_task(i, with_data=True)))
                for i in misses
            ]
            for shard, future in retry:
                result = future.result(timeout=self.timeout)
                if not isinstance(result, ShardStates):
                    raise ShardError(
                        f"shard {shard} failed after re-scatter"
                    )
                results.append(result)
        self._scattered = True
        results.sort(key=lambda r: r.shard)
        return results


def sharded_base_states_hook(
    shards: Optional[int] = None,
    *,
    min_rows: int = 4096,
    mode: Optional[str] = None,
) -> BaseStatesHook:
    """A :func:`repro.engine.cube.set_parallel_base_hook` implementation.

    Generic wiring for direct :func:`repro.engine.cube.cube` callers:
    tables with at least *min_rows* rows are partitioned by the first
    dimension and grouped across the pool; smaller inputs (or
    dimensionless grand totals) decline so the serial pass runs.
    """
    n = resolve_shard_count(shards)

    def hook(
        table: Table,
        dimensions: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> Optional[Tuple[Dict[Row, GroupState], bool]]:
        if n <= 1 or not dimensions or len(table) < min_rows:
            return None
        session = ShardedCubeSession(
            table, dimensions, shards=n, mode=mode
        )
        try:
            return session._fanout_states(
                None, tuple(dimensions), tuple(aggregates)
            )
        except ReproError:
            raise
        except Exception as exc:
            return session._degrade(exc, None, tuple(dimensions), tuple(aggregates))

    return hook


def install_cube_hook(
    shards: Optional[int] = None, *, min_rows: int = 4096
) -> Optional[BaseStatesHook]:
    """Install the sharded hook process-wide; returns the previous hook."""
    return set_parallel_base_hook(
        sharded_base_states_hook(shards, min_rows=min_rows)
    )


def uninstall_cube_hook() -> Optional[BaseStatesHook]:
    """Clear the engine's parallel hook; returns the previous hook."""
    return set_parallel_base_hook(None)
