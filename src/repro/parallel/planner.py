"""Shard planner: hash-partition a table into N disjoint slices.

Rows are bucketed by a deterministic content hash of one *driver key*
column, so the partition is

* **disjoint and complete** — every row lands in exactly one shard;
* **driver-key-complete** — all rows sharing a driver-key value land
  in the *same* shard, so a ``count(distinct driver)`` never sees the
  same value from two shards (partial seen-sets stay disjoint);
* **deterministic** — the assignment depends only on (value, shard
  count), never on row order, process, or interpreter hash seeds
  (``zlib.crc32`` over a canonical byte rendering, not the salted
  builtin ``hash``).

Correctness of the partition-parallel cube does *not* depend on the
key choice: base-granularity states merge exactly for every supported
aggregate (:func:`repro.engine.cube.merge_states`), so any row
partition yields identical results.  The driver key only shapes the
*cost* — disjoint distinct-sets and balanced shards.

Shard slices are **materialized** (fresh compact column lists) rather
than zero-copy selections: a selection vector pickles its entire base
column store, which would ship the whole table to every worker.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..engine.table import Table
from ..engine.types import Value, is_dummy, is_null
from ..errors import ShardError


def canonical_shard_bytes(value: Value) -> bytes:
    """A deterministic byte rendering of one driver-key value.

    Mirrors the conventions of the explanation-table content
    fingerprint: NULL/DUMMY get sentinel renderings and integral
    floats collapse to their integer form, so ``2`` and ``2.0`` bucket
    together on every backend.
    """
    if value is True or value is False:
        return b"b:1" if value else b"b:0"
    if is_null(value):
        return b"\x00N"
    if is_dummy(value):
        return b"\x00D"
    if isinstance(value, float):
        if value == value and value.is_integer():
            return b"i:%d" % int(value)
        return b"f:" + repr(value).encode("utf-8")
    if isinstance(value, int):
        return b"i:%d" % value
    return b"s:" + str(value).encode("utf-8")


def shard_of(value: Value, shards: int) -> int:
    """The shard index a driver-key value hashes to."""
    return zlib.crc32(canonical_shard_bytes(value)) % shards


@dataclass(frozen=True)
class ShardPlan:
    """A materialized hash partition of one table.

    ``slices[i]`` holds exactly the rows whose driver-key value hashes
    to bucket ``i``; empty buckets hold an empty table with the same
    columns.
    """

    driver_key: str
    shards: int
    slices: Tuple[Table, ...]
    total_rows: int

    @property
    def sizes(self) -> Tuple[int, ...]:
        return tuple(len(s) for s in self.slices)


def plan_shards(
    table: Table, shards: int, driver_key: str
) -> ShardPlan:
    """Partition *table* into *shards* slices by hashing *driver_key*.

    Raises :class:`~repro.errors.ShardError` for a non-positive shard
    count and :class:`~repro.errors.QueryError` (via the table) for an
    unknown driver column.  The completeness invariant (slice sizes sum
    to the input size) is checked before returning.
    """
    if shards < 1:
        raise ShardError(f"shard count must be >= 1, got {shards}")
    driver_col = table.column(driver_key)
    n = len(table)
    buckets: List[List[int]] = [[] for _ in range(shards)]
    if shards == 1:
        buckets[0] = list(range(n))
    else:
        for i in range(n):
            buckets[shard_of(driver_col[i], shards)].append(i)

    columns = list(table.columns)
    arrays = table.column_arrays()
    slices = []
    for indices in buckets:
        data = [[col[i] for i in indices] for col in arrays]
        slices.append(Table.from_columns(columns, data, nrows=len(indices)))

    placed = sum(len(s) for s in slices)
    if placed != n:
        raise ShardError(
            f"shard plan lost rows: placed {placed} of {n} "
            f"(driver key {driver_key!r}, {shards} shards)"
        )
    return ShardPlan(
        driver_key=driver_key,
        shards=shards,
        slices=tuple(slices),
        total_rows=n,
    )


def choose_driver_key(
    attributes: Sequence[str], argument_columns: Sequence[str]
) -> str:
    """Pick the partition column for one explanation-table build.

    When every aggregate counts the same argument column (the common
    ``count(distinct X)`` shape), that column drives the partition so
    per-shard distinct-sets are disjoint; otherwise the first relevant
    attribute does (any choice is correct — see the module docstring).
    """
    distinct_args = {c for c in argument_columns if c is not None}
    if len(distinct_args) == 1:
        return next(iter(distinct_args))
    if attributes:
        return attributes[0]
    raise ShardError("cannot choose a driver key without attributes")
