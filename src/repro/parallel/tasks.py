"""Picklable shard tasks and the worker-side entry point.

Workers are spawned (never forked), so everything crossing the process
boundary must pickle cleanly:

* :class:`CubeTask` carries plain dataclasses — aggregate specs,
  expression ASTs, column tuples.  NULL/DUMMY survive the round trip
  as process-local singletons (their ``__new__`` returns the
  interned instance on unpickle).
* Shard data travels as materialized column tuples, not
  :class:`~repro.engine.table.Table` objects, so no selection vectors
  or caches ride along.
* Results are full-granularity base states
  (:func:`repro.engine.cube.base_states`), whose accumulators are
  plain attribute objects.

Each worker keeps its **one** scattered slice in a module-global cache
keyed by ``(token, shard)``; later tasks of the same build reference
it by token instead of re-shipping the data.  A worker that restarted
(or never saw the scatter) answers :class:`ShardCacheMiss`, and the
parent retries with the data attached.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..engine.aggregates import AggregateSpec
from ..engine.cube import GroupState, base_states
from ..engine.expressions import Expression
from ..engine.table import Table
from ..engine.types import Row, Value

#: Worker-side slice cache.  One live scatter per worker: entries from
#: older tokens are evicted when a new scatter arrives.  Staleness-safe
#: by construction rather than by version guard: the key embeds the
#: scatter token, which the parent derives from the database content
#: fingerprint — a mutated database scatters under a fresh token, and
#: the parent re-ships data on ShardCacheMiss.
# reprolint: disable=RL004 (keyed by immutable scatter token; a new database version gets a new token, so entries can go unused but never stale)
_SHARD_CACHE: Dict[Tuple[str, int], Table] = {}


@dataclass(frozen=True)
class CubeTask:
    """One shard's share of one cube build.

    ``data``/``columns`` are only populated on scatter (the first task
    of a build, or a retry after a cache miss); otherwise the worker
    resolves the slice from its cache by ``(token, shard)``.
    ``crash_for_test`` makes the worker die hard mid-task — the seam
    the graceful-degradation regression test uses, carried in the
    payload because spawn workers never see parent monkeypatching.
    """

    token: str
    shard: int
    dimensions: Tuple[str, ...]
    aggregates: Tuple[AggregateSpec, ...]
    where: Optional[Expression] = None
    columns: Optional[Tuple[str, ...]] = None
    data: Optional[Tuple[Tuple[Value, ...], ...]] = None
    crash_for_test: bool = False


@dataclass(frozen=True)
class ShardCacheMiss:
    """The worker has no slice for this token; parent must re-scatter."""

    token: str
    shard: int


@dataclass(frozen=True)
class ShardStates:
    """One shard's partial cube: full-granularity base states.

    Frozen like every payload crossing the spawn boundary: the parent
    receives a pickle-copy, so a field assigned on either side would be
    silently invisible to the other.
    """

    shard: int
    states: Dict[Row, GroupState]
    count_only: bool
    rows: int
    elapsed: float


def shard_table_payload(
    table: Table,
) -> Tuple[Tuple[str, ...], Tuple[Tuple[Value, ...], ...]]:
    """A compact picklable rendering of one materialized slice."""
    return (
        tuple(table.columns),
        tuple(tuple(col) for col in table.column_arrays()),
    )


def _resolve_slice(task: CubeTask) -> Optional[Table]:
    key = (task.token, task.shard)
    table = _SHARD_CACHE.get(key)
    if table is not None:
        return table
    if task.data is None or task.columns is None:
        return None
    nrows = len(task.data[0]) if task.data else 0
    table = Table.from_columns(
        list(task.columns), [list(col) for col in task.data], nrows=nrows
    )
    for stale in [k for k in _SHARD_CACHE if k[0] != task.token]:
        del _SHARD_CACHE[stale]
    _SHARD_CACHE[key] = table
    return table


def run_cube_task(task: CubeTask) -> Union[ShardStates, ShardCacheMiss]:
    """Worker entry point: filter the slice, group at full granularity.

    Returns :class:`ShardStates` on success, :class:`ShardCacheMiss`
    when the slice is unknown.  Data-level errors (NULL grouping
    values, unknown columns) raise — the pool pickles them back to the
    parent, where they re-raise as the deterministic errors they are.
    """
    if task.crash_for_test:  # pragma: no cover - kills the process
        os._exit(13)
    start = time.perf_counter()
    table = _resolve_slice(task)
    if table is None:
        return ShardCacheMiss(task.token, task.shard)
    source = table if task.where is None else table.filter(task.where)
    states, count_only = base_states(
        source, task.dimensions, task.aggregates
    )
    return ShardStates(
        shard=task.shard,
        states=states,
        count_only=count_only,
        rows=len(source),
        elapsed=time.perf_counter() - start,
    )
