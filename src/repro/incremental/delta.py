"""Delta cubes: exact incremental maintenance of per-aggregate states.

The cold cube path (Algorithm 1) computes, per aggregate ``q_j``, the
full-granularity base states of ``σ_{w_j}(U)`` grouped by the
candidate attributes, rolls them up into all ``2^d`` grouping sets,
and joins the per-aggregate cubes into the explanation table.  The
only part of that pipeline that touches all ``n`` rows is the base
state construction — everything downstream is proportional to the
number of *distinct* attribute keys.

:class:`DeltaCubeBuilder` keeps those base states resident in an
*invertible* form, so a mutation batch can be applied by cubing only
the delta's universal rows:

* ``count_star`` — a plain int per key, the engine's own count-only
  group state; delta contributions merge through
  :func:`repro.parallel.merge_shard_states` verbatim.
* ``count`` — ``[rows, nonnull]``.
* ``count_distinct`` — ``[rows, Counter]``: a multiset of argument
  values.  The engine's set-based accumulator is *not* invertible
  (deleting one witness of a value seen twice must not drop it); the
  multiset is, exactly.
* ``sum`` — ``[rows, nonnull, total]`` over **integers only**; float
  retraction is inexact, so a float argument raises
  :class:`~repro.errors.IncrementalError` and the session falls back.

For a mutated relation ``R_i`` the delta's universal rows follow the
standard sequential delta rule for multilinear joins: process mutated
relations in schema order; for relation ``i`` join its deleted
(inserted) rows against already-processed relations at their *new*
state and not-yet-processed ones at their *old* state, then retract
(add) the resulting rows.  Retraction is conservation-checked — a
negative count, a phantom group, or a non-empty residue at rowcount
zero raises :class:`~repro.errors.IncrementalError` instead of
producing a silently wrong table.

Emission (:meth:`DeltaCubeBuilder.table`) converts the maintained
states back into engine group states and feeds them through the
*identical* cold pipeline — :func:`~repro.engine.cube.cube_from_base_states`,
:func:`~repro.engine.cube.dummy_rewrite`,
:func:`~repro.engine.joins.full_outer_join_many`,
:func:`~repro.core.cube_algorithm.finalize_explanation_table` — so a
patched table is byte-identical in content to a cold rebuild.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..engine.aggregates import AggregateSpec
from ..engine.cube import cube_from_base_states, dummy_rewrite
from ..engine.database import Database
from ..engine.joins import full_outer_join_many
from ..engine.relation import Relation
from ..engine.table import Table
from ..engine.types import NULL, Row, Value, is_null
from ..engine.universal import JoinTree, universal_table
from ..errors import IncrementalError
from ..parallel import merge_shard_states, resolve_shard_count

if TYPE_CHECKING:  # pragma: no cover - typing only (core sits above us)
    from ..core.cube_algorithm import ExplanationTable
    from ..core.numquery import AggregateQuery
    from ..core.question import UserQuestion

__all__ = ["PATCHABLE_KINDS", "DeltaApplyStats", "DeltaCubeBuilder"]

#: Aggregate kinds with an exact invertible state representation.
PATCHABLE_KINDS = frozenset({"count_star", "count", "count_distinct", "sum"})

#: A maintained group state: ``int`` for count_star, a small list for
#: the other kinds (see the module docstring).
_State = Any


@dataclass
class DeltaApplyStats:
    """What one :meth:`DeltaCubeBuilder.apply` call did."""

    relations: int = 0
    delta_rows_added: int = 0
    delta_rows_removed: int = 0
    groups_touched: int = 0
    shards: int = 1


class _MaintainedAggregate:
    """Invertible base states for one aggregate query ``q_j``."""

    def __init__(self, query: "AggregateQuery") -> None:
        kind = query.aggregate.kind
        if kind not in PATCHABLE_KINDS:
            raise IncrementalError(
                f"aggregate kind {kind!r} has no invertible state",
                reason="unsupported-aggregate",
            )
        self.query = query
        self.name = query.name
        self.kind = kind
        self.argument: Optional[str] = query.aggregate.argument
        self.states: Dict[Row, _State] = {}

    # -- state construction ----------------------------------------------

    def rebuild(self, universal: Table, attributes: Sequence[str]) -> None:
        """Recompute the states from scratch over *universal*."""
        self.states = self._states_of(
            self.query.filtered(universal), attributes
        )

    def _states_of(
        self, table: Table, attributes: Sequence[str]
    ) -> Dict[Row, _State]:
        """Group *table* (already WHERE-filtered) into invertible states."""
        key_positions = table.positions(attributes)
        arg_position = (
            table.position(self.argument) if self.argument is not None else None
        )
        states: Dict[Row, _State] = {}
        kind = self.kind
        for row in table.rows():
            key = tuple(row[i] for i in key_positions)
            if any(is_null(v) for v in key):
                raise IncrementalError(
                    f"NULL value in candidate attributes at {key!r}; the "
                    "cube build rejects NULL dimensions",
                    reason="null-dimension",
                )
            if kind == "count_star":
                states[key] = states.get(key, 0) + 1
                continue
            value = row[arg_position] if arg_position is not None else NULL
            state = states.get(key)
            if kind == "count":
                if state is None:
                    state = states[key] = [0, 0]
                state[0] += 1
                if not is_null(value):
                    state[1] += 1
            elif kind == "count_distinct":
                if state is None:
                    state = states[key] = [0, Counter()]
                state[0] += 1
                if not is_null(value):
                    state[1][value] += 1
            else:  # sum
                if state is None:
                    state = states[key] = [0, 0, 0]
                state[0] += 1
                if not is_null(value):
                    if isinstance(value, float):
                        raise IncrementalError(
                            f"SUM({self.argument}) over float {value!r}: "
                            "float retraction is not exact",
                            reason="float-sum",
                        )
                    state[1] += 1
                    state[2] += value
        return states

    # -- sharded contribution ---------------------------------------------

    def contribution(
        self, delta_universal: Table, attributes: Sequence[str], shards: int
    ) -> Dict[Row, _State]:
        """The delta's own base states, shard-merged when requested.

        Any row partition is valid input to the merge: the states form
        a commutative monoid, which is exactly what the
        conservation-checked reduction tree verifies.
        """
        filtered = self.query.filtered(delta_universal)
        if shards <= 1 or len(filtered) < 2 * shards:
            return self._states_of(filtered, attributes)
        rows = filtered.rows()
        chunk = (len(rows) + shards - 1) // shards
        partials = [
            self._states_of(
                filtered.take(range(start, min(start + chunk, len(rows)))),
                attributes,
            )
            for start in range(0, len(rows), chunk)
        ]
        if self.kind == "count_star":
            spec = self.query.aggregate
            return merge_shard_states(partials, (spec,), True)
        return _merge_partials(partials)

    # -- fold -------------------------------------------------------------

    def fold(
        self, contribution: Mapping[Row, _State], sign: int
    ) -> FrozenSet[Row]:
        """Add (+1) or retract (-1) a contribution; the touched keys."""
        states = self.states
        kind = self.kind
        for key, contrib in contribution.items():
            state = states.get(key)
            if sign > 0:
                if state is None:
                    states[key] = (
                        contrib if kind == "count_star" else list(contrib)
                    )
                    if kind == "count_distinct":
                        states[key][1] = Counter(contrib[1])
                elif kind == "count_star":
                    states[key] = state + contrib
                elif kind == "count":
                    state[0] += contrib[0]
                    state[1] += contrib[1]
                elif kind == "count_distinct":
                    state[0] += contrib[0]
                    state[1].update(contrib[1])
                else:  # sum
                    state[0] += contrib[0]
                    state[1] += contrib[1]
                    state[2] += contrib[2]
                continue
            # Retraction: every decrement is conservation-checked.
            if state is None:
                raise IncrementalError(
                    f"{self.name}: retraction of unknown group {key!r}",
                    reason="conservation",
                )
            if kind == "count_star":
                remaining = state - contrib
                self._check_nonnegative(key, remaining)
                if remaining == 0:
                    del states[key]
                else:
                    states[key] = remaining
            elif kind == "count":
                state[0] -= contrib[0]
                state[1] -= contrib[1]
                self._check_nonnegative(key, state[0], state[1])
                if state[0] == 0:
                    self._check_empty(key, state[1] == 0)
                    del states[key]
            elif kind == "count_distinct":
                state[0] -= contrib[0]
                self._check_nonnegative(key, state[0])
                counter = state[1]
                counter.subtract(contrib[1])
                for value, count in contrib[1].items():
                    left = counter[value]
                    self._check_nonnegative(key, left)
                    if left == 0:
                        del counter[value]
                if state[0] == 0:
                    self._check_empty(key, not counter)
                    del states[key]
            else:  # sum
                state[0] -= contrib[0]
                state[1] -= contrib[1]
                state[2] -= contrib[2]
                self._check_nonnegative(key, state[0], state[1])
                if state[0] == 0:
                    self._check_empty(key, state[1] == 0 and state[2] == 0)
                    del states[key]
        return frozenset(contribution)

    def _check_nonnegative(self, key: Row, *counts: int) -> None:
        if any(c < 0 for c in counts):
            raise IncrementalError(
                f"{self.name}: negative count after retraction at group "
                f"{key!r}",
                reason="conservation",
            )

    def _check_empty(self, key: Row, empty: bool) -> None:
        if not empty:
            raise IncrementalError(
                f"{self.name}: group {key!r} reached zero rows with a "
                "non-empty residual state",
                reason="conservation",
            )

    # -- emission ---------------------------------------------------------

    def emit_spec(self) -> AggregateSpec:
        """The per-aggregate cube spec, aliased exactly like the cold path."""
        source = self.query.aggregate
        return type(source)(source.kind, source.argument, f"v_{self.name}")

    def emit_states(
        self, spec: AggregateSpec
    ) -> Tuple[Dict[Row, Any], bool]:
        """Engine group states equivalent to the maintained ones.

        Fresh objects every call: the cube rollup adopts (and keeps
        merging into) the accumulators it is handed, so the maintained
        states must never be exposed directly.
        """
        if self.kind == "count_star":
            return dict(self.states), True
        out: Dict[Row, Any] = {}
        for key, state in self.states.items():
            acc = spec.make_accumulator()
            if self.kind == "count":
                acc.count = state[1]
            elif self.kind == "count_distinct":
                acc.seen = set(state[1])
            else:  # sum
                acc.total = state[2]
                acc.any = state[1] > 0
            out[key] = [acc]
        return out, False

    def grand_total(self) -> Value:
        """``q_j(D)`` read off the maintained states (Alg. 1's u_j)."""
        if self.kind == "count_star":
            return sum(self.states.values())
        if self.kind == "count":
            return sum(state[1] for state in self.states.values())
        if self.kind == "count_distinct":
            distinct: set = set()
            for state in self.states.values():
                distinct.update(state[1])
            return len(distinct)
        nonnull = sum(state[1] for state in self.states.values())
        if nonnull == 0:
            return NULL
        return sum(state[2] for state in self.states.values())


def _merge_partials(
    partials: Sequence[Dict[Row, _State]],
) -> Dict[Row, _State]:
    """Pairwise reduction over list-state partials.

    Mirrors :func:`repro.parallel.merge_shard_states` (which handles
    the count-only int form directly) for the invertible list states:
    the merged key set must be exactly the union of the inputs and the
    per-key row counts must add, so a broken merge surfaces as
    :class:`~repro.errors.IncrementalError` instead of a wrong table.
    """
    if not partials:
        return {}
    pending = list(partials)
    while len(pending) > 1:
        merged: List[Dict[Row, _State]] = []
        for i in range(0, len(pending) - 1, 2):
            merged.append(_merge_pair(pending[i], pending[i + 1]))
        if len(pending) % 2:
            merged.append(pending[-1])
        pending = merged
    return pending[0]


def _rows_of(state: _State) -> int:
    return state if isinstance(state, int) else state[0]


def _merge_pair(
    dst: Dict[Row, _State], src: Dict[Row, _State]
) -> Dict[Row, _State]:
    expected_keys = len(dst.keys() | src.keys())
    expected_rows = sum(_rows_of(s) for s in dst.values()) + sum(
        _rows_of(s) for s in src.values()
    )
    for key, state in src.items():
        mine = dst.get(key)
        if mine is None:
            dst[key] = state
        elif isinstance(state, int):
            dst[key] = mine + state
        else:
            mine[0] += state[0]
            if isinstance(state[1], Counter):
                mine[1].update(state[1])
            else:
                mine[1] += state[1]
            if len(state) > 2:
                mine[2] += state[2]
    if len(dst) != expected_keys or sum(
        _rows_of(s) for s in dst.values()
    ) != expected_rows:
        raise IncrementalError(
            "delta shard merge lost or invented groups",
            reason="conservation",
        )
    return dst


class DeltaCubeBuilder:
    """Maintains the cube base states of one explanation plan.

    Construction validates that every aggregate of the plan's
    numerical query has an invertible state (raising
    :class:`~repro.errors.IncrementalError` otherwise) and builds the
    initial states from the database's current universal table — the
    one remaining O(n) pass.  Afterwards :meth:`apply` folds net
    mutation deltas in time proportional to the delta's universal
    rows, and :meth:`table` emits an explanation table content-equal
    to a cold rebuild.
    """

    def __init__(
        self,
        database: Database,
        question: "UserQuestion",
        attributes: Sequence[str],
        *,
        support_threshold: Optional[float] = None,
        shards: Optional[int] = None,
        universal: Optional[Table] = None,
    ) -> None:
        self.database = database
        self.question = question
        self.attributes = tuple(attributes)
        self.support_threshold = support_threshold
        self.shards = resolve_shard_count(shards)
        self.join_tree = JoinTree(database.schema)
        self._aggregates = [
            _MaintainedAggregate(q) for q in question.query.aggregates
        ]
        self.reset(universal=universal)

    def reset(self, *, universal: Optional[Table] = None) -> None:
        """(Re)build all base states from the database's current state."""
        u = (
            universal
            if universal is not None
            else universal_table(self.database, self.join_tree)
        )
        for aggregate in self._aggregates:
            aggregate.rebuild(u, self.attributes)

    # -- delta application -------------------------------------------------

    def apply(
        self, net: Mapping[str, Tuple[FrozenSet[Row], FrozenSet[Row]]]
    ) -> DeltaApplyStats:
        """Fold a net delta (from :meth:`MutationLog.net_delta`) in.

        The database must already be at its *post*-mutation state (the
        log records as writes land, so this is the natural call
        order).  Raises :class:`~repro.errors.IncrementalError` on any
        exactness violation; the builder's states are then stale and
        must be :meth:`reset` before further use.
        """
        stats = DeltaApplyStats(shards=self.shards)
        mutated = [
            name
            for name in self.database.relation_names
            if name in net and (net[name][0] or net[name][1])
        ]
        if not mutated:
            return stats
        stats.relations = len(mutated)
        touched: set = set()
        # Old states of not-yet-processed mutated relations, rebuilt
        # from the live (new) state: R_old = (R_new - I) ∪ D.  The
        # first mutated relation is never read at its old state, so
        # the common single-relation delta skips the O(n) copy.
        old_states: Dict[str, Relation] = {}
        for name in mutated[1:]:
            ins, dels = net[name]
            old = self.database.relation(name).without(ins)
            old.insert_many(dels)
            old_states[name] = old
        for index, name in enumerate(mutated):
            ins, dels = net[name]
            others: Dict[str, Relation] = {}
            for other in self.database.relation_names:
                if other == name:
                    continue
                if other in mutated and mutated.index(other) > index:
                    others[other] = old_states[other]
                else:
                    others[other] = self.database.relation(other)
            if dels:
                delta_u = self._delta_universal(name, dels, others)
                stats.delta_rows_removed += len(delta_u)
                touched |= self._fold_all(delta_u, -1)
            if ins:
                delta_u = self._delta_universal(name, ins, others)
                stats.delta_rows_added += len(delta_u)
                touched |= self._fold_all(delta_u, +1)
        stats.groups_touched = len(touched)
        return stats

    def _delta_universal(
        self,
        name: str,
        rows: FrozenSet[Row],
        others: Mapping[str, Relation],
    ) -> Table:
        """``U`` of the database with relation *name* := *rows* only."""
        temp = Database(self.database.schema)
        temp.relations[name] = Relation(
            self.database.relation(name).schema, rows
        )
        for other, relation in others.items():
            temp.relations[other] = relation
        return universal_table(temp, self.join_tree)

    def _fold_all(self, delta_universal: Table, sign: int) -> FrozenSet[Row]:
        touched: set = set()
        for aggregate in self._aggregates:
            contribution = aggregate.contribution(
                delta_universal, self.attributes, self.shards
            )
            touched |= aggregate.fold(contribution, sign)
        return frozenset(touched)

    # -- emission ----------------------------------------------------------

    def aggregate_values(self) -> Dict[str, Value]:
        """All maintained ``q_j(D)`` grand totals."""
        return {a.name: a.grand_total() for a in self._aggregates}

    def table(self) -> "ExplanationTable":
        """The explanation table for the maintained state.

        Runs the identical downstream pipeline as the cold build
        (rollup, dummy rewrite, m-way outer join, finalize), so the
        result's content fingerprint matches a cold rebuild exactly.
        """
        # Upward import: core sits above incremental in the layering.
        from ..core.cube_algorithm import finalize_explanation_table

        attributes = list(self.attributes)
        cubes = []
        for aggregate in self._aggregates:
            spec = aggregate.emit_spec()
            states, count_only = aggregate.emit_states(spec)
            cube_table = cube_from_base_states(
                states, attributes, (spec,), count_only
            )
            cubes.append(dummy_rewrite(cube_table, attributes))
        joined = full_outer_join_many(cubes, attributes, fill=NULL)
        return finalize_explanation_table(
            joined,
            self.question,
            self.attributes,
            self.aggregate_values(),
            support_threshold=self.support_threshold,
        )
