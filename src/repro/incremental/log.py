"""The mutation log: typed capture of insert/delete batches.

A :class:`MutationLog` subscribes to every relation of a
:class:`~repro.engine.database.Database` (via the
:meth:`Relation.subscribe <repro.engine.relation.Relation.subscribe>`
API) and records each effective mutation as a :class:`MutationBatch` —
the rows actually added and actually removed, in call order.  The log
is the bridge between writes and incremental maintenance:

* :meth:`MutationLog.net_delta` collapses the batch sequence into one
  disjoint (inserted, deleted) pair per relation — the input shape the
  :class:`~repro.incremental.delta.DeltaCubeBuilder` consumes.
* :meth:`MutationLog.chain_key` is a stable digest of (base
  fingerprint, ordered batches): the *(base fingerprint, delta chain)*
  identity under which patched cache entries are addressed.
* :meth:`MutationLog.checkpoint` rebases the log after a successful
  refresh, so the next delta chain starts from the patched state.

Because subscribers only ever see *effective* batches (re-inserting a
present row or deleting an absent one is invisible), replaying the log
on the base state reconstructs the live state exactly — the property
the conservation checks in the delta builder lean on.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..engine.database import Database, _row_digest
from ..engine.relation import Relation
from ..engine.types import Row, Value, is_null

__all__ = ["MutationBatch", "MutationLog"]


def _canonical_value(value: Value) -> str:
    """A canonical text form of one engine value for hashing."""
    if is_null(value):
        return "n:"
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value!r}"
    return f"s:{value}"


def _canonical_row(row: Row) -> str:
    return "\x1f".join(_canonical_value(v) for v in row)


def _canonical_rows(rows: Tuple[Row, ...]) -> str:
    return "\x1e".join(sorted(_canonical_row(r) for r in rows))


@dataclass(frozen=True)
class MutationBatch:
    """One effective mutation batch against a single relation.

    ``seq`` orders batches across all relations of the database;
    ``inserted``/``deleted`` hold the rows a single mutating call
    actually added/removed (never no-ops, possibly both non-empty for
    ``update_where``).
    """

    seq: int
    relation: str
    inserted: Tuple[Row, ...] = field(default_factory=tuple)
    deleted: Tuple[Row, ...] = field(default_factory=tuple)

    def canonical(self) -> str:
        """A stable text rendering used by :meth:`MutationLog.chain_key`."""
        return "\x1d".join(
            (
                self.relation,
                "+" + _canonical_rows(self.inserted),
                "-" + _canonical_rows(self.deleted),
            )
        )


class MutationLog:
    """An ordered record of mutations against one database.

    The log attaches on construction (pass ``attach=False`` to defer)
    and should be detached with :meth:`detach` — or used as a context
    manager — when the owner goes away, so the relations drop their
    subscriber references.
    """

    def __init__(self, database: Database, *, attach: bool = True) -> None:
        self.database = database
        self._batches: List[MutationBatch] = []
        self._seq = 0
        self._attached = False
        self._base_fingerprint = database.content_fingerprint()
        # Per-relation sorted list of row digests, kept in lockstep
        # with the relations via _record (bisect insert/remove per
        # mutated row).  Checkpointing rebases the fingerprint from
        # these lists in O(changed rows + hash) instead of re-hashing
        # every row of the database — the difference between a warm
        # refresh and a fingerprint-dominated one at natality scale.
        self._digests: Dict[str, List[bytes]] = {
            name: sorted(
                _row_digest(row)
                for row in database.relations[name].row_list()
            )
            for name in database.relation_names
        }
        if attach:
            self.attach()

    # -- lifecycle -------------------------------------------------------

    def attach(self) -> None:
        """Start recording (idempotent)."""
        if self._attached:
            return
        for relation in self.database.relations.values():
            relation.subscribe(self._record)
        self._attached = True

    def detach(self) -> None:
        """Stop recording (idempotent); recorded batches are kept."""
        if not self._attached:
            return
        for relation in self.database.relations.values():
            relation.unsubscribe(self._record)
        self._attached = False

    def __enter__(self) -> "MutationLog":
        self.attach()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    def _record(
        self, relation: Relation, inserted: Tuple[Row, ...], deleted: Tuple[Row, ...]
    ) -> None:
        self._seq += 1
        self._batches.append(
            MutationBatch(self._seq, relation.name, inserted, deleted)
        )
        digests = self._digests[relation.name]
        for row in deleted:
            digest = _row_digest(row)
            index = bisect.bisect_left(digests, digest)
            if index < len(digests) and digests[index] == digest:
                del digests[index]
        for row in inserted:
            bisect.insort(digests, _row_digest(row))

    # -- inspection ------------------------------------------------------

    @property
    def base_fingerprint(self) -> str:
        """The database content fingerprint the current chain starts from."""
        return self._base_fingerprint

    @property
    def batches(self) -> Tuple[MutationBatch, ...]:
        """The recorded batches since the last checkpoint, in order."""
        return tuple(self._batches)

    def __len__(self) -> int:
        return len(self._batches)

    @property
    def is_empty(self) -> bool:
        """True iff no mutation happened since the last checkpoint."""
        return not self._batches

    def rows_inserted(self) -> int:
        """Total rows inserted across all recorded batches."""
        return sum(len(b.inserted) for b in self._batches)

    def rows_deleted(self) -> int:
        """Total rows deleted across all recorded batches."""
        return sum(len(b.deleted) for b in self._batches)

    # -- delta algebra ---------------------------------------------------

    def net_delta(self) -> Dict[str, Tuple[FrozenSet[Row], FrozenSet[Row]]]:
        """Per-relation ``(inserted, deleted)`` with cancellation applied.

        Replays the batch sequence so an insert-then-delete (or
        delete-then-reinsert) of the same row nets out to nothing.  The
        two returned sets are disjoint: exactly ``R_new - R_old`` and
        ``R_old - R_new``.  Relations with an empty net change are
        omitted.
        """
        net: Dict[str, Tuple[Set[Row], Set[Row]]] = {}
        for batch in self._batches:
            ins, dels = net.setdefault(batch.relation, (set(), set()))
            for row in batch.deleted:
                if row in ins:
                    ins.discard(row)
                else:
                    dels.add(row)
            for row in batch.inserted:
                if row in dels:
                    dels.discard(row)
                else:
                    ins.add(row)
        return {
            name: (frozenset(ins), frozenset(dels))
            for name, (ins, dels) in net.items()
            if ins or dels
        }

    def chain_key(self) -> str:
        """SHA-256 digest of (base fingerprint, ordered delta chain).

        Two logs with the same base state and the same mutation
        sequence produce the same key; this is the cache identity for
        incrementally patched explanation tables.
        """
        h = hashlib.sha256()
        h.update(self._base_fingerprint.encode("utf-8"))
        for batch in self._batches:
            h.update(b"\x1c")
            h.update(batch.canonical().encode("utf-8"))
        return h.hexdigest()

    # -- rebasing --------------------------------------------------------

    def checkpoint(self) -> str:
        """Drop recorded batches and rebase on the current database state.

        Returns the new base fingerprint.  Called after a successful
        refresh (patch or full rebuild), so subsequent mutations start
        a fresh delta chain.  The fingerprint is rebased from the
        maintained digest counters — O(changed rows), not O(database) —
        and primed into the database's own memo so the next
        :meth:`~repro.engine.database.Database.content_fingerprint`
        call is free.
        """
        self._batches.clear()
        self._base_fingerprint = self.database.fingerprint_from_digests(
            self._digests
        )
        self.database.prime_fingerprint(self._base_fingerprint)
        return self._base_fingerprint
