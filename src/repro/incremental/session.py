"""The :class:`IncrementalSession`: patched-table lifecycle management.

A session owns, for one explanation plan (database, question,
attributes, method), the triple of

* a :class:`~repro.incremental.log.MutationLog` recording writes,
* a :class:`~repro.incremental.delta.DeltaCubeBuilder` holding the
  plan's invertible cube states (when the plan is patchable), and
* the current :class:`~repro.core.cube_algorithm.ExplanationTable`.

:meth:`IncrementalSession.refresh` brings the table up to date with
the database: on the additive path it folds the net delta into the
cube states and re-emits (cost proportional to the delta, not the
data); on any non-additive plan or exactness violation it **falls
back to a full recompute** — a :class:`RuntimeWarning` plus a
``repro_incremental_fallbacks_total{reason}`` counter increment, never
a wrong table.  Successful patches increment
``repro_incremental_patches_total``.

Patchability is gated by the static additivity verdicts
(:mod:`repro.analysis`): every aggregate must hold an *exact-cube*
verdict and an invertible state kind.  Plans containing
``count(distinct ...)`` have data-dependent verdicts (footnote 11 of
the paper), so they are re-certified against the mutated instance on
every refresh; a verdict flip falls back with reason
``verdict-changed``.

Verification: conservation checks run on every patch (see
:mod:`repro.incremental.delta`); setting ``verify="full"`` — or the
``REPRO_INCREMENTAL_VERIFY=full`` environment variable — additionally
cross-checks each patched table's content fingerprint against a cold
rebuild and falls back (reason ``verify``) on mismatch.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence

from ..engine.database import Database
from ..obs import get_registry
from ..obs.metrics import MetricsRegistry
from ..errors import IncrementalError
from .delta import PATCHABLE_KINDS, DeltaCubeBuilder
from .log import MutationLog

if TYPE_CHECKING:  # pragma: no cover - typing only (core sits above us)
    from ..core.cube_algorithm import ExplanationTable
    from ..core.explainer import Explainer
    from ..core.question import UserQuestion

__all__ = ["RefreshStats", "IncrementalSession"]

#: Fallback reason labels (the ``reason`` label values of
#: ``repro_incremental_fallbacks_total``).
REASON_NEEDS_ITERATIVE = "needs-iterative"
REASON_UNSUPPORTED = "unsupported-aggregate"
REASON_METHOD = "method"
REASON_VERDICT_CHANGED = "verdict-changed"
REASON_CONSERVATION = "conservation"
REASON_FLOAT_SUM = "float-sum"
REASON_NULL_DIMENSION = "null-dimension"
REASON_VERIFY = "verify"


@dataclass
class RefreshStats:
    """What one :meth:`IncrementalSession.refresh` call did.

    ``strategy`` is ``"patched"`` (delta applied to the cube states),
    ``"rebuilt"`` (full recompute: the fallback path, with ``reason``
    set), ``"initial"`` (first build), or ``"noop"`` (nothing
    pending).
    """

    strategy: str
    reason: Optional[str] = None
    batches: int = 0
    rows_inserted: int = 0
    rows_deleted: int = 0
    relations: int = 0
    delta_rows_added: int = 0
    delta_rows_removed: int = 0
    groups_touched: int = 0
    shards: int = 1
    chain_key: str = ""
    base_fingerprint: str = ""
    fingerprint: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready rendering (service payloads, CLI output)."""
        return asdict(self)


class IncrementalSession:
    """Keeps one explanation table in sync with a mutating database.

    Not thread-safe on its own; concurrent writers must serialize
    refreshes externally (the service layer holds a per-dataset lock).
    Call :meth:`close` — or use the session as a context manager — so
    the mutation log detaches its relation subscriptions.
    """

    def __init__(
        self,
        database: Database,
        question: "UserQuestion",
        attributes: Sequence[str],
        *,
        method: str = "auto",
        support_threshold: Optional[float] = None,
        shards: Optional[int] = None,
        strategy: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        verify: Optional[str] = None,
    ) -> None:
        self.database = database
        self.question = question
        self.attributes = tuple(attributes)
        self.method = method
        self.support_threshold = support_threshold
        self.shards = shards
        #: Intervention strategy for full rebuilds (``None`` defers to
        #: ``REPRO_STRATEGY``).  Patching never runs program P, so this
        #: only matters on the fallback path — where any strategy
        #: produces a byte-identical table.
        self.strategy = strategy
        self._metrics = metrics if metrics is not None else get_registry()
        if verify is None:
            verify = os.environ.get("REPRO_INCREMENTAL_VERIFY", "off")
        self.verify = verify or "off"
        self.log = MutationLog(database)
        self._builder: Optional[DeltaCubeBuilder] = None
        self._static_reason: Optional[str] = None
        self._table: Optional["ExplanationTable"] = None
        self._has_count_distinct = any(
            q.aggregate.kind == "count_distinct"
            for q in question.query.aggregates
        )
        self.patches = 0
        self.fallbacks = 0
        self.last_stats: Optional[RefreshStats] = None
        self._initialize()

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Detach the mutation log (idempotent)."""
        self.log.detach()

    def __enter__(self) -> "IncrementalSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- construction helpers --------------------------------------------

    def _make_explainer(self) -> "Explainer":
        # Upward import: core sits above incremental in the layering.
        from ..core.explainer import Explainer

        return Explainer(
            self.database,
            self.question,
            self.attributes,
            support_threshold=self.support_threshold,
            shards=self.shards,
            strategy=self.strategy,
        )

    def _initialize(self) -> None:
        explainer = self._make_explainer()
        resolved = explainer.resolve_method(self.method)
        if resolved != "cube":
            self._static_reason = (
                REASON_METHOD
                if self.method not in ("cube", "auto")
                else REASON_NEEDS_ITERATIVE
            )
        elif not explainer.certificate().additivity.all_exact_cube:
            self._static_reason = REASON_NEEDS_ITERATIVE
        elif not all(
            q.aggregate.kind in PATCHABLE_KINDS
            for q in self.question.query.aggregates
        ):
            self._static_reason = REASON_UNSUPPORTED
        if self._static_reason is None:
            try:
                self._builder = DeltaCubeBuilder(
                    self.database,
                    self.question,
                    self.attributes,
                    support_threshold=self.support_threshold,
                    shards=self.shards,
                    universal=explainer.universal,
                )
                self._table = self._builder.table()
            except IncrementalError as exc:
                self._disarm(exc.reason)
        if self._table is None:
            self._table = explainer.explanation_table(self.method)
        self.last_stats = RefreshStats(
            strategy="initial",
            base_fingerprint=self.log.base_fingerprint,
            fingerprint=self.log.base_fingerprint,
        )

    def _disarm(self, reason: str) -> None:
        """Give up on patching this plan; future refreshes rebuild."""
        self._builder = None
        self._static_reason = reason

    # -- properties ------------------------------------------------------

    @property
    def patchable(self) -> bool:
        """True while the plan has live invertible cube states."""
        return self._builder is not None

    @property
    def pending(self) -> int:
        """Mutation batches recorded since the last refresh."""
        return len(self.log)

    # -- the main entry points -------------------------------------------

    def table(self) -> "ExplanationTable":
        """The up-to-date explanation table (refreshing if needed)."""
        if not self.log.is_empty:
            self.refresh()
        assert self._table is not None
        return self._table

    def refresh(self) -> RefreshStats:
        """Bring the table up to date with the database.

        Returns the stats of what happened; also stored as
        :attr:`last_stats`.
        """
        stats = RefreshStats(
            strategy="noop",
            batches=len(self.log),
            rows_inserted=self.log.rows_inserted(),
            rows_deleted=self.log.rows_deleted(),
            chain_key=self.log.chain_key(),
            base_fingerprint=self.log.base_fingerprint,
        )
        if self.log.is_empty:
            stats.fingerprint = self.log.base_fingerprint
            self.last_stats = stats
            return stats
        if self._builder is None:
            return self._fallback(
                self._static_reason or REASON_METHOD, stats
            )
        if self._has_count_distinct and not self._recertify():
            return self._fallback(REASON_VERDICT_CHANGED, stats)
        net = self.log.net_delta()
        try:
            applied = self._builder.apply(net)
            table = self._builder.table()
        except IncrementalError as exc:
            return self._fallback(exc.reason, stats)
        stats.relations = applied.relations
        stats.delta_rows_added = applied.delta_rows_added
        stats.delta_rows_removed = applied.delta_rows_removed
        stats.groups_touched = applied.groups_touched
        stats.shards = applied.shards
        if self.verify == "full":
            cold = self._make_explainer().explanation_table(self.method)
            if cold.content_fingerprint() != table.content_fingerprint():
                return self._fallback(REASON_VERIFY, stats, table=cold)
        stats.strategy = "patched"
        self._table = table
        self.patches += 1
        self._metrics.counter(
            "repro_incremental_patches_total",
            help="Explanation tables patched in place from a mutation delta.",
        ).inc()
        stats.fingerprint = self.log.checkpoint()
        self.last_stats = stats
        return stats

    def _recertify(self) -> bool:
        """Re-run the data-dependent additivity check (footnote 11).

        Only called for plans containing ``count(distinct ...)`` —
        their exact-cube verdicts depend on the instance, so a
        mutation can flip them.
        """
        # Upward import: analysis sits above incremental in the layering.
        from ..analysis.additivity import certify_additivity
        from ..engine.universal import universal_table

        certificate = certify_additivity(
            self.database.schema,
            self.question.query,
            universal=universal_table(self.database),
        )
        return certificate.all_exact_cube

    def _fallback(
        self,
        reason: str,
        stats: RefreshStats,
        table: Optional["ExplanationTable"] = None,
    ) -> RefreshStats:
        """Full recompute with a warning and a labelled counter bump."""
        self._metrics.counter(
            "repro_incremental_fallbacks_total",
            labels={"reason": reason},
            help="Incremental refreshes that fell back to a full recompute.",
        ).inc()
        warnings.warn(
            f"incremental refresh fell back to full recompute "
            f"(reason: {reason})",
            RuntimeWarning,
            stacklevel=3,
        )
        explainer = self._make_explainer()
        self._table = (
            table
            if table is not None
            else explainer.explanation_table(self.method)
        )
        if self._builder is not None:
            # Re-arm patching from the fresh state; a rebuild failure
            # (persistent floats / NULL dimensions) disarms for good.
            try:
                self._builder.reset(universal=explainer.universal)
            except IncrementalError as exc:
                self._disarm(exc.reason)
        self.fallbacks += 1
        stats.strategy = "rebuilt"
        stats.reason = reason
        stats.fingerprint = self.log.checkpoint()
        self.last_stats = stats
        return stats
