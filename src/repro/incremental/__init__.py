"""Incremental explanation maintenance (delta cubes).

The cold pipeline computes explanation tables over a frozen instance;
this package keeps them warm under writes.  Three pieces:

* :class:`MutationLog` — typed capture of insert/delete batches per
  relation, via the :meth:`Relation.subscribe
  <repro.engine.relation.Relation.subscribe>` API.
* :class:`DeltaCubeBuilder` — invertible per-key cube states that
  fold a net delta in time proportional to the delta's universal
  rows, sharing the conservation-checked merge algebra of
  :mod:`repro.parallel`.
* :class:`IncrementalSession` — the patched-state lifecycle: refresh,
  verification, and graceful fallback to full recompute (warning +
  ``repro_incremental_fallbacks_total{reason}``) on any non-additive
  plan or exactness violation.

Layering: ``engine < parallel < incremental < core`` — this package
is stdlib-only and imports :mod:`repro.core` / :mod:`repro.analysis`
only inside functions (table finalization, certification, cold
fallback builds).  See ``docs/incremental.md`` for the delta
protocol, exactness conditions, and fallback semantics.
"""

from .delta import PATCHABLE_KINDS, DeltaApplyStats, DeltaCubeBuilder
from .log import MutationBatch, MutationLog
from .session import IncrementalSession, RefreshStats

__all__ = [
    "PATCHABLE_KINDS",
    "DeltaApplyStats",
    "DeltaCubeBuilder",
    "MutationBatch",
    "MutationLog",
    "IncrementalSession",
    "RefreshStats",
]
