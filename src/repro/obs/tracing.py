"""Hierarchical tracing spans for the explanation pipeline.

A :class:`Span` is one timed phase — universal-table construction, one
grouping set of the rollup cube, one program-P iteration — with wall
and CPU durations and a structured payload (row counts, rule deltas).
Spans nest: the per-thread span stack makes every ``phase(...)`` block
opened inside another block a child of it, so a traced run yields a
phase *tree*.

Two cost tiers, so instrumented hot paths stay cheap by default:

* Always on — every :func:`phase` block records one sample into the
  ``repro_phase_seconds{phase=...}`` histogram of the default metrics
  registry.  That is a clock read and a histogram insert; no objects
  are retained.
* Opt-in — after ``get_tracer().enable()``, each block also builds a
  :class:`Span` in the tracer's tree, which ``repro ... --profile``
  and :class:`~repro.obs.recorder.TraceRecorder` render.

The tracer is thread-safe: each thread grows its own branch (spans
opened on a thread attach to that thread's innermost open span), and
finished root spans from all threads land in one shared list.  A
``max_spans`` cap bounds memory on runaway trees; drops are counted,
never raised.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from .metrics import Histogram, get_registry

__all__ = [
    "Span",
    "Phase",
    "Tracer",
    "get_tracer",
    "phase",
    "traced",
    "render_tree",
]

F = TypeVar("F", bound=Callable[..., Any])

#: Family name of the always-on per-phase duration histogram.
PHASE_SECONDS = "repro_phase_seconds"

Payload = Dict[str, object]


class Span:
    """One finished or in-flight phase in a trace tree."""

    __slots__ = (
        "name",
        "payload",
        "children",
        "started_at",
        "wall_seconds",
        "cpu_seconds",
    )

    def __init__(self, name: str, payload: Optional[Payload] = None) -> None:
        self.name = name
        self.payload: Payload = dict(payload) if payload else {}
        self.children: List[Span] = []
        self.started_at = time.time()
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0

    def annotate(self, **payload: object) -> None:
        self.payload.update(payload)

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable rendering of the subtree."""
        out: Dict[str, object] = {
            "name": self.name,
            "wall_s": self.wall_seconds,
            "cpu_s": self.cpu_seconds,
        }
        if self.payload:
            out["payload"] = dict(self.payload)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, wall={self.wall_seconds:.6f}, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Collects span trees; disabled (and free) until :meth:`enable`."""

    def __init__(self, max_spans: int = 100_000) -> None:
        self._enabled = False
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: List[Span] = []
        self._span_count = 0
        self._dropped = 0
        self.max_spans = max_spans

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def dropped(self) -> int:
        """Spans not recorded because ``max_spans`` was reached."""
        return self._dropped

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop all collected spans (keeps the enabled flag)."""
        with self._lock:
            self._roots = []
            self._span_count = 0
            self._dropped = 0
        self._local = threading.local()

    def roots(self) -> Tuple[Span, ...]:
        """Finished root spans, in completion order."""
        with self._lock:
            return tuple(self._roots)

    def spans(self) -> Iterator[Span]:
        """All finished spans (every tree, preorder)."""
        for root in self.roots():
            for span in root.walk():
                yield span

    # -- span bookkeeping (called by Phase) -----------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _open(self, name: str, payload: Payload) -> Optional[Span]:
        if not self._enabled:
            return None
        with self._lock:
            if self._span_count >= self.max_spans:
                self._dropped += 1
                return None
            self._span_count += 1
        span = Span(name, payload)
        self._stack().append(span)
        return span

    def _close(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced exit
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)


class Phase:
    """Context manager timing one phase (span + duration histogram)."""

    __slots__ = ("name", "_tracer", "_histogram", "_span", "_wall0", "_cpu0")

    def __init__(
        self,
        name: str,
        tracer: "Tracer",
        histogram: Optional[Histogram],
        payload: Payload,
    ) -> None:
        self.name = name
        self._tracer = tracer
        self._histogram = histogram
        self._span = tracer._open(name, payload)
        self._wall0 = 0.0
        self._cpu0 = 0.0

    @property
    def span(self) -> Optional[Span]:
        """The live span (``None`` while tracing is disabled)."""
        return self._span

    def annotate(self, **payload: object) -> None:
        """Attach payload fields; a no-op while tracing is disabled."""
        if self._span is not None:
            self._span.annotate(**payload)

    def __enter__(self) -> "Phase":
        self._wall0 = time.perf_counter()
        # The CPU clock is only reported on spans; skip the extra clock
        # read on the (default) disabled path.
        if self._span is not None:
            self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall = time.perf_counter() - self._wall0
        if self._histogram is not None:
            self._histogram.observe(wall)
        span = self._span
        if span is not None:
            span.wall_seconds = wall
            span.cpu_seconds = time.process_time() - self._cpu0
            self._tracer._close(span)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer used by :func:`phase`."""
    return _TRACER


# Per-name histogram cache: phase() runs on hot paths, so skip the
# registry's label-key construction + lock after the first call.
_PHASE_HISTOGRAMS: Dict[str, Histogram] = {}


def _phase_histogram(name: str) -> Histogram:
    histogram = _PHASE_HISTOGRAMS.get(name)
    if histogram is None:
        histogram = get_registry().histogram(
            PHASE_SECONDS,
            labels={"phase": name},
            help="Wall-clock seconds spent per pipeline phase.",
        )
        _PHASE_HISTOGRAMS[name] = histogram
    return histogram


def phase(name: str, **payload: object) -> Phase:
    """Open a timed phase block on the default tracer and registry.

    The wall duration always lands in the default registry's
    ``repro_phase_seconds{phase=name}`` histogram; a span is built only
    while the default tracer is enabled.
    """
    return Phase(name, _TRACER, _phase_histogram(name), payload)


def traced(name: Optional[str] = None) -> Callable[[F], F]:
    """Decorator form of :func:`phase` (phase name defaults to
    ``module.qualname`` of the wrapped callable)."""

    def decorate(func: F) -> F:
        phase_name = name or f"{func.__module__}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with phase(phase_name):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


# -- rendering ----------------------------------------------------------


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}µs"


def _format_payload(payload: Payload) -> str:
    if not payload:
        return ""
    parts = ", ".join(f"{k}={v}" for k, v in payload.items())
    return f"  [{parts}]"


def _render_span(span: Span, prefix: str, is_last: bool, out: List[str]) -> None:
    connector = "`- " if is_last else "|- "
    out.append(
        f"{prefix}{connector}{span.name}  "
        f"wall {_format_seconds(span.wall_seconds)}  "
        f"cpu {_format_seconds(span.cpu_seconds)}"
        f"{_format_payload(span.payload)}"
    )
    child_prefix = prefix + ("   " if is_last else "|  ")
    for i, child in enumerate(span.children):
        _render_span(child, child_prefix, i == len(span.children) - 1, out)


def render_tree(roots: Tuple[Span, ...]) -> str:
    """An ASCII phase tree of *roots* (one block per root span)."""
    out: List[str] = []
    for root in roots:
        out.append(
            f"{root.name}  wall {_format_seconds(root.wall_seconds)}  "
            f"cpu {_format_seconds(root.cpu_seconds)}"
            f"{_format_payload(root.payload)}"
        )
        for i, child in enumerate(root.children):
            _render_span(child, "", i == len(root.children) - 1, out)
    return "\n".join(out)
