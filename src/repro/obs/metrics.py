"""A process-local metrics registry with Prometheus text export.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically non-decreasing count.
* :class:`Gauge` — a value that can go up and down.
* :class:`Histogram` — fixed-bucket distribution with ``_bucket``,
  ``_sum`` and ``_count`` series on export.

Instruments are owned by a :class:`MetricsRegistry` and addressed by a
*family name* plus an optional label set; ``registry.counter(name,
labels=...)`` is get-or-create, so call sites never need module-level
wiring.  :func:`MetricsRegistry.render_prometheus` emits the standard
text exposition format (``text/plain; version=0.0.4``).

Everything is thread-safe: each instrument carries its own lock, and
the registry serializes family creation.  The module-level
:func:`get_registry` default registry collects pipeline-wide phase
histograms; components that need isolated counts (one service
instance per test, for example) create private registries.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "render_prometheus",
]

LabelKey = Tuple[Tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): 100µs .. 30s, roughly log-spaced.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelKey:
    if not labels:
        return ()
    items = []
    for name, value in labels.items():
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid metric label name: {name!r}")
        items.append((name, str(value)))
    return tuple(sorted(items))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(key: LabelKey, extra: LabelKey = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically non-decreasing counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can be set, incremented, and decremented."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket histogram (cumulative buckets on export only)."""

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted ascending")
        self._lock = threading.Lock()
        self.buckets = bounds
        # one slot per finite bound plus the implicit +Inf overflow slot
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Tuple[Tuple[int, ...], float, int]:
        """``(per-bucket counts incl. +Inf, sum, count)`` atomically."""
        with self._lock:
            return tuple(self._counts), self._sum, self._count


Instrument = Union[Counter, Gauge, Histogram]


class _Family:
    """All instruments sharing one metric name, keyed by label set."""

    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.series: Dict[LabelKey, Instrument] = {}


class MetricsRegistry:
    """A named collection of metric families with text export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- instrument factories (get-or-create) ---------------------------

    def counter(
        self,
        name: str,
        *,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Counter:
        instrument = self._series(name, "counter", labels, help)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(
        self,
        name: str,
        *,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> Gauge:
        instrument = self._series(name, "gauge", labels, help)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        *,
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        instrument = self._series(name, "histogram", labels, help, buckets)
        assert isinstance(instrument, Histogram)
        return instrument

    def _series(
        self,
        name: str,
        kind: str,
        labels: Optional[Mapping[str, str]],
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Instrument:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}"
                )
            if help_text and not family.help:
                family.help = help_text
            instrument = family.series.get(key)
            if instrument is None:
                if kind == "counter":
                    instrument = Counter()
                elif kind == "gauge":
                    instrument = Gauge()
                else:
                    instrument = Histogram(buckets)
                family.series[key] = instrument
            return instrument

    # -- introspection --------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flat ``name{label="v"} -> value`` map (histograms: ``_count``)."""
        out: Dict[str, float] = {}
        for family, key, instrument in self._iter_series():
            label_text = _render_labels(key)
            if isinstance(instrument, Histogram):
                _, total, count = instrument.snapshot()
                out[f"{family.name}_count{label_text}"] = float(count)
                out[f"{family.name}_sum{label_text}"] = total
            else:
                out[f"{family.name}{label_text}"] = instrument.value
        return out

    def _iter_series(self) -> Iterator[Tuple[_Family, LabelKey, Instrument]]:
        with self._lock:
            families = [
                (family, list(family.series.items()))
                for family in self._families.values()
            ]
        for family, series in families:
            for key, instrument in series:
                yield family, key, instrument

    # -- Prometheus text exposition -------------------------------------

    def render_prometheus(self) -> str:
        """The registry in the text exposition format (version 0.0.4)."""
        lines = []
        with self._lock:
            families = [
                (family, list(family.series.items()))
                for family in sorted(
                    self._families.values(), key=lambda f: f.name
                )
            ]
        for family, series in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, instrument in sorted(series, key=lambda item: item[0]):
                if isinstance(instrument, Histogram):
                    counts, total, count = instrument.snapshot()
                    cumulative = 0
                    for bound, bucket_count in zip(
                        instrument.buckets, counts
                    ):
                        cumulative += bucket_count
                        le = (("le", _format_value(bound)),)
                        lines.append(
                            f"{family.name}_bucket"
                            f"{_render_labels(key, le)} {cumulative}"
                        )
                    cumulative += counts[-1]
                    inf = (("le", "+Inf"),)
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_render_labels(key, inf)} {cumulative}"
                    )
                    lines.append(
                        f"{family.name}_sum{_render_labels(key)} "
                        f"{_format_value(total)}"
                    )
                    lines.append(
                        f"{family.name}_count{_render_labels(key)} {count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_render_labels(key)} "
                        f"{_format_value(instrument.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (engine/core phase metrics)."""
    return _DEFAULT_REGISTRY


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Concatenate the exposition of *registries* (default one if none).

    Families must not repeat across the rendered registries; callers
    keep that property by namespacing (the default registry owns
    ``repro_phase_*`` / ``repro_program_p_*``, service registries own
    request/cache/compute families).
    """
    if not registries:
        registries = (_DEFAULT_REGISTRY,)
    return "".join(r.render_prometheus() for r in registries)
