"""Turn traced runs into structured benchmark payloads.

:class:`TraceRecorder` is the bridge between the tracer and the
``BENCH_*.json`` artifacts the benchmark suite emits: it enables span
collection for the duration of a ``with`` block, then summarizes the
captured trees into JSON-ready phase breakdowns::

    with TraceRecorder() as rec:
        build_explanation_table(db, question, attributes)
    json_record(kind="phase_breakdown", **rec.breakdown())

The recorder restores the tracer's previous enabled/disabled state on
exit, so wrapping a region inside an already-profiled run is safe.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .tracing import Span, Tracer, get_tracer

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Collect spans for a ``with`` block and export phase summaries."""

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._tracer = tracer if tracer is not None else get_tracer()
        self._was_enabled = False
        self._roots: Tuple[Span, ...] = ()
        self._dropped = 0

    def __enter__(self) -> "TraceRecorder":
        self._was_enabled = self._tracer.enabled
        self._tracer.reset()
        self._tracer.enable()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._roots = self._tracer.roots()
        self._dropped = self._tracer.dropped
        if not self._was_enabled:
            self._tracer.disable()
        self._tracer.reset()

    @property
    def roots(self) -> Tuple[Span, ...]:
        """Root spans captured by the most recent ``with`` block."""
        return self._roots

    def spans(self) -> List[Span]:
        """All captured spans, preorder across trees."""
        out: List[Span] = []
        for root in self._roots:
            out.extend(root.walk())
        return out

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-phase totals: ``{name: {count, wall_s, cpu_s, max_wall_s}}``."""
        totals: Dict[str, Dict[str, float]] = {}
        for span in self.spans():
            entry = totals.setdefault(
                span.name,
                {"count": 0.0, "wall_s": 0.0, "cpu_s": 0.0, "max_wall_s": 0.0},
            )
            entry["count"] += 1
            entry["wall_s"] += span.wall_seconds
            entry["cpu_s"] += span.cpu_seconds
            entry["max_wall_s"] = max(entry["max_wall_s"], span.wall_seconds)
        return totals

    def breakdown(self) -> Dict[str, object]:
        """A JSON-ready payload: aggregated phases plus full trees."""
        return {
            "phases": self.aggregate(),
            "trace": [root.to_dict() for root in self._roots],
            "dropped_spans": self._dropped,
        }
