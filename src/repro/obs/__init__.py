"""Observability primitives for the explanation pipeline.

This package sits *below* :mod:`repro.engine` in the import layering:
it depends on nothing but the standard library, and every other layer
(engine, core, analysis, backends, service, CLI, benchmarks) may
depend on it.  It provides three building blocks:

* :mod:`repro.obs.metrics` — a process-wide metrics registry with
  counters, gauges, and fixed-bucket histograms, exportable in the
  Prometheus text exposition format.
* :mod:`repro.obs.tracing` — hierarchical tracing spans with wall/CPU
  timings and structured payloads (row counts, iteration deltas).
  Span *construction* is opt-in (``get_tracer().enable()``); the
  cheap per-phase duration histograms are always recorded.
* :mod:`repro.obs.recorder` — :class:`TraceRecorder`, which benchmarks
  use to turn a traced run into structured ``BENCH_*.json`` phase
  breakdowns.

The one-line integration point for pipeline code is :func:`phase`::

    from ..obs import phase

    with phase("universal_table", relations=len(schema)) as ph:
        table = build(...)
        ph.annotate(rows=len(table))

which records a ``repro_phase_seconds{phase="universal_table"}``
histogram sample unconditionally and, when tracing is enabled, a span
in the current trace tree.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_prometheus,
)
from .recorder import TraceRecorder
from .tracing import Phase, Span, Tracer, get_tracer, phase, render_tree, traced

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Phase",
    "Span",
    "TraceRecorder",
    "Tracer",
    "get_registry",
    "get_tracer",
    "phase",
    "render_prometheus",
    "render_tree",
    "traced",
]
