"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch a single base class.  The
hierarchy mirrors the package layout: engine-level problems (schema,
integrity, query construction) and explanation-framework problems
(invalid questions, non-additive queries fed to the cube algorithm).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema definition is malformed.

    Raised for duplicate relation or attribute names, foreign keys that
    reference unknown relations/attributes, missing primary keys, or a
    cyclic schema where an acyclic one is required.
    """


class IntegrityError(ReproError):
    """A database instance violates its declared schema.

    Raised for rows of the wrong arity, duplicate primary keys, or
    dangling foreign-key references.
    """


class QueryError(ReproError):
    """A query or expression is malformed.

    Raised for references to unknown attributes, type mismatches inside
    expressions, and aggregates applied to non-existent columns.
    """


class ExplanationError(ReproError):
    """A problem in the explanation framework itself.

    Raised for malformed candidate predicates, invalid user questions,
    or attempts to run the cube algorithm on a numerical query that is
    not intervention-additive without explicitly opting out of the
    safety check.
    """


class NotAdditiveError(ExplanationError):
    """The numerical query is not intervention-additive (Definition 4.2).

    The data-cube algorithm (Algorithm 1) computes
    ``q(D - delta_phi)`` as ``q(D) - q(D_phi)``; this identity only
    holds for intervention-additive queries.  Callers may either fall
    back to the naive per-explanation evaluation or request the unsound
    approximation explicitly.
    """


class ShardError(ReproError):
    """The partition-parallel executor produced an inconsistent state.

    Raised when a shard plan violates its invariants (a lost or
    duplicated row) or when the associativity-checked reduction tree
    detects that merging partial cube states lost or invented groups.
    Infrastructure failures (a crashed worker, a timeout) do *not*
    raise this — they degrade gracefully to serial execution.
    """


class IncrementalError(ReproError):
    """An incremental patch cannot be applied exactly.

    Raised by :mod:`repro.incremental` when a delta violates the
    conditions for exact maintenance — a retraction of an unknown
    group, a negative count after retraction (conservation failure), a
    float-valued SUM (retraction is not exact under floating point), or
    a NULL dimension value that the cold cube build would also reject.
    :class:`~repro.incremental.IncrementalSession` catches this and
    falls back to a full recompute; the ``reason`` attribute labels the
    ``repro_incremental_fallbacks_total`` counter.
    """

    def __init__(self, message: str, *, reason: str = "conservation") -> None:
        super().__init__(message)
        self.reason = reason


class ConvergenceError(ReproError):
    """The fixpoint loop exceeded its iteration budget.

    Program ``P`` (Section 3) is guaranteed to converge within ``n``
    iterations; exceeding the budget indicates an internal bug, so this
    error should never surface in normal use.
    """


class AnalysisInvariantError(ReproError):
    """A statically certified property was violated at runtime.

    The :mod:`repro.analysis` package certifies facts about a plan
    before execution — e.g. the iteration bound of program P derived
    from Propositions 3.4/3.5/3.10/3.11.  If execution contradicts a
    certified fact, either the analyzer or the engine has a bug; the
    violation is raised loudly instead of being papered over.
    """
