"""Predicate/attribute linter with machine-readable ``RS…`` codes.

Static well-formedness checks over the candidate attributes and the
numerical query, against the schema only (no data).  Every finding is
a :class:`Diagnostic` with a stable code:

=========  ========  ================================================================
code       severity  meaning
=========  ========  ================================================================
``RS001``  error     candidate attribute unknown in the schema
``RS002``  error     unqualified candidate attribute is ambiguous
``RS003``  warning   candidate attribute listed more than once
``RS004``  warning   primary-key attribute used as explanation dimension
``RS005``  warning   foreign-key attribute used as explanation dimension
``RS006``  error     predicate constant outside the column's declared type
``RS007``  error     aggregate argument/WHERE references an unknown column
``RS008``  warning   closure-index strategy cannot pay off on this schema
``RS009``  warning   cyclic FK join graph: only the n - 1 fallback bound is certified
=========  ========  ================================================================

RS004/RS005 are warnings, not errors: key columns *can* be explanation
dimensions (the paper's count-distinct examples group by keys), but
near-unique dimensions explode the cube and usually indicate a
mis-specified attribute list.  RS008 fires when the schema has no
back-and-forth foreign keys *and* a tree-shaped join graph:
Proposition 3.5 then bounds program P at 2 iterations, so the FK
cascade closure index (:mod:`repro.engine.closure`) has nothing to
accelerate and the certificate's ``recommended_strategy`` stays
``"fixpoint"`` — requesting ``strategy="closure"`` is sound (tables
stay byte identical) but pays the index build for no iteration
savings.  RS009 fires for cyclic join graphs
(``require_acyclic=False`` schemas such as TPC-H): the sharp
convergence propositions assume a join tree, so the certificate
honestly falls back to Proposition 3.4's n − 1 bound.

The table above and its twin in ``docs/analysis.md`` are rendered from
:data:`RS_CODES` (``render_code_table``); reprolint's RL008 fails CI if
either drifts from the registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.numquery import NumericalQuery
from ..engine.expressions import (
    And,
    Arithmetic,
    Col,
    Comparison,
    Const,
    Expression,
    Not,
    Or,
    Unary,
)
from ..engine.schema import DatabaseSchema
from ..errors import SchemaError

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: The diagnostic registry — single source of truth for every RS code.
#: The docstring table above and the table in ``docs/analysis.md`` are
#: rendered from this tuple (``render_code_table``) and checked against
#: it by reprolint's RL008; a pure literal so static tools can read it.
RS_CODES: Tuple[Tuple[str, str, str], ...] = (
    ("RS001", "error", "candidate attribute unknown in the schema"),
    ("RS002", "error", "unqualified candidate attribute is ambiguous"),
    ("RS003", "warning", "candidate attribute listed more than once"),
    ("RS004", "warning", "primary-key attribute used as explanation dimension"),
    ("RS005", "warning", "foreign-key attribute used as explanation dimension"),
    ("RS006", "error", "predicate constant outside the column's declared type"),
    ("RS007", "error", "aggregate argument/WHERE references an unknown column"),
    ("RS008", "warning", "closure-index strategy cannot pay off on this schema"),
    ("RS009", "warning", "cyclic FK join graph: only the n - 1 fallback bound is certified"),
)

_SEVERITIES: Dict[str, str] = {code: severity for code, severity, _ in RS_CODES}


def render_code_table(fmt: str = "markdown") -> str:
    """The RS code table, rendered from :data:`RS_CODES`.

    ``markdown`` is the ``docs/analysis.md`` flavour; ``rst`` is the
    module-docstring flavour.  Paste the output verbatim — RL008
    compares both documents against the registry row by row.
    """
    if fmt == "markdown":
        lines = ["| code | severity | meaning |", "| --- | --- | --- |"]
        lines += [f"| {c} | {s} | {m} |" for c, s, m in RS_CODES]
        return "\n".join(lines)
    if fmt == "rst":
        width = max(len(m) for _, _, m in RS_CODES)
        bar = f"=========  ========  {'=' * width}"
        lines = [bar, "code       severity  meaning", bar]
        lines += [f"``{c}``  {s.ljust(8)}  {m}".rstrip() for c, s, m in RS_CODES]
        lines.append(bar)
        return "\n".join(lines)
    raise ValueError(f"unknown table format {fmt!r}")


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding."""

    code: str
    severity: str  # "error" | "warning"
    message: str
    #: What the finding is about: an attribute spec, a qualified
    #: column, or an aggregate name.
    subject: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "subject": self.subject,
        }

    def __str__(self) -> str:
        return f"{self.code} {self.severity} [{self.subject}]: {self.message}"


def _diag(code: str, message: str, subject: str) -> Diagnostic:
    """A :class:`Diagnostic` whose severity comes from the registry.

    Keeping severity out of the construction sites means a code's
    severity can only ever be what :data:`RS_CODES` declares.
    """
    return Diagnostic(code, _SEVERITIES[code], message, subject)


def _dtype_accepts(dtype: str, value: object) -> bool:
    """Can *value* appear in a column declared as *dtype*?

    ``bool`` is deliberately not an ``int``/``float`` here even though
    Python says otherwise — comparing a flag column to ``1`` is almost
    always a typo for ``True``.
    """
    if dtype == "any":
        return True
    if dtype == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if dtype == "float":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if dtype == "str":
        return isinstance(value, str)
    if dtype == "bool":
        return isinstance(value, bool)
    return True


def _column_comparisons(
    expr: Expression,
) -> Iterator[Tuple[str, object]]:
    """Yield (column, constant) pairs from column-vs-constant comparisons."""
    if isinstance(expr, Comparison):
        if isinstance(expr.left, Col) and isinstance(expr.right, Const):
            yield expr.left.name, expr.right.value
        elif isinstance(expr.left, Const) and isinstance(expr.right, Col):
            yield expr.right.name, expr.left.value
        else:
            yield from _column_comparisons(expr.left)
            yield from _column_comparisons(expr.right)
    elif isinstance(expr, Arithmetic):
        yield from _column_comparisons(expr.left)
        yield from _column_comparisons(expr.right)
    elif isinstance(expr, Unary):
        yield from _column_comparisons(expr.operand)
    elif isinstance(expr, Not):
        yield from _column_comparisons(expr.operand)
    elif isinstance(expr, (And, Or)):
        for part in expr.operands:
            yield from _column_comparisons(part)


def _resolve(
    schema: DatabaseSchema, spec: str
) -> Optional[Tuple[str, str]]:
    """``schema.qualified`` without the exception control flow."""
    try:
        return schema.qualified(spec)
    except SchemaError:
        return None


def _lint_attribute(
    schema: DatabaseSchema, spec: str
) -> Iterator[Diagnostic]:
    resolved = _resolve(schema, spec)
    if resolved is None:
        if "." not in spec and len(schema.attribute_owner(spec)) > 1:
            owners = ", ".join(schema.attribute_owner(spec))
            yield _diag(
                "RS002",
                f"attribute {spec!r} is ambiguous (declared by {owners}); "
                "qualify it as Relation.attribute",
                spec,
            )
        else:
            yield _diag(
                "RS001",
                f"attribute {spec!r} does not resolve to any relation "
                "column in the schema",
                spec,
            )
        return
    rel_name, attr = resolved
    relation = schema.relation(rel_name)
    if attr in relation.primary_key:
        yield _diag(
            "RS004",
            f"{rel_name}.{attr} is (part of) the primary key of "
            f"{rel_name}; key columns make near-unique explanation "
            "dimensions and explode the cube",
            spec,
        )
    for fk in schema.foreign_keys_from(rel_name):
        if attr in fk.source_attrs:
            yield _diag(
                "RS005",
                f"{rel_name}.{attr} is a foreign-key attribute ({fk}); "
                "explanations over raw key values rarely generalize",
                spec,
            )
            break


def _universal_column_exists(schema: DatabaseSchema, column: str) -> bool:
    """Does *column* name a column of the universal table?

    Universal columns are qualified ``Relation.attr``; bare names are
    accepted when unambiguous (mirroring ``DatabaseSchema.qualified``).
    """
    return _resolve(schema, column) is not None


def _declared_dtype(schema: DatabaseSchema, column: str) -> Optional[str]:
    resolved = _resolve(schema, column)
    if resolved is None:
        return None
    rel_name, attr = resolved
    for attribute in schema.relation(rel_name).attributes:
        if attribute.name == attr:
            return attribute.dtype
    return None


def _lint_query(
    schema: DatabaseSchema, query: NumericalQuery
) -> Iterator[Diagnostic]:
    for q in query.aggregates:
        argument = q.aggregate.argument
        if argument is not None and not _universal_column_exists(
            schema, argument
        ):
            yield _diag(
                "RS007",
                f"aggregate {q.name} argument {argument!r} is not a "
                "universal-table column",
                q.name,
            )
        if q.where is None:
            continue
        for column in q.where.columns():
            if not _universal_column_exists(schema, column):
                yield _diag(
                    "RS007",
                    f"aggregate {q.name} WHERE references unknown column "
                    f"{column!r}",
                    q.name,
                )
        for column, constant in _column_comparisons(q.where):
            dtype = _declared_dtype(schema, column)
            if dtype is None:
                continue  # unknown column already reported as RS007
            if not _dtype_accepts(dtype, constant):
                yield _diag(
                    "RS006",
                    f"aggregate {q.name} compares {column} (declared "
                    f"{dtype!r}) against {constant!r} "
                    f"({type(constant).__name__}); the predicate can "
                    "never hold",
                    column,
                )


def lint_plan(
    schema: DatabaseSchema,
    query: Optional[NumericalQuery],
    attributes: Sequence[str],
) -> Tuple[Diagnostic, ...]:
    """All diagnostics for one (schema, query, attributes) plan.

    Errors come first, then warnings, preserving discovery order
    within each severity.
    """
    findings: List[Diagnostic] = []
    seen: Dict[str, int] = {}
    for spec in attributes:
        seen[spec] = seen.get(spec, 0) + 1
        if seen[spec] == 2:  # report once per duplicated spec
            findings.append(
                _diag(
                    "RS003",
                    f"attribute {spec!r} listed more than once; duplicate "
                    "dimensions add no explanations",
                    spec,
                )
            )
    for spec in dict.fromkeys(attributes):
        findings.extend(_lint_attribute(schema, spec))
    if query is not None:
        findings.extend(_lint_query(schema, query))
    if not schema.back_and_forth_keys and schema.join_graph_is_tree:
        findings.append(
            _diag(
                "RS008",
                "schema has no back-and-forth foreign keys, so program P "
                "is certified to converge within 2 iterations (Prop 3.5); "
                "the closure-index strategy cannot apply profitably here "
                "— recommended strategy is 'fixpoint'",
                "schema",
            )
        )
    if not schema.join_graph_is_tree:
        findings.append(
            _diag(
                "RS009",
                "the foreign-key join graph is cyclic "
                "(require_acyclic=False schema), so the sharp convergence "
                "propositions (3.5/3.10/3.11) do not apply and only the "
                "Proposition 3.4 n - 1 fallback bound is certified; "
                "expect the fixpoint to stop far earlier, but no tighter "
                "promise is proven",
                "schema",
            )
        )
    errors = [d for d in findings if d.severity == SEVERITY_ERROR]
    warnings = [d for d in findings if d.severity != SEVERITY_ERROR]
    return tuple(errors + warnings)
