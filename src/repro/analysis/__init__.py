"""``repro.analysis`` — static plan analysis and certification.

The paper's correctness and performance guarantees are *static*
properties of the schema and query:

* convergence of program P (Propositions 3.4, 3.5, 3.10, 3.11 and the
  Example 3.7 lower bound) depends only on the foreign-key graph;
* exactness of Algorithm 1's cube (Section 4.1 sufficient conditions,
  Corollary 3.6, footnote 11) depends on the aggregate kinds and the
  back-and-forth keys;
* well-formedness of the candidate attributes and predicates depends
  only on the schema.

This package decides those properties *before* any data is touched and
packages the result as a :class:`~repro.analysis.analyzer.PlanCertificate`:
the engine picks the fast path because it is certified sound, instead
of trying it and falling back; the iterative fixpoint asserts the
certified iteration bound as a runtime invariant; the CLI
(``repro analyze``) and the service (``POST /v1/analyze``) render the
certificate for operators.

See ``docs/analysis.md`` for the proposition-to-rule mapping.
"""

from .additivity import (
    INDEXED_KINDS,
    VERDICT_EXACT_CUBE,
    VERDICT_NEEDS_ITERATIVE,
    VERDICT_UNSUPPORTED,
    AdditivityCertificate,
    AggregateVerdict,
    certify_additivity,
)
from .analyzer import PlanCertificate, analyze_plan
from .fkgraph import (
    RULE_PROP_34,
    RULE_PROP_35,
    RULE_PROP_310,
    RULE_PROP_311,
    BoundRule,
    ConvergenceCertificate,
    EdgeReport,
    certify_convergence,
)
from .linter import Diagnostic, lint_plan

__all__ = [
    "AdditivityCertificate",
    "AggregateVerdict",
    "BoundRule",
    "ConvergenceCertificate",
    "Diagnostic",
    "EdgeReport",
    "INDEXED_KINDS",
    "PlanCertificate",
    "RULE_PROP_310",
    "RULE_PROP_311",
    "RULE_PROP_34",
    "RULE_PROP_35",
    "VERDICT_EXACT_CUBE",
    "VERDICT_NEEDS_ITERATIVE",
    "VERDICT_UNSUPPORTED",
    "analyze_plan",
    "certify_additivity",
    "certify_convergence",
    "lint_plan",
]
