"""Per-aggregate additivity certification (Definition 4.2, Section 4.1).

Algorithm 1 reads intervention degrees off the data cube only when the
query is *intervention-additive*: ``q(D − Δ^φ) = q(D) − q(D_φ)``.  The
paper's two sufficient conditions split into a purely static part (the
aggregate kind and the presence of back-and-forth keys) and one
data-dependent condition (footnote 11's "unique source tuple per
universal row").  :func:`certify_additivity` evaluates the static part
always and the data condition when a database (or universal table) is
supplied, yielding one of three verdicts per aggregate:

* ``exact-cube`` — the additive identity is certified; Algorithm 1's
  cube produces exact intervention degrees;
* ``needs-iterative`` — additivity does not hold (or cannot be
  certified statically); exact degrees require running program P per
  candidate (the ``indexed``/``exact`` methods);
* ``unsupported`` — the aggregate kind has no additivity rule at all
  (avg, min, max, …); only the per-candidate ``exact`` ground-truth
  method applies.

The verdict reasons are the single source of truth:
:func:`repro.core.additivity.analyze_additivity` delegates here, so the
strings surfaced by ``NotAdditiveError`` and this certificate are
identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..core.numquery import AggregateQuery, NumericalQuery
from ..engine.schema import DatabaseSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.database import Database
    from ..engine.table import Table

VERDICT_EXACT_CUBE = "exact-cube"
VERDICT_NEEDS_ITERATIVE = "needs-iterative"
VERDICT_UNSUPPORTED = "unsupported"

#: Aggregate kinds the indexed (posting-list) evaluator can compute.
INDEXED_KINDS = frozenset({"count_star", "count", "count_distinct"})

#: Kinds covered by the Corollary 3.6 argument (additive over disjoint
#: unions of universal rows).
_ADDITIVE_KINDS = ("count_star", "count", "sum")


@dataclass(frozen=True)
class AggregateVerdict:
    """Verdict for one aggregate query ``q_j``."""

    name: str
    kind: str
    verdict: str  # one of the VERDICT_* constants
    reason: str
    #: The paper artifact backing the verdict, when one applies.
    rule: Optional[str] = None
    #: Unresolved data-level condition (footnote 11) in prose, set when
    #: the verdict hinges on data that was not supplied.
    data_condition: Optional[str] = None

    @property
    def additive(self) -> bool:
        """True iff the cube identity is certified for this aggregate."""
        return self.verdict == VERDICT_EXACT_CUBE

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "verdict": self.verdict,
            "reason": self.reason,
            "rule": self.rule,
            "data_condition": self.data_condition,
        }


@dataclass(frozen=True)
class AdditivityCertificate:
    """Verdicts for every aggregate plus the method they certify."""

    verdicts: Tuple[AggregateVerdict, ...]
    #: True when the data-level conditions were checked against an
    #: actual universal table (instance-specific certificate).
    data_resolved: bool

    @property
    def all_exact_cube(self) -> bool:
        """True iff Algorithm 1's cube is certified exact for Q."""
        return all(v.verdict == VERDICT_EXACT_CUBE for v in self.verdicts)

    @property
    def recommended_method(self) -> str:
        """The fastest evaluation method this certificate deems sound.

        ``cube`` when every aggregate is certified additive; otherwise
        ``indexed`` when the posting-list exact evaluator supports all
        aggregate kinds; otherwise the per-candidate ``exact`` method.
        """
        if self.all_exact_cube:
            return "cube"
        if all(v.kind in INDEXED_KINDS for v in self.verdicts):
            return "indexed"
        return "exact"

    def verdict_for(self, name: str) -> AggregateVerdict:
        """Look up the verdict for aggregate *name*."""
        for v in self.verdicts:
            if v.name == name:
                return v
        raise KeyError(name)

    def to_dict(self) -> Dict[str, object]:
        return {
            "verdicts": [v.to_dict() for v in self.verdicts],
            "data_resolved": self.data_resolved,
            "all_exact_cube": self.all_exact_cube,
            "recommended_method": self.recommended_method,
        }


def _unqualify(column: str) -> Tuple[Optional[str], str]:
    """Split a possibly-qualified column into (relation, attribute)."""
    if "." in column:
        rel, attr = column.split(".", 1)
        return rel, attr
    return None, column


def _relation_unique_in_universal(
    schema: DatabaseSchema, universal: "Table", relation: str
) -> bool:
    """True iff each tuple of *relation* occurs in exactly one U row."""
    rs = schema.relation(relation)
    qualified = [f"{relation}.{a}" for a in rs.attribute_names]
    bag = universal.project(qualified, distinct=False)
    return len(bag) == len(set(bag.rows()))


def _where_columns_outside(
    q: AggregateQuery, rel_name: str
) -> Tuple[str, ...]:
    """WHERE columns of *q* that do not live on the counted relation."""
    if q.where is None:
        return ()
    outside = [
        column
        for column in q.where.columns()
        if _unqualify(column)[0] != rel_name
    ]
    return tuple(dict.fromkeys(outside))


def _key_determines_columns(
    universal: "Table", key: str, columns: Tuple[str, ...]
) -> bool:
    """True iff *key* functionally determines *columns* in the universal
    table — each key value co-occurs with exactly one combination of
    the column values."""
    if not columns:
        return True
    keyed = universal.project([key], distinct=True)
    extended = universal.project([key, *columns], distinct=True)
    return len(extended) == len(keyed)


def _where_fd_failure(
    q: AggregateQuery, rel_name: str, attr: str, outside: Tuple[str, ...]
) -> AggregateVerdict:
    """The verdict when the WHERE predicate breaks footnote 11.

    A WHERE column outside the counted relation that the counted key
    does not determine lets one key value appear both inside and
    outside ``σ_w(U)``; removing a universal row then changes the
    count by a non-additive amount, so the cube identity fails.
    """
    return AggregateVerdict(
        q.name,
        q.aggregate.kind,
        VERDICT_NEEDS_ITERATIVE,
        f"count(distinct {rel_name}.{attr}) filters on "
        f"{', '.join(outside)}, which the counted key does not "
        f"functionally determine: one {attr} value can satisfy the "
        "WHERE predicate through some universal rows but not others, "
        "so per-group counts are not additive under intervention "
        "(footnote 11)",
        rule="footnote 11",
    )


def _certify_count_distinct(
    schema: DatabaseSchema,
    q: AggregateQuery,
    universal: Optional["Table"],
) -> AggregateVerdict:
    kind = q.aggregate.kind
    rel_name, attr = _unqualify(q.aggregate.argument or "")
    if rel_name is None or not schema.has_relation(rel_name):
        return AggregateVerdict(
            q.name,
            kind,
            VERDICT_NEEDS_ITERATIVE,
            f"count(distinct {q.aggregate.argument}) argument is not a "
            "qualified relation column",
        )
    target = schema.relation(rel_name)
    if tuple(target.primary_key) != (attr,):
        return AggregateVerdict(
            q.name,
            kind,
            VERDICT_NEEDS_ITERATIVE,
            f"count(distinct {rel_name}.{attr}) does not count "
            f"{rel_name}'s primary key {target.primary_key}",
        )
    counted_key = f"{rel_name}.{attr}"
    outside = _where_columns_outside(q, rel_name)
    fd_condition = (
        f"; and {counted_key} functionally determines the WHERE "
        f"columns {', '.join(outside)}"
        if outside
        else ""
    )
    # Footnote 11 condition: a b&f key into rel_name whose source
    # relation is unique per universal row — and the aggregate's WHERE
    # predicate must not discriminate between universal rows sharing a
    # counted-key value (the key functionally determines every WHERE
    # column outside the counted relation).
    for fk in schema.back_and_forth_keys:
        if fk.target != rel_name:
            continue
        condition = (
            f"every universal row contains a unique {fk.source} tuple "
            f"(footnote 11){fd_condition}"
        )
        if universal is None:
            return AggregateVerdict(
                q.name,
                kind,
                VERDICT_NEEDS_ITERATIVE,
                f"count(distinct {rel_name}.{attr}) with back-and-forth "
                f"key {fk} is additive only under a data condition that "
                "was not checked (no database supplied)",
                rule="footnote 11",
                data_condition=condition,
            )
        if not _key_determines_columns(universal, counted_key, outside):
            return _where_fd_failure(q, rel_name, attr, outside)
        if _relation_unique_in_universal(schema, universal, fk.source):
            return AggregateVerdict(
                q.name,
                kind,
                VERDICT_EXACT_CUBE,
                f"count(distinct {rel_name}.{attr}) with back-and-forth "
                f"key {fk} and unique {fk.source} tuples per universal "
                "row (footnote 11)",
                rule="footnote 11",
            )
        return AggregateVerdict(
            q.name,
            kind,
            VERDICT_NEEDS_ITERATIVE,
            f"back-and-forth key {fk} found but {fk.source} tuples "
            "repeat across universal rows",
            rule="footnote 11",
        )
    if not schema.has_back_and_forth:
        condition = (
            f"each {rel_name} tuple occurs in exactly one universal "
            f"row{fd_condition}"
        )
        if universal is None:
            return AggregateVerdict(
                q.name,
                kind,
                VERDICT_NEEDS_ITERATIVE,
                f"count(distinct {rel_name}.{attr}) with no back-and-forth "
                "keys is additive only under a data condition that was "
                "not checked (no database supplied)",
                rule="footnote 11",
                data_condition=condition,
            )
        if not _key_determines_columns(universal, counted_key, outside):
            return _where_fd_failure(q, rel_name, attr, outside)
        if _relation_unique_in_universal(schema, universal, rel_name):
            return AggregateVerdict(
                q.name,
                kind,
                VERDICT_EXACT_CUBE,
                f"count(distinct {rel_name}.{attr}) with no back-and-forth "
                f"keys and unique {rel_name} tuples per universal row",
                rule="footnote 11",
            )
    return AggregateVerdict(
        q.name,
        kind,
        VERDICT_NEEDS_ITERATIVE,
        f"no back-and-forth key into {rel_name} and {rel_name} tuples "
        "are not unique per universal row",
    )


def _certify_aggregate(
    schema: DatabaseSchema,
    q: AggregateQuery,
    universal: Optional["Table"],
) -> AggregateVerdict:
    kind = q.aggregate.kind
    if kind in _ADDITIVE_KINDS:
        if not schema.has_back_and_forth:
            return AggregateVerdict(
                q.name,
                kind,
                VERDICT_EXACT_CUBE,
                f"{kind} with no back-and-forth foreign keys "
                "(Corollary 3.6: U(D-Δ) = σ_¬φ(U))",
                rule="Corollary 3.6",
            )
        return AggregateVerdict(
            q.name,
            kind,
            VERDICT_NEEDS_ITERATIVE,
            f"{kind} is not additive in the presence of back-and-forth "
            "foreign keys (Section 4.1)",
            rule="Section 4.1",
        )
    if kind == "count_distinct":
        return _certify_count_distinct(schema, q, universal)
    return AggregateVerdict(
        q.name,
        kind,
        VERDICT_UNSUPPORTED,
        f"aggregate kind {kind!r} is never intervention-additive",
    )


def certify_additivity(
    schema: DatabaseSchema,
    query: NumericalQuery,
    *,
    database: Optional["Database"] = None,
    universal: Optional["Table"] = None,
) -> AdditivityCertificate:
    """Certify each aggregate of *query* as exact-cube / needs-iterative
    / unsupported.

    Purely static when neither *database* nor *universal* is given; the
    footnote-11 data condition is then reported as unresolved (and the
    verdict stays conservative).  Passing either resolves it against
    the actual instance, matching
    :func:`repro.core.additivity.analyze_additivity` exactly.

    The universal table is materialized lazily — only when some
    ``count(distinct …)`` aggregate actually needs the data condition.
    """
    u = universal
    needs_data = any(
        q.aggregate.kind == "count_distinct" for q in query.aggregates
    )
    if u is None and database is not None and needs_data:
        from ..engine.universal import universal_table

        u = universal_table(database)
    verdicts = tuple(
        _certify_aggregate(schema, q, u) for q in query.aggregates
    )
    return AdditivityCertificate(
        verdicts=verdicts,
        data_resolved=u is not None or not needs_data,
    )
