"""Foreign-key graph classification and convergence certification.

Program P (Section 3) deletes tuples in rounds: seed deletions, then
semijoin-reduction cascades along standard foreign keys, then backward
cascades along back-and-forth keys, until quiescence.  How many rounds
that takes is a *static* property of the foreign-key graph, pinned down
by four results in the paper:

=============  =====================================  ==============
rule           precondition                           bound
=============  =====================================  ==============
``prop-3.5``   no back-and-forth keys                 ``2``
``prop-3.11``  ≤ 1 b&f key per source relation        ``2s + 2``
``prop-3.10``  all b&f keys share one target          ``2q + 2 = 4``
``prop-3.4``   always (n = rows in the database)      ``n − 1``
=============  =====================================  ==============

The three sharp rules additionally assume the paper's standing setting:
the foreign-key join graph is a *tree*, so rule (ii) is the two-pass
Yannakakis reduction.  On a cyclic join graph
(``require_acyclic=False`` schemas such as TPC-H's partsupp diamond)
the reduction iterates to a pairwise-consistency fixpoint whose round
count is not covered by those proofs, so only the unconditional
Proposition 3.4 fallback is certified — an honest n − 1, not a
special-cased 2.

``prop-3.10`` as stated in the paper is a *data-level* bound (q is the
maximum causal length over simple paths in the data causal graph from
the seed tuples).  Statically we can only certify it in the special
case where every back-and-forth key points into the same target
relation: solid edges of the data causal graph are containment edges
and containment is transitive, so once a simple path takes a dotted
edge into a tuple ``m`` of that target relation, every tuple reached
afterwards lies in universal rows that all contain ``m`` — a second
dotted edge would have to re-enter ``m`` itself, which a simple path
cannot do.  Hence q ≤ 1 for *every* database over such a schema and
the bound ``2·1 + 2 = 4`` holds unconditionally.  With two or more
distinct b&f target relations the dotted edges can interact (the
Example 3.7 chain alternates between them Θ(n) times), so no static
q exists and we fall back to Proposition 3.4.

:func:`certify_convergence` evaluates every applicable rule, keeps all
of them in the certificate for transparency, and selects the tightest
as *the* certified bound.  The bound counts **productive** iterations
(rounds that delete at least one tuple), matching
``InterventionResult.iterations``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.causality import SchemaCausalGraph
from ..engine.schema import DatabaseSchema

#: Rule identifiers, in tie-break order (first wins on equal bounds).
RULE_PROP_35 = "prop-3.5"
RULE_PROP_311 = "prop-3.11"
RULE_PROP_310 = "prop-3.10"
RULE_PROP_34 = "prop-3.4"


@dataclass(frozen=True)
class EdgeReport:
    """One classified foreign-key edge of the schema graph."""

    source: str
    target: str
    attributes: Tuple[str, ...]
    kind: str  # "standard" | "back-and-forth"
    rendered: str  # the ForeignKey.__str__ arrow form

    def to_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "target": self.target,
            "attributes": list(self.attributes),
            "kind": self.kind,
            "rendered": self.rendered,
        }


@dataclass(frozen=True)
class BoundRule:
    """One convergence rule evaluated against the schema."""

    rule: str  # RULE_PROP_* identifier
    proposition: str  # e.g. "Proposition 3.11"
    applicable: bool
    #: Concrete bound when computable; None for inapplicable rules and
    #: for the symbolic n−1 bound with no database at hand.
    bound: Optional[int]
    #: Human-readable bound even when no concrete number exists
    #: (e.g. "n - 1").
    bound_expression: str
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "proposition": self.proposition,
            "applicable": self.applicable,
            "bound": self.bound,
            "bound_expression": self.bound_expression,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class ConvergenceCertificate:
    """The FK-graph classification plus the selected iteration bound."""

    edges: Tuple[EdgeReport, ...]
    #: Number of back-and-forth keys (the paper's s).
    back_and_forth_count: int
    #: True when b&f keys target ≥ 2 distinct relations, letting their
    #: dotted edges interact along a simple path (no static q exists).
    interaction_cycle: bool
    #: Is the undirected FK join graph a tree?  The sharp rules
    #: (3.5/3.10/3.11) are only certified when it is.
    join_graph_is_tree: bool
    #: Schema-level causal length per seed relation: the max number of
    #: dotted edges on a simple relation path starting there; None
    #: means unbounded statically (interaction cycle reachable).
    causal_length: Dict[str, Optional[int]]
    rules: Tuple[BoundRule, ...]
    #: The selected (tightest applicable) rule identifier.
    selected_rule: str
    #: Concrete bound; None when only the symbolic n−1 form exists.
    bound: Optional[int]
    bound_expression: str
    #: Total rows used to concretize prop-3.4, when known.
    total_rows: Optional[int]

    def rule(self, identifier: str) -> BoundRule:
        """Look up one evaluated rule by identifier."""
        for r in self.rules:
            if r.rule == identifier:
                return r
        raise KeyError(identifier)

    @property
    def selected(self) -> BoundRule:
        """The rule that produced the certified bound."""
        return self.rule(self.selected_rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "edges": [e.to_dict() for e in self.edges],
            "back_and_forth_count": self.back_and_forth_count,
            "interaction_cycle": self.interaction_cycle,
            "join_graph_is_tree": self.join_graph_is_tree,
            "causal_length": dict(self.causal_length),
            "rules": [r.to_dict() for r in self.rules],
            "selected_rule": self.selected_rule,
            "bound": self.bound,
            "bound_expression": self.bound_expression,
            "total_rows": self.total_rows,
        }


def _classify_edges(schema: DatabaseSchema) -> Tuple[EdgeReport, ...]:
    return tuple(
        EdgeReport(
            source=fk.source,
            target=fk.target,
            attributes=fk.source_attrs,
            kind="back-and-forth" if fk.back_and_forth else "standard",
            rendered=str(fk),
        )
        for fk in schema.foreign_keys
    )


def _causal_lengths(
    schema: DatabaseSchema, *, interaction_cycle: bool
) -> Dict[str, Optional[int]]:
    """Schema-level causal length q per seed relation.

    DFS over simple relation paths in the schema causal graph, counting
    dotted edges.  When the back-and-forth keys form an interaction
    cycle, any relation from which a dotted edge is reachable gets
    ``None`` (no static bound — the data-level paths may revisit the
    *relations* arbitrarily often through distinct tuples).
    """
    graph = SchemaCausalGraph.of(schema)
    bf_sources = {fk.source for fk in schema.back_and_forth_keys}

    def reaches_bf_source(start: str) -> bool:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            if node in bf_sources:
                return True
            for succ, _dotted in graph.successors(node):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False

    def max_dotted_from(start: str) -> int:
        best = 0
        on_path = {start}

        def dfs(node: str, dotted: int) -> None:
            nonlocal best
            best = max(best, dotted)
            for succ, is_dotted in graph.successors(node):
                if succ in on_path:
                    continue
                on_path.add(succ)
                dfs(succ, dotted + (1 if is_dotted else 0))
                on_path.discard(succ)

        dfs(start, 0)
        return best

    lengths: Dict[str, Optional[int]] = {}
    for name in schema.relation_names:
        if interaction_cycle and reaches_bf_source(name):
            lengths[name] = None
        else:
            lengths[name] = max_dotted_from(name)
    return lengths


def certify_convergence(
    schema: DatabaseSchema, *, total_rows: Optional[int] = None
) -> ConvergenceCertificate:
    """Certify an iteration bound for program P over *schema*.

    ``total_rows`` concretizes Proposition 3.4's n−1 fallback; without
    it the fallback stays symbolic (``bound=None``,
    ``bound_expression="n - 1"``).
    """
    graph = SchemaCausalGraph.of(schema)
    bf_keys = schema.back_and_forth_keys
    s = len(bf_keys)
    bf_targets = sorted({fk.target for fk in bf_keys})
    interaction_cycle = len(bf_targets) >= 2
    is_tree = schema.join_graph_is_tree
    edges = _classify_edges(schema)
    causal_length = _causal_lengths(schema, interaction_cycle=interaction_cycle)
    not_a_tree = (
        "the foreign-key join graph is cyclic, so rule (ii) is an "
        "iterated pairwise-consistency reduction the proposition's "
        "proof does not cover"
    )

    rules: List[BoundRule] = []

    # Proposition 3.5: without back-and-forth keys, rule (ii) performs a
    # full Yannakakis reduction per round, so one seeding round plus one
    # cascade round suffice.  The proof assumes a join tree.
    if s == 0 and is_tree:
        rules.append(
            BoundRule(
                rule=RULE_PROP_35,
                proposition="Proposition 3.5",
                applicable=True,
                bound=2,
                bound_expression="2",
                reason=(
                    "no back-and-forth foreign keys: program P converges "
                    "after the seeding round and one semijoin-reduction "
                    "cascade"
                ),
            )
        )
    else:
        rules.append(
            BoundRule(
                rule=RULE_PROP_35,
                proposition="Proposition 3.5",
                applicable=False,
                bound=None,
                bound_expression="2",
                reason=(
                    not_a_tree
                    if not is_tree
                    else f"schema has {s} back-and-forth key(s): "
                    + "; ".join(str(fk) for fk in bf_keys)
                ),
            )
        )

    # Proposition 3.11: simple causal graph with at most one b&f key
    # per source relation gives 2s + 2.  Assumes a join tree.
    if s > 0 and is_tree and graph.prop_311_applies():
        bound_311 = graph.prop_311_bound()
        rules.append(
            BoundRule(
                rule=RULE_PROP_311,
                proposition="Proposition 3.11",
                applicable=True,
                bound=bound_311,
                bound_expression=f"2s + 2 = {bound_311}",
                reason=(
                    f"the schema causal graph is simple and each relation "
                    f"carries at most one back-and-forth key "
                    f"(s = {s} key(s) total)"
                ),
            )
        )
    else:
        reason = (
            not_a_tree
            if not is_tree
            else "no back-and-forth keys (Proposition 3.5 is tighter)"
            if s == 0
            else (
                "some relation carries more than one back-and-forth "
                "foreign key"
                if graph.is_simple()
                else "the schema causal graph is not simple"
            )
        )
        rules.append(
            BoundRule(
                rule=RULE_PROP_311,
                proposition="Proposition 3.11",
                applicable=False,
                bound=None,
                bound_expression="2s + 2",
                reason=reason,
            )
        )

    # Proposition 3.10, static special case: all b&f keys share one
    # target relation ⇒ q ≤ 1 on every instance (see module docstring),
    # hence 2q + 2 = 4.  Assumes a join tree.
    if s > 0 and is_tree and not interaction_cycle:
        rules.append(
            BoundRule(
                rule=RULE_PROP_310,
                proposition="Proposition 3.10",
                applicable=True,
                bound=4,
                bound_expression="2q + 2 = 4 (q <= 1)",
                reason=(
                    f"all back-and-forth keys target relation "
                    f"{bf_targets[0]!r}; containment transitivity limits "
                    f"every simple data-causal path to one dotted edge, "
                    f"so q <= 1 on any instance"
                ),
            )
        )
    else:
        reason = (
            not_a_tree
            if not is_tree
            else "no back-and-forth keys (Proposition 3.5 is tighter)"
            if s == 0
            else (
                f"back-and-forth keys target {len(bf_targets)} distinct "
                f"relations ({', '.join(bf_targets)}); their dotted edges "
                f"can alternate along one path, so no static causal "
                f"length q exists"
            )
        )
        rules.append(
            BoundRule(
                rule=RULE_PROP_310,
                proposition="Proposition 3.10",
                applicable=False,
                bound=None,
                bound_expression="2q + 2",
                reason=reason,
            )
        )

    # Proposition 3.4: always applicable — every productive round
    # deletes at least one tuple and at least one survives quiescence
    # checks, so n − 1 rounds bound any instance with n tuples.  The
    # max(2, ·) floor covers degenerate n ≤ 2 instances where the
    # seeding round plus one cascade are still needed.
    if total_rows is None:
        rules.append(
            BoundRule(
                rule=RULE_PROP_34,
                proposition="Proposition 3.4",
                applicable=True,
                bound=None,
                bound_expression="n - 1",
                reason=(
                    "unconditional fallback: each productive round removes "
                    "at least one of the database's n tuples (Example 3.7 "
                    "shows chains of back-and-forth keys reach Θ(n))"
                ),
            )
        )
    else:
        bound_34 = max(2, total_rows - 1)
        rules.append(
            BoundRule(
                rule=RULE_PROP_34,
                proposition="Proposition 3.4",
                applicable=True,
                bound=bound_34,
                bound_expression=f"n - 1 = {max(2, total_rows - 1)}",
                reason=(
                    f"unconditional fallback with n = {total_rows} rows: "
                    f"each productive round removes at least one tuple"
                ),
            )
        )

    # Select the tightest applicable concrete rule; rules with only a
    # symbolic bound lose to any concrete one and win only by default.
    selected: Optional[BoundRule] = None
    for rule in rules:
        if not rule.applicable:
            continue
        if rule.bound is None:
            if selected is None:
                selected = rule
            continue
        if selected is None or selected.bound is None or rule.bound < selected.bound:
            selected = rule
    assert selected is not None  # prop-3.4 is always applicable

    return ConvergenceCertificate(
        edges=edges,
        back_and_forth_count=s,
        interaction_cycle=interaction_cycle,
        join_graph_is_tree=is_tree,
        causal_length=causal_length,
        rules=tuple(rules),
        selected_rule=selected.rule,
        bound=selected.bound,
        bound_expression=selected.bound_expression,
        total_rows=total_rows,
    )
