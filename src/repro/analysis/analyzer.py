"""The :class:`PlanCertificate` — one object answering, before any data
is touched: *will this plan converge, is the cube exact, and is the
request well-formed?*

:func:`analyze_plan` composes the three analyses of this package:

1. :func:`~repro.analysis.fkgraph.certify_convergence` — the FK-graph
   classification and the iteration bound for program P;
2. :func:`~repro.analysis.additivity.certify_additivity` — per-aggregate
   exact-cube / needs-iterative / unsupported verdicts;
3. :func:`~repro.analysis.linter.lint_plan` — RS00x diagnostics over
   the candidate attributes and the query.

The certificate is consumed by :class:`repro.core.explainer.Explainer`
(method selection and the iteration-bound runtime invariant), by the
execution backends (skipping per-request additivity probing), by the
``repro analyze`` CLI command and by the service's ``/v1/analyze``
endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from ..core.numquery import NumericalQuery
from ..core.question import UserQuestion
from ..engine.schema import DatabaseSchema
from .additivity import AdditivityCertificate, certify_additivity
from .fkgraph import ConvergenceCertificate, certify_convergence
from .linter import SEVERITY_ERROR, Diagnostic, lint_plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.database import Database
    from ..engine.table import Table


@dataclass(frozen=True)
class PlanCertificate:
    """The full static-analysis result for one explanation plan."""

    schema_rendered: str
    attributes: Tuple[str, ...]
    query_rendered: Optional[str]
    convergence: ConvergenceCertificate
    additivity: Optional[AdditivityCertificate]
    diagnostics: Tuple[Diagnostic, ...]

    @property
    def has_errors(self) -> bool:
        """True when any diagnostic is error-severity."""
        return any(d.severity == SEVERITY_ERROR for d in self.diagnostics)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        """Only the error-severity diagnostics."""
        return tuple(
            d for d in self.diagnostics if d.severity == SEVERITY_ERROR
        )

    @property
    def recommended_method(self) -> str:
        """The fastest evaluation method certified sound for this plan."""
        if self.additivity is None:
            return "exact"
        return self.additivity.recommended_method

    @property
    def certified_bound(self) -> Optional[int]:
        """The concrete iteration bound, when one was derived."""
        return self.convergence.bound

    @property
    def recommended_strategy(self) -> str:
        """The program-P evaluation schedule this plan should use.

        ``"closure"`` when the schema has back-and-forth keys — they
        are what lets the fixpoint degenerate to Θ(n) iterations
        (Example 3.7), and exactly what the FK cascade closure index
        (:mod:`repro.engine.closure`) precomputes.  Without any,
        Proposition 3.5 already bounds the fixpoint at 2 iterations,
        the closure index cannot beat it, and the linter flags the
        combination as RS008 — so the verdict stays ``"fixpoint"``.
        Consumed by ``Explainer(strategy="auto")``, ``repro analyze``
        and ``/v1/analyze``.
        """
        return (
            "closure" if self.convergence.back_and_forth_count else "fixpoint"
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready rendering (the ``/v1/analyze`` body)."""
        return {
            "schema": self.schema_rendered,
            "attributes": list(self.attributes),
            "query": self.query_rendered,
            "convergence": self.convergence.to_dict(),
            "additivity": (
                None if self.additivity is None else self.additivity.to_dict()
            ),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "recommended_method": self.recommended_method,
            "recommended_strategy": self.recommended_strategy,
            "has_errors": self.has_errors,
        }

    def render(self) -> str:
        """A readable multi-section report for the CLI."""
        conv = self.convergence
        lines: List[str] = ["Plan certificate", f"  schema: {self.schema_rendered}"]
        if self.query_rendered is not None:
            lines.append(f"  query: {self.query_rendered}")
        lines.append(
            "  attributes: "
            + (", ".join(self.attributes) if self.attributes else "(none)")
        )
        lines.append("")
        lines.append("Foreign-key graph")
        if conv.edges:
            for edge in conv.edges:
                lines.append(f"  {edge.rendered}   [{edge.kind}]")
        else:
            lines.append("  (no foreign keys)")
        lines.append(
            "  back-and-forth interaction: "
            + ("cyclic" if conv.interaction_cycle else "acyclic")
        )
        lengths = ", ".join(
            f"{name}={'unbounded' if q is None else q}"
            for name, q in conv.causal_length.items()
        )
        lines.append(f"  causal length q by seed relation: {lengths}")
        lines.append("")
        lines.append("Convergence")
        selected = conv.selected
        lines.append(
            f"  certified bound: {conv.bound_expression} iterations "
            f"via {selected.rule} ({selected.proposition})"
        )
        for rule in conv.rules:
            status = "applies" if rule.applicable else "n/a"
            marker = "*" if rule.rule == conv.selected_rule else " "
            lines.append(
                f"  {marker} {rule.rule:<10} {status:<8} "
                f"bound {rule.bound_expression:<16} {rule.reason}"
            )
        strategy_reason = (
            "back-and-forth cascades collapse to closure-index probes"
            if self.recommended_strategy == "closure"
            else "no back-and-forth keys; the fixpoint is already bounded"
        )
        lines.append(
            f"  recommended strategy: {self.recommended_strategy} "
            f"({strategy_reason})"
        )
        lines.append("")
        lines.append("Additivity")
        if self.additivity is None:
            lines.append("  (no numerical query supplied)")
        else:
            for v in self.additivity.verdicts:
                lines.append(f"  {v.name}: {v.verdict} — {v.reason}")
                if v.data_condition is not None:
                    lines.append(f"      unresolved condition: {v.data_condition}")
            lines.append(
                f"  recommended method: {self.additivity.recommended_method}"
            )
        lines.append("")
        lines.append("Diagnostics")
        if self.diagnostics:
            for d in self.diagnostics:
                lines.append(f"  {d}")
        else:
            lines.append("  none")
        return "\n".join(lines)


def analyze_plan(
    schema: DatabaseSchema,
    query: Union[NumericalQuery, UserQuestion, None],
    attributes: Sequence[str],
    *,
    database: Optional["Database"] = None,
    universal: Optional["Table"] = None,
    total_rows: Optional[int] = None,
) -> PlanCertificate:
    """Produce the :class:`PlanCertificate` for one plan.

    *query* may be a :class:`~repro.core.numquery.NumericalQuery`, a
    :class:`~repro.core.question.UserQuestion` (its query is used), or
    None to analyze convergence and attributes only.  Supplying
    *database* (or *universal*) resolves the footnote-11 data condition
    and concretizes the Proposition 3.4 row-count bound; *total_rows*
    alone concretizes the bound without any data access.
    """
    numquery: Optional[NumericalQuery]
    if isinstance(query, UserQuestion):
        numquery = query.query
    else:
        numquery = query
    rows = total_rows
    if rows is None and database is not None:
        rows = database.total_rows()
    convergence = certify_convergence(schema, total_rows=rows)
    additivity = (
        None
        if numquery is None
        else certify_additivity(
            schema, numquery, database=database, universal=universal
        )
    )
    diagnostics = lint_plan(schema, numquery, attributes)
    return PlanCertificate(
        schema_rendered=str(schema),
        attributes=tuple(attributes),
        query_rendered=None if numquery is None else str(numquery),
        convergence=convergence,
        additivity=additivity,
        diagnostics=diagnostics,
    )
