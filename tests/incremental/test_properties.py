"""Property tests: random mutation batches never change the answer.

For arbitrary interleaved insert/delete batches against the natality
``Birth`` relation, the incrementally patched explanation table must be
content-identical (same ``content_fingerprint()``) to a cold rebuild on
the mutated instance — at every shard count.  This is the end-to-end
exactness property the conservation checks and the sequential delta
rule exist to guarantee.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.explainer import Explainer
from repro.datasets import natality
from repro.incremental import IncrementalSession

ROWS = 300
SEED = 7


@pytest.fixture(scope="module")
def base_rows():
    """A pool of natality rows to draw deletes and (re)inserts from."""
    db = natality.generate(rows=ROWS, seed=SEED)
    return db.relation("Birth").row_list()


def _fresh_workload():
    db = natality.generate(rows=ROWS, seed=SEED)
    return (
        db,
        natality.q_race_question(),
        tuple(natality.default_attributes("race")),
    )


@st.composite
def mutation_scripts(draw, pool_size):
    """A list of (delete_indexes, reinsert_indexes) batch pairs.

    Indexes address the original row pool; deleting an absent row or
    re-inserting a present one is a legal no-op, so scripts are
    unconstrained interleavings.
    """
    index = st.integers(min_value=0, max_value=pool_size - 1)
    batch = st.tuples(
        st.lists(index, max_size=8, unique=True),
        st.lists(index, max_size=8, unique=True),
    )
    return draw(st.lists(batch, min_size=1, max_size=4))


@pytest.mark.parametrize("shards", [1, 2])
class TestRandomBatchesIdentical:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_patched_equals_cold_rebuild(self, shards, base_rows, data):
        script = data.draw(mutation_scripts(len(base_rows)))
        db, question, attributes = _fresh_workload()
        birth = db.relation("Birth")
        with IncrementalSession(
            db, question, attributes, method="cube", shards=shards
        ) as session:
            session.table()
            for delete_idx, insert_idx in script:
                birth.delete_many([base_rows[i] for i in delete_idx])
                birth.insert_many([base_rows[i] for i in insert_idx])
                stats = session.refresh()
                assert stats.strategy in ("patched", "noop")
            patched = session.table()
        cold = Explainer(db, question, attributes).explanation_table("cube")
        assert (
            patched.content_fingerprint() == cold.content_fingerprint()
        ), f"patched table diverged after script {script!r}"
