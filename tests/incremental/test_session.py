"""Tests for the IncrementalSession lifecycle: patch, fallback, verify."""

import warnings

import pytest

from repro.core.explainer import Explainer
from repro.datasets import dblp, natality
from repro.incremental import IncrementalSession
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def workload():
    """A small additive natality workload (count aggregates, cube)."""
    db = natality.generate(rows=400, seed=7)
    return (
        db,
        natality.q_race_question(),
        tuple(natality.default_attributes("race")),
    )


def _cold_table(db, question, attributes, method="cube"):
    return Explainer(db, question, attributes).explanation_table(method)


def _sample(db, relation, n, *, offset=0):
    return db.relation(relation).row_list()[offset : offset + n]


class TestPatchedPath:
    def test_initial_table_matches_cold(self, workload):
        db, question, attributes = workload
        with IncrementalSession(db, question, attributes, method="cube") as s:
            assert s.patchable
            assert s.last_stats.strategy == "initial"
            assert (
                s.table().content_fingerprint()
                == _cold_table(db, question, attributes).content_fingerprint()
            )

    def test_patched_table_identical_to_cold_rebuild(self, workload):
        db, question, attributes = workload
        with IncrementalSession(db, question, attributes, method="cube") as s:
            s.table()
            victims = _sample(db, "Birth", 25)
            db.relation("Birth").delete_many(victims)
            stats = s.refresh()
            assert stats.strategy == "patched"
            assert (
                s.table().content_fingerprint()
                == _cold_table(db, question, attributes).content_fingerprint()
            )

    def test_chained_deltas_stay_identical(self, workload):
        db, question, attributes = workload
        with IncrementalSession(db, question, attributes, method="cube") as s:
            s.table()
            for offset in (0, 40, 80):
                victims = _sample(db, "Birth", 10, offset=offset)
                db.relation("Birth").delete_many(victims)
                assert s.refresh().strategy == "patched"
                db.relation("Birth").insert_many(victims)
                assert s.refresh().strategy == "patched"
            assert (
                s.table().content_fingerprint()
                == _cold_table(db, question, attributes).content_fingerprint()
            )

    def test_sharded_patch_identical(self, workload):
        db, question, attributes = workload
        with IncrementalSession(
            db, question, attributes, method="cube", shards=2
        ) as s:
            s.table()
            victims = _sample(db, "Birth", 25)
            db.relation("Birth").delete_many(victims)
            stats = s.refresh()
            assert stats.strategy == "patched"
            assert stats.shards == 2
            assert (
                s.table().content_fingerprint()
                == _cold_table(db, question, attributes).content_fingerprint()
            )

    def test_noop_refresh(self, workload):
        db, question, attributes = workload
        with IncrementalSession(db, question, attributes, method="cube") as s:
            s.table()
            stats = s.refresh()
            assert stats.strategy == "noop"
            assert stats.fingerprint == stats.base_fingerprint

    def test_refresh_checkpoint_matches_database_fingerprint(self, workload):
        db, question, attributes = workload
        with IncrementalSession(db, question, attributes, method="cube") as s:
            s.table()
            db.relation("Birth").delete_many(_sample(db, "Birth", 5))
            stats = s.refresh()
            db._fingerprint_cache = None
            assert stats.fingerprint == db.content_fingerprint()

    def test_patch_counter_incremented(self, workload):
        db, question, attributes = workload
        metrics = MetricsRegistry()
        with IncrementalSession(
            db, question, attributes, method="cube", metrics=metrics
        ) as s:
            s.table()
            db.relation("Birth").delete_many(_sample(db, "Birth", 5))
            s.refresh()
            assert s.patches == 1
            assert (
                metrics.snapshot()["repro_incremental_patches_total"] == 1.0
            )


class TestFallback:
    def test_non_additive_plan_falls_back_with_correct_table(self):
        """A needs-iterative plan rebuilds (never a wrong table)."""
        db = dblp.generate(scale=0.1, seed=2014)
        question = dblp.bump_question()
        attributes = tuple(dblp.default_attributes())
        metrics = MetricsRegistry()
        with IncrementalSession(
            db, question, attributes, method="auto", metrics=metrics
        ) as s:
            assert not s.patchable
            victim = db.relation("Authored").row_list()[0]
            db.relation("Authored").delete_many([victim])
            with pytest.warns(RuntimeWarning, match="needs-iterative"):
                stats = s.refresh()
            assert stats.strategy == "rebuilt"
            assert stats.reason == "needs-iterative"
            assert s.fallbacks == 1
            assert (
                metrics.snapshot()[
                    'repro_incremental_fallbacks_total{reason="needs-iterative"}'
                ]
                == 1.0
            )
            assert (
                s.table().content_fingerprint()
                == _cold_table(
                    db, question, attributes, method="auto"
                ).content_fingerprint()
            )

    def test_fallback_rearms_patching(self, workload):
        """After a rebuild the session patches again from fresh state."""
        db, question, attributes = workload
        with IncrementalSession(db, question, attributes, method="cube") as s:
            s.table()
            db.relation("Birth").delete_many(_sample(db, "Birth", 5))
            # Force one fallback through the verify path by injecting a
            # static reason, then clear it.
            s._builder, saved = None, s._builder
            with pytest.warns(RuntimeWarning):
                assert s.refresh().strategy == "rebuilt"
            s._builder = saved
            s._builder.reset()
            db.relation("Birth").delete_many(_sample(db, "Birth", 5, offset=20))
            assert s.refresh().strategy == "patched"
            assert (
                s.table().content_fingerprint()
                == _cold_table(db, question, attributes).content_fingerprint()
            )


class TestVerifyMode:
    def test_verify_full_passes_on_additive_plan(self, workload):
        db, question, attributes = workload
        with IncrementalSession(
            db, question, attributes, method="cube", verify="full"
        ) as s:
            s.table()
            db.relation("Birth").delete_many(_sample(db, "Birth", 10))
            stats = s.refresh()
            assert stats.strategy == "patched"

    def test_verify_env_var(self, workload, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL_VERIFY", "full")
        db, question, attributes = workload
        with IncrementalSession(db, question, attributes, method="cube") as s:
            assert s.verify == "full"


class TestExplainerApplyDelta:
    def test_apply_delta_matches_cold(self, workload):
        db, question, attributes = workload
        explainer = Explainer(db, question, attributes)
        victims = _sample(db, "Birth", 25)
        stats = explainer.apply_delta({"Birth": {"delete": victims}})
        assert stats.strategy == "patched"
        assert (
            explainer.explanation_table("cube").content_fingerprint()
            == _cold_table(db, question, attributes).content_fingerprint()
        )
