"""Tests for the mutation log: capture, delta algebra, rebasing."""

import pytest

from repro.datasets import running_example as rex
from repro.incremental import MutationLog


@pytest.fixture
def db():
    return rex.database()


NEW_AUTHOR = ("A99", "New Author", "X.edu", "databases")


def _some_row(db, name):
    return db.relation(name).row_list()[0]


class TestCapture:
    def test_insert_recorded(self, db):
        with MutationLog(db) as log:
            db.relation("Author").insert(NEW_AUTHOR)
            assert len(log) == 1
            batch = log.batches[0]
            assert batch.relation == "Author"
            assert batch.inserted == (NEW_AUTHOR,)
            assert batch.deleted == ()

    def test_noop_mutations_invisible(self, db):
        existing = _some_row(db, "Author")
        with MutationLog(db) as log:
            db.relation("Author").insert(existing)  # already present
            db.relation("Author").delete(NEW_AUTHOR)  # absent
            assert log.is_empty

    def test_detach_stops_recording(self, db):
        log = MutationLog(db)
        log.detach()
        db.relation("Author").insert(NEW_AUTHOR)
        assert log.is_empty

    def test_row_totals(self, db):
        with MutationLog(db) as log:
            db.relation("Author").insert(NEW_AUTHOR)
            db.relation("Author").delete(NEW_AUTHOR)
            assert log.rows_inserted() == 1
            assert log.rows_deleted() == 1


class TestNetDelta:
    def test_insert_then_delete_cancels(self, db):
        with MutationLog(db) as log:
            db.relation("Author").insert(NEW_AUTHOR)
            db.relation("Author").delete(NEW_AUTHOR)
            assert log.net_delta() == {}

    def test_delete_then_reinsert_cancels(self, db):
        victim = _some_row(db, "Author")
        with MutationLog(db) as log:
            db.relation("Author").delete(victim)
            db.relation("Author").insert(victim)
            assert log.net_delta() == {}

    def test_disjoint_sets(self, db):
        victim = _some_row(db, "Author")
        with MutationLog(db) as log:
            db.relation("Author").delete(victim)
            db.relation("Author").insert(NEW_AUTHOR)
            net = log.net_delta()
            inserted, deleted = net["Author"]
            assert inserted == frozenset({NEW_AUTHOR})
            assert deleted == frozenset({victim})


class TestChainKey:
    def test_same_mutations_same_key(self):
        db_a, db_b = rex.database(), rex.database()
        with MutationLog(db_a) as log_a, MutationLog(db_b) as log_b:
            db_a.relation("Author").insert(NEW_AUTHOR)
            db_b.relation("Author").insert(NEW_AUTHOR)
            assert log_a.chain_key() == log_b.chain_key()

    def test_key_changes_with_mutations(self, db):
        with MutationLog(db) as log:
            base_key = log.chain_key()
            db.relation("Author").insert(NEW_AUTHOR)
            assert log.chain_key() != base_key


class TestCheckpoint:
    def test_checkpoint_clears_and_rebases(self, db):
        with MutationLog(db) as log:
            old_base = log.base_fingerprint
            db.relation("Author").insert(NEW_AUTHOR)
            new_base = log.checkpoint()
            assert log.is_empty
            assert new_base != old_base
            assert log.base_fingerprint == new_base

    def test_incremental_fingerprint_matches_full_recompute(self, db):
        """The digest-maintained rebase equals a from-scratch hash."""
        with MutationLog(db) as log:
            victim = _some_row(db, "Authored")
            db.relation("Author").insert(NEW_AUTHOR)
            db.relation("Authored").delete(victim)
            incremental = log.checkpoint()
            db._fingerprint_cache = None  # drop the primed memo
            assert incremental == db.content_fingerprint()

    def test_checkpoint_primes_database_memo(self, db):
        with MutationLog(db) as log:
            db.relation("Author").insert(NEW_AUTHOR)
            fingerprint = log.checkpoint()
            assert db._fingerprint_cache[1] == fingerprint
            assert db.content_fingerprint() == fingerprint

    def test_fingerprint_survives_partial_insert_many(self, db):
        """Digests stay consistent when insert_many fails mid-batch."""
        from repro.errors import IntegrityError

        existing = _some_row(db, "Author")
        conflicting = (existing[0], "other name", "Y.edu", "os")
        with MutationLog(db) as log:
            with pytest.raises(IntegrityError):
                db.relation("Author").insert_many([NEW_AUTHOR, conflicting])
            incremental = log.checkpoint()
            db._fingerprint_cache = None
            assert incremental == db.content_fingerprint()
