"""Differential matrix: dataset × backend × method must agree.

Three families of comparisons over the shared fixture matrix:

* **Backend differential** — Algorithm 1 on a SQL backend must produce
  a table *byte-identical* (by content fingerprint, which canonicalizes
  SQL integer/float drift) to the in-memory reference, and identical
  top-K rankings under both degrees.  Missing drivers (duckdb) skip.
* **Method differential** — the indexed exact evaluator covers a
  superset of the cube's candidates (the cube only materializes cells
  with support in the filtered sub-population) and must agree
  *exactly* on every shared candidate, for both μ_interv and μ_aggr.
* **Auto resolution** — ``method: "auto"`` must deterministically
  resolve to the statically recommended method of the PR-4 plan
  certificate, and the resulting table must be fingerprint-identical
  to an explicit request for that method.

Rebuild determinism (same plan → same fingerprint across two
independent builds) underpins the service cache keying and is asserted
separately.
"""

import pytest

from repro.core.cube_algorithm import MU_AGGR, MU_INTERV
from repro.core.explainer import METHODS, Explainer
from repro.core.topk import top_k_explanations

from conftest import DATASETS, SQL_BACKENDS, require_backend

pytestmark = pytest.mark.differential

#: Genuine divergence this battery surfaced (kept as xfail, not skip, so
#: a fix flips it green automatically): the footnote-11 "exact-cube"
#: additivity verdict is unsound when an aggregate's WHERE references
#: attributes of universal-table rows *outside* sigma_phi(U) that the
#: back-and-forth cascade deletes.  On dblp, deleting an .edu author
#: cascades to a co-authored publication counted by the 'com'
#: aggregates, so the cube cell undercounts the true drop and mu_interv
#: diverges from the exact program-P evaluator.  See ROADMAP.md.
KNOWN_CUBE_DIVERGENCE = {("dblp-small", MU_INTERV)}


def degree_map(m, column):
    pos = m.table.position(column)
    return {str(m.explanation_of(row)): row[pos] for row in m.table.rows()}


def ranking_key(m, by, k=5):
    return [
        (r.rank, str(r.explanation), r.degree)
        for r in top_k_explanations(m, k, by=by)
    ]


class TestBackendDifferential:
    @pytest.mark.parametrize("backend", SQL_BACKENDS)
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_fingerprints_byte_identical(self, tables, dataset, backend):
        require_backend(backend)
        reference = tables(dataset, "cube", "memory")
        other = tables(dataset, "cube", backend)
        assert (
            other.content_fingerprint() == reference.content_fingerprint()
        ), f"{backend} table diverges from memory on {dataset}"

    @pytest.mark.parametrize("by", (MU_INTERV, MU_AGGR))
    @pytest.mark.parametrize("backend", SQL_BACKENDS)
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_topk_rankings_identical(self, tables, dataset, backend, by):
        require_backend(backend)
        reference = tables(dataset, "cube", "memory")
        other = tables(dataset, "cube", backend)
        assert ranking_key(other, by) == ranking_key(reference, by)


class TestMethodDifferential:
    @pytest.mark.parametrize("column", (MU_INTERV, MU_AGGR))
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_indexed_agrees_with_cube_on_shared_candidates(
        self, tables, dataset, column
    ):
        cube = degree_map(tables(dataset, "cube"), column)
        indexed = degree_map(tables(dataset, "indexed"), column)
        assert set(cube) <= set(indexed), "cube found unknown candidates"
        diverging = {
            key: (cube[key], indexed[key])
            for key in cube
            if cube[key] != indexed[key]
        }
        if diverging and (dataset, column) in KNOWN_CUBE_DIVERGENCE:
            pytest.xfail(
                f"footnote-11 soundness gap: cube {column} diverges from "
                f"exact program-P on {len(diverging)} {dataset} candidates "
                "(cross-group cascade deletions invisible to sigma_phi(U))"
            )
        assert not diverging, f"{column} diverges on {dataset}: {diverging}"

    @pytest.mark.parametrize("dataset", DATASETS)
    def test_rebuild_is_deterministic(self, tables, workloads, dataset):
        db, question, attributes = workloads(dataset)
        fresh = Explainer(
            db, question, list(attributes)
        ).explanation_table("cube")
        assert (
            fresh.content_fingerprint()
            == tables(dataset, "cube").content_fingerprint()
        )


class TestAutoResolution:
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_auto_matches_certificate_recommendation(
        self, tables, workloads, dataset
    ):
        db, question, attributes = workloads(dataset)
        explainer = Explainer(db, question, list(attributes))
        resolved = explainer.resolve_method("auto")
        assert resolved in METHODS
        assert resolved == explainer.certificate().recommended_method
        auto_table = explainer.explanation_table(resolved)
        assert (
            auto_table.content_fingerprint()
            == tables(dataset, resolved).content_fingerprint()
        )
