"""Differential matrix: dataset × backend × method must agree.

Three families of comparisons over the shared fixture matrix:

* **Backend differential** — Algorithm 1 on a SQL backend must produce
  a table *byte-identical* (by content fingerprint, which canonicalizes
  SQL integer/float drift) to the in-memory reference, and identical
  top-K rankings under both degrees.  Missing drivers (duckdb) skip.
* **Method differential** — the indexed exact evaluator covers a
  superset of the cube's candidates (the cube only materializes cells
  with support in the filtered sub-population) and must agree
  *exactly* on every shared candidate, for both μ_interv and μ_aggr.
* **Auto resolution** — ``method: "auto"`` must deterministically
  resolve to the statically recommended method of the PR-4 plan
  certificate, and the resulting table must be fingerprint-identical
  to an explicit request for that method.

Rebuild determinism (same plan → same fingerprint across two
independent builds) underpins the service cache keying and is asserted
separately.
"""

import pytest

from repro.core.cube_algorithm import MU_AGGR, MU_INTERV
from repro.core.explainer import METHODS, Explainer
from repro.core.topk import top_k_explanations

from conftest import DATASETS, SQL_BACKENDS, require_backend

pytestmark = pytest.mark.differential

#: Genuine divergence this battery surfaced (originally an xfail, now a
#: *certified* divergence): the footnote-11 "exact-cube" additivity
#: verdict was unsound when an aggregate's WHERE references attributes
#: the counted key does not functionally determine.  On dblp, deleting
#: an .edu author cascades to a co-authored publication counted by the
#: 'com' aggregates, so the cube cell undercounts the true drop and
#: mu_interv diverges from the exact program-P evaluator.  The analyzer
#: now detects this (the WHERE/FD condition) and downgrades the verdict
#: to needs-iterative, so the cube here is the explicitly requested
#: Section 6 approximation — the divergence is expected and the
#: certificate's refusal is asserted alongside it.
KNOWN_CUBE_DIVERGENCE = {("dblp-small", MU_INTERV)}


def degree_map(m, column):
    pos = m.table.position(column)
    return {str(m.explanation_of(row)): row[pos] for row in m.table.rows()}


def ranking_key(m, by, k=5):
    return [
        (r.rank, str(r.explanation), r.degree)
        for r in top_k_explanations(m, k, by=by)
    ]


class TestBackendDifferential:
    @pytest.mark.parametrize("backend", SQL_BACKENDS)
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_fingerprints_byte_identical(self, tables, dataset, backend):
        require_backend(backend)
        reference = tables(dataset, "cube", "memory")
        other = tables(dataset, "cube", backend)
        assert (
            other.content_fingerprint() == reference.content_fingerprint()
        ), f"{backend} table diverges from memory on {dataset}"

    @pytest.mark.parametrize("by", (MU_INTERV, MU_AGGR))
    @pytest.mark.parametrize("backend", SQL_BACKENDS)
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_topk_rankings_identical(self, tables, dataset, backend, by):
        require_backend(backend)
        reference = tables(dataset, "cube", "memory")
        other = tables(dataset, "cube", backend)
        assert ranking_key(other, by) == ranking_key(reference, by)


class TestMethodDifferential:
    @pytest.mark.parametrize("column", (MU_INTERV, MU_AGGR))
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_indexed_agrees_with_cube_on_shared_candidates(
        self, tables, workloads, dataset, column
    ):
        cube = degree_map(tables(dataset, "cube"), column)
        indexed = degree_map(tables(dataset, "indexed"), column)
        assert set(cube) <= set(indexed), "cube found unknown candidates"
        diverging = {
            key: (cube[key], indexed[key])
            for key in cube
            if cube[key] != indexed[key]
        }
        if (dataset, column) in KNOWN_CUBE_DIVERGENCE:
            # The divergence is real — and the analyzer must now refuse
            # to certify the cube for it (footnote-11 WHERE/FD fix).
            assert diverging, (
                f"expected the documented footnote-11 divergence on "
                f"{dataset}/{column}; did the generator change?"
            )
            db, question, attributes = workloads(dataset)
            explainer = Explainer(db, question, list(attributes))
            certificate = explainer.certificate().additivity
            assert not certificate.all_exact_cube
            assert certificate.recommended_method == "indexed"
            return
        assert not diverging, f"{column} diverges on {dataset}: {diverging}"

    @pytest.mark.parametrize("dataset", DATASETS)
    def test_rebuild_is_deterministic(self, tables, workloads, dataset):
        db, question, attributes = workloads(dataset)
        kwargs = (
            {"check_additivity": False} if dataset == "dblp-small" else {}
        )
        fresh = Explainer(
            db, question, list(attributes)
        ).explanation_table("cube", **kwargs)
        assert (
            fresh.content_fingerprint()
            == tables(dataset, "cube").content_fingerprint()
        )


class TestShardDifferential:
    """Partition-parallel execution is a pure execution knob: the cube
    table must be fingerprint-identical at every shard count.  Inline
    mode runs the full partition/merge pipeline in-process, so the
    matrix stays cheap and deterministic (process-pool behavior has its
    own suite under tests/parallel/)."""

    @pytest.mark.parametrize("shards", (2, 3, 7))
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_sharded_cube_fingerprint_identical(
        self, tables, workloads, dataset, shards, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHARD_MODE", "inline")
        db, question, attributes = workloads(dataset)
        kwargs = (
            {"check_additivity": False} if dataset == "dblp-small" else {}
        )
        sharded = Explainer(
            db, question, list(attributes), shards=shards
        ).explanation_table("cube", **kwargs)
        assert (
            sharded.content_fingerprint()
            == tables(dataset, "cube").content_fingerprint()
        ), f"shards={shards} diverges from serial on {dataset}"


class TestStrategyDifferential:
    """The intervention strategy is a pure execution knob like shards:
    closure-index tables must be fingerprint-identical to the fixpoint
    baseline for every program-P method, on every bundled dataset."""

    @pytest.mark.parametrize("method", ("cube", "indexed"))
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_closure_table_fingerprint_identical(
        self, tables, workloads, dataset, method
    ):
        db, question, attributes = workloads(dataset)
        kwargs = (
            {"check_additivity": False}
            if (dataset, method) == ("dblp-small", "cube")
            else {}
        )
        closure = Explainer(
            db, question, list(attributes), strategy="closure"
        ).explanation_table(method, **kwargs)
        assert (
            closure.content_fingerprint()
            == tables(dataset, method).content_fingerprint()
        ), f"strategy=closure diverges from fixpoint on {dataset}/{method}"

    @pytest.mark.parametrize("dataset", DATASETS)
    def test_auto_strategy_matches_certificate(
        self, workloads, dataset
    ):
        db, question, attributes = workloads(dataset)
        explainer = Explainer(
            db, question, list(attributes), strategy="auto"
        )
        resolved = explainer.resolve_strategy()
        assert resolved == explainer.certificate().recommended_strategy
        expected = "closure" if db.schema.back_and_forth_keys else "fixpoint"
        assert resolved == expected


class TestAutoResolution:
    @pytest.mark.parametrize("dataset", DATASETS)
    def test_auto_matches_certificate_recommendation(
        self, tables, workloads, dataset
    ):
        db, question, attributes = workloads(dataset)
        explainer = Explainer(db, question, list(attributes))
        resolved = explainer.resolve_method("auto")
        assert resolved in METHODS
        assert resolved == explainer.certificate().recommended_method
        auto_table = explainer.explanation_table(resolved)
        assert (
            auto_table.content_fingerprint()
            == tables(dataset, resolved).content_fingerprint()
        )
