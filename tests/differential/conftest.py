"""Fixture matrix for the differential suite.

One session-scoped cache hands out ``(database, question, attributes)``
workloads and finalized explanation tables keyed by
``(dataset, method, backend)``, so every pairwise comparison in
``test_matrix.py`` reuses the same build instead of recomputing it —
the whole matrix costs one table build per distinct configuration.

Datasets are deliberately small instances of every bundled generator:
the differential claims being checked (byte-identical fingerprints,
identical rankings) are size-independent, and the matrix multiplies
fast.
"""

import pytest

from repro.backends import available_backends
from repro.core.explainer import Explainer
from repro.core.numquery import AggregateQuery, single_query
from repro.core.question import UserQuestion
from repro.datasets import dblp, geodblp, natality, tpch
from repro.datasets import running_example as rex
from repro.engine.aggregates import count_distinct
from repro.engine.expressions import Col, Comparison, Const

#: Every bundled dataset, small enough for the full matrix.
DATASETS = (
    "running-example",
    "natality-small",
    "dblp-small",
    "geodblp-small",
    "tpch-small",
)

#: SQL backends the matrix attempts; missing drivers skip, not fail.
SQL_BACKENDS = ("sqlite", "duckdb")


def _build_workload(name):
    if name == "running-example":
        question = UserQuestion.high(
            single_query(
                AggregateQuery(
                    "q",
                    count_distinct("Publication.pubid", "q"),
                    Comparison(
                        "=", Col("Publication.venue"), Const("SIGMOD")
                    ),
                )
            )
        )
        return rex.database(), question, ("Author.name", "Publication.year")
    if name == "natality-small":
        return (
            natality.generate(rows=400, seed=7),
            natality.q_race_question(),
            tuple(natality.default_attributes("race")),
        )
    if name == "dblp-small":
        return (
            dblp.generate(scale=0.1, seed=2014),
            dblp.bump_question(),
            tuple(dblp.default_attributes()),
        )
    if name == "geodblp-small":
        return (
            geodblp.generate(scale=0.1, seed=2014),
            geodblp.uk_question(),
            tuple(geodblp.default_attributes()),
        )
    if name == "tpch-small":
        # promo-share joins 6 relations through the partsupp diamond
        # (Lineitem-Orders-Customer-Nation and Lineitem-Partsupp-Part)
        # and is clean under exact-vs-cube candidate comparison; see
        # the sum-boundary note in docs/datasets.md for why the sum
        # question is not used here.
        return (
            tpch.generate(sf=0.01, seed=2014),
            tpch.question("promo-share"),
            tpch.question_attributes("promo-share"),
        )
    raise ValueError(f"unknown differential dataset {name!r}")


def require_backend(backend):
    """Skip (never fail) configurations whose driver is not installed."""
    if backend not in available_backends():
        pytest.skip(f"backend {backend!r} not available in this environment")


@pytest.fixture(scope="session")
def workloads():
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = _build_workload(name)
        return cache[name]

    return get


@pytest.fixture(scope="session")
def tables(workloads):
    cache = {}

    def get(dataset, method="cube", backend="memory"):
        key = (dataset, method, backend)
        if key not in cache:
            db, question, attributes = workloads(dataset)
            explainer = Explainer(
                db, question, list(attributes), backend=backend
            )
            kwargs = {}
            if method == "cube" and dataset == "dblp-small":
                # The bump question is no longer certified additive
                # (footnote-11 WHERE/FD condition); the matrix still
                # compares its cube as the Section 6 approximation.
                kwargs["check_additivity"] = False
            cache[key] = explainer.explanation_table(method, **kwargs)
        return cache[key]

    return get
