"""Differential matrix: incremental refresh vs cold rebuild.

For every bundled dataset workload, apply a small mutation batch and
require the :class:`~repro.incremental.IncrementalSession` table —
whether it *patched* (additive plans) or *rebuilt* (fallback) — to be
content-identical to a cold :class:`~repro.core.Explainer` build on the
mutated instance.  This is the incremental analogue of the rebuild-
determinism claim that underpins service cache keying: a session must
never serve a table a from-scratch computation would not produce.

The CI differential-matrix job additionally runs the *service*
differential suite under ``REPRO_REFRESH=incremental``, exercising the
same guarantee through ``/v1/explain`` + ``/v1/mutate``.
"""

import warnings

import pytest

from repro.core.explainer import Explainer
from repro.incremental import IncrementalSession

from conftest import DATASETS

pytestmark = pytest.mark.differential

#: The relation each workload mutates (always part of the join tree).
MUTATED = {
    "running-example": "Authored",
    "natality-small": "Birth",
    "dblp-small": "Authored",
    "geodblp-small": "Authored",
    "tpch-small": "Lineitem",
}


def _mutate(db, relation, batch=5):
    """Delete a few rows, re-insert some: a mixed non-trivial delta."""
    rel = db.relation(relation)
    victims = rel.row_list()[:batch]
    rel.delete_many(victims)
    rel.insert_many(victims[: batch // 2])


@pytest.mark.parametrize("dataset", DATASETS)
class TestIncrementalDifferential:
    def test_refresh_matches_cold_rebuild(self, dataset, workloads):
        db, question, attributes = workloads(dataset)
        db = db.copy()  # session fixtures are shared; mutate a clone
        with IncrementalSession(db, question, attributes, method="auto") as s:
            s.table()
            _mutate(db, MUTATED[dataset])
            with warnings.catch_warnings():
                # Fallback paths warn; the differential claim is about
                # the table contents, not the strategy taken.
                warnings.simplefilter("ignore", RuntimeWarning)
                stats = s.refresh()
            assert stats.strategy in ("patched", "rebuilt")
            cold = Explainer(db, question, list(attributes))
            assert (
                s.table().content_fingerprint()
                == cold.explanation_table("auto").content_fingerprint()
            ), f"{dataset}: {stats.strategy} table diverged from cold rebuild"

    def test_sharded_refresh_matches_serial(self, dataset, workloads):
        db, question, attributes = workloads(dataset)
        serial_db, sharded_db = db.copy(), db.copy()
        tables = {}
        for shards, instance in ((1, serial_db), (2, sharded_db)):
            with IncrementalSession(
                instance, question, attributes, method="auto", shards=shards
            ) as s:
                s.table()
                _mutate(instance, MUTATED[dataset])
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    s.refresh()
                tables[shards] = s.table().content_fingerprint()
        assert tables[1] == tables[2], (
            f"{dataset}: sharded incremental refresh diverged from serial"
        )
