"""Unit tests for the bench-matrix internals.

The end-to-end sweep is exercised by ``repro bench matrix`` in
tests/core/test_cli.py; these tests pin the pieces a report consumer
relies on — the preset axes, the skip reasons, the ranking-fingerprint
canonicalization, and the cross-check's refusal to write a report when
execution knobs change the answer.
"""

import pytest

from repro.bench import PRESETS, BenchMatrixError, MatrixCell, run_matrix
from repro.bench.matrix import (
    _build_cells,
    _cross_check,
    _unsupported,
    ranking_fingerprint,
)
from repro.core.topk import RankedExplanation


def _cell(**overrides):
    base = dict(
        dataset="tpch",
        question="promo-share",
        method="auto",
        strategy="fixpoint",
        backend="memory",
        shards=1,
    )
    base.update(overrides)
    return MatrixCell(**base)


def _record(**overrides):
    base = {
        **_cell().key(),
        "resolved_method": "cube",
        "table_fingerprint": "t0",
        "ranking_fingerprint": "r0",
    }
    base.update(overrides)
    return base


class TestPresets:
    def test_small_preset_covers_the_acceptance_floor(self):
        spec = PRESETS["small"]
        questions = {"tpch": ("q",) * 7, "natality": ("q",) * 2}
        cells = _build_cells(spec, questions)
        # 9 workloads x 2 strategies x (memory x {1,2} + sqlite x 1)
        # runnable combos = 54 >= the 48-cell acceptance floor; the
        # sqlite x 2 combos are built too but recorded as skipped.
        runnable = [
            c for c in cells if c.backend == "memory" or c.shards == 1
        ]
        assert len(runnable) >= 48

    def test_full_preset_extends_small(self):
        small, full = PRESETS["small"], PRESETS["full"]
        assert set(small.backends) < set(full.backends)
        assert set(small.methods) < set(full.methods)

    def test_explicit_methods_pin_fixpoint_only(self):
        cells = _build_cells(PRESETS["full"], {"tpch": ("q",), "natality": ()})
        assert not [
            c
            for c in cells
            if c.method in ("exact", "indexed") and c.strategy != "fixpoint"
        ]


class TestUnsupported:
    def test_missing_backend(self):
        reason = _unsupported(
            _cell(backend="duckdb"), "cube", ("memory", "sqlite")
        )
        assert "not installed" in reason

    def test_non_cube_on_sql_backend(self):
        reason = _unsupported(
            _cell(backend="sqlite", method="indexed"),
            "indexed",
            ("memory", "sqlite"),
        )
        assert "in-memory engine" in reason

    def test_shards_on_sql_backend(self):
        reason = _unsupported(
            _cell(backend="sqlite", shards=2), "cube", ("memory", "sqlite")
        )
        assert "memory-engine knob" in reason

    def test_memory_cube_runs(self):
        assert _unsupported(_cell(shards=2), "cube", ("memory",)) is None


class TestRankingFingerprint:
    def test_sql_numeric_drift_is_canonicalized(self):
        a = [RankedExplanation(1, "[X = 'a']", 2.0, ())]
        b = [RankedExplanation(1, "[X = 'a']", 2, ())]
        assert ranking_fingerprint(a) == ranking_fingerprint(b)

    def test_order_and_degree_are_significant(self):
        a = [RankedExplanation(1, "[X = 'a']", 2.0, ())]
        b = [RankedExplanation(1, "[X = 'a']", 3.0, ())]
        assert ranking_fingerprint(a) != ranking_fingerprint(b)


class TestCrossCheck:
    def test_agreeing_groups_summarize(self):
        groups = _cross_check([_record(), _record(backend="sqlite")])
        assert len(groups) == 1
        assert groups[0]["cells"] == 2
        assert groups[0]["table_fingerprint"] == "t0"

    def test_methods_group_separately(self):
        groups = _cross_check(
            [
                _record(),
                _record(
                    method="exact",
                    resolved_method="exact",
                    table_fingerprint="t1",
                    ranking_fingerprint="r1",
                ),
            ]
        )
        assert len(groups) == 2

    def test_disagreement_raises(self):
        with pytest.raises(BenchMatrixError, match="table_fingerprint"):
            _cross_check(
                [_record(), _record(backend="sqlite", table_fingerprint="t1")]
            )


class TestRunMatrix:
    def test_unknown_preset_raises(self):
        with pytest.raises(BenchMatrixError, match="unknown preset"):
            run_matrix("colossal")
