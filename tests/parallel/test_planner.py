"""Shard planner invariants: disjoint, complete, driver-key-complete,
deterministic — for arbitrary value mixes including NULL/DUMMY and the
int/float collapse the fingerprint canonicalization also performs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.table import Table
from repro.engine.types import DUMMY, NULL
from repro.errors import ShardError
from repro.parallel import (
    ShardPlan,
    canonical_shard_bytes,
    choose_driver_key,
    plan_shards,
    shard_of,
)

driver_values = st.one_of(
    st.integers(-50, 50),
    st.sampled_from(["x", "y", "z", ""]),
    st.booleans(),
    st.just(NULL),
    st.just(DUMMY),
    st.floats(allow_nan=False, allow_infinity=False, width=16),
)


def _table(keys):
    return Table.from_columns(
        ["k", "payload"],
        [list(keys), list(range(len(keys)))],
        nrows=len(keys),
    )


class TestCanonicalBytes:
    def test_int_float_collapse(self):
        assert canonical_shard_bytes(2) == canonical_shard_bytes(2.0)

    def test_bool_is_not_int(self):
        # bool is an int subclass; the canonical rendering must still
        # keep True/1 apart so SQL backends and the engine agree.
        assert canonical_shard_bytes(True) != canonical_shard_bytes(1)
        assert canonical_shard_bytes(False) != canonical_shard_bytes(0)

    def test_sentinels_distinct(self):
        assert canonical_shard_bytes(NULL) != canonical_shard_bytes(DUMMY)
        assert canonical_shard_bytes(NULL) != canonical_shard_bytes("N")

    @given(value=driver_values, shards=st.integers(1, 8))
    def test_shard_of_in_range_and_deterministic(self, value, shards):
        first = shard_of(value, shards)
        assert 0 <= first < shards
        assert shard_of(value, shards) == first


class TestPlanShards:
    @given(keys=st.lists(driver_values, max_size=60), shards=st.integers(1, 5))
    def test_disjoint_and_complete(self, keys, shards):
        table = _table(keys)
        plan = plan_shards(table, shards, "k")
        assert isinstance(plan, ShardPlan)
        assert sum(plan.sizes) == len(table)
        # Every (key, payload) pair survives exactly once.
        scattered = sorted(
            (repr(k), p)
            for sl in plan.slices
            for k, p in zip(sl.column("k"), sl.column("payload"))
        )
        original = sorted(
            (repr(k), p)
            for k, p in zip(table.column("k"), table.column("payload"))
        )
        assert scattered == original

    @given(keys=st.lists(driver_values, max_size=60), shards=st.integers(2, 5))
    def test_driver_key_complete(self, keys, shards):
        plan = plan_shards(_table(keys), shards, "k")
        seen = {}
        for i, sl in enumerate(plan.slices):
            for value in sl.column("k"):
                home = seen.setdefault(repr(value), i)
                assert home == i, f"driver value {value!r} split across shards"

    @given(keys=st.lists(driver_values, max_size=40), shards=st.integers(1, 4))
    def test_deterministic(self, keys, shards):
        a = plan_shards(_table(keys), shards, "k")
        b = plan_shards(_table(keys), shards, "k")
        for sa, sb in zip(a.slices, b.slices):
            assert list(map(repr, sa.column("k"))) == list(
                map(repr, sb.column("k"))
            )

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ShardError):
            plan_shards(_table(["a"]), 0, "k")

    def test_empty_buckets_keep_columns(self):
        plan = plan_shards(_table(["same"] * 5), 3, "k")
        assert sum(1 for s in plan.slices if len(s)) == 1
        for sl in plan.slices:
            assert list(sl.columns) == ["k", "payload"]


class TestChooseDriverKey:
    def test_prefers_shared_distinct_argument(self):
        assert (
            choose_driver_key(("A.x",), ["P.pubid", "P.pubid"]) == "P.pubid"
        )

    def test_falls_back_to_first_attribute(self):
        assert choose_driver_key(("A.x", "A.y"), ["P.a", "P.b"]) == "A.x"
        assert choose_driver_key(("A.x",), [None]) == "A.x"

    def test_requires_some_attribute(self):
        with pytest.raises(ShardError):
            choose_driver_key((), [None, None])
