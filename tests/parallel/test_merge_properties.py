"""Merge algebra properties (hypothesis): the exactness foundation.

Partition-parallel cubes are exact because full-granularity base
states merge associatively and commutatively for every supported
aggregate, for *any* row partition — not just driver-key ones.  These
properties pin that foundation directly against the serial pass.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.engine.aggregates import (
    agg_avg,
    agg_max,
    agg_min,
    agg_sum,
    count_distinct,
    count_star,
)
from repro.engine.cube import base_states, cube, cube_from_base_states, merge_states
from repro.engine.table import Table
from repro.engine.types import NULL
from repro.parallel import merge_shard_states

dim_values = st.sampled_from(["a", "b", "c"])
measure_values = st.one_of(st.integers(-5, 5), st.just(NULL))

rows = st.lists(
    st.tuples(dim_values, dim_values, measure_values), max_size=40
)

AGG_SETS = st.sampled_from(
    [
        (count_star(alias="n"),),
        (count_distinct("v", alias="cd"),),
        (agg_sum("v", alias="s"), agg_avg("v", alias="a")),
        (agg_min("v", alias="lo"), agg_max("v", alias="hi")),
        (count_star(alias="n"), count_distinct("v", alias="cd")),
    ]
)


def _table(data):
    cols = list(zip(*data)) if data else ((), (), ())
    return Table.from_columns(
        ["d1", "d2", "v"], [list(c) for c in cols], nrows=len(data)
    )


def _canon(table):
    return sorted(tuple(map(repr, r)) for r in table.rows())


def _states(data, aggs):
    return base_states(_table(data), ["d1", "d2"], aggs)


def _value_of(states, aggs, count_only):
    """Render merged states comparably (accumulators lack __eq__)."""
    out = {}
    for key, state in states.items():
        if count_only:
            out[key] = state
        else:
            out[key] = tuple(acc.result() for acc in state)
    return out


@given(data=rows, cut=st.integers(0, 40), aggs=AGG_SETS)
def test_partition_merge_equals_serial(data, cut, aggs):
    """Merging the states of any 2-way row split == one serial pass."""
    cut = min(cut, len(data))
    whole, count_only = _states(data, aggs)
    left, _ = _states(data[:cut], aggs)
    right, _ = _states(data[cut:], aggs)
    merge_states(left, right, aggs, count_only)
    assert _value_of(left, aggs, count_only) == _value_of(
        whole, aggs, count_only
    )


@given(
    data=rows,
    cuts=st.tuples(st.integers(0, 40), st.integers(0, 40)),
    aggs=AGG_SETS,
)
def test_merge_associative_and_commutative(data, cuts, aggs):
    """((A+B)+C) == (A+(B+C)) == ((C+B)+A) for any 3-way split."""
    i, j = sorted(min(c, len(data)) for c in cuts)
    parts = [data[:i], data[i:j], data[j:]]
    _, count_only = _states(data, aggs)

    def reduce_order(order):
        states = [_states(parts[k], aggs)[0] for k in order]
        acc = states[0]
        for nxt in states[1:]:
            merge_states(acc, nxt, aggs, count_only)
        return _value_of(acc, aggs, count_only)

    first = reduce_order([0, 1, 2])
    assert reduce_order([2, 1, 0]) == first
    assert reduce_order([1, 2, 0]) == first


@given(data=rows, shards=st.integers(1, 5), aggs=AGG_SETS)
def test_reduction_tree_matches_serial_cube(data, shards, aggs):
    """merge_shard_states + cube_from_base_states == serial cube, for
    an arbitrary (round-robin, not driver-key) row partition."""
    serial = cube(_table(data), ["d1", "d2"], aggs)
    parts = [data[k::shards] for k in range(shards)]
    partials = []
    count_only = True
    for part in parts:
        states, count_only = _states(part, aggs)
        partials.append(states)
    merged = merge_shard_states(partials, aggs, count_only)
    parallel = cube_from_base_states(merged, ["d1", "d2"], aggs, count_only)
    assert _canon(parallel) == _canon(serial)
