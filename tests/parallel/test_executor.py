"""Fan-out executor behavior: shard-count invariance across datasets
and methods, the scatter-once protocol, graceful degradation when a
worker dies, and the pickle contract the spawn pool depends on."""

import pickle
import warnings

import pytest

from repro.core.explainer import Explainer
from repro.datasets import natality
from repro.datasets import running_example as rex
from repro.engine.aggregates import agg_sum, count_distinct, count_star
from repro.engine.cube import cube as serial_cube
from repro.engine.expressions import Col, Comparison, Const
from repro.engine.table import Table
from repro.engine.types import DUMMY, NULL
from repro.errors import QueryError, ShardError
from repro.obs import get_registry
from repro.parallel import (
    CubeTask,
    ShardedCubeSession,
    merge_shard_states,
    resolve_shard_count,
    resolve_shard_mode,
    shutdown_pools,
)


def _canon(table):
    return sorted(tuple(map(repr, r)) for r in table.rows())


@pytest.fixture
def small_table():
    import random

    rng = random.Random(11)
    n = 400
    return Table.from_columns(
        ["k", "a", "b", "v"],
        [
            [f"k{rng.randrange(37)}" for _ in range(n)],
            [f"a{rng.randrange(5)}" for _ in range(n)],
            [f"b{rng.randrange(3)}" for _ in range(n)],
            [rng.randrange(100) for _ in range(n)],
        ],
        nrows=n,
    )


AGGS = (count_distinct("k", alias="cd"), agg_sum("v", alias="s"))


class TestConfig:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "8")
        assert resolve_shard_count(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert resolve_shard_count() == 4

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shard_count() == 1

    def test_garbage_env_warns_and_serializes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "lots")
        with pytest.warns(RuntimeWarning):
            assert resolve_shard_count() == 1

    def test_mode_validation(self):
        assert resolve_shard_mode("inline") == "inline"
        with pytest.raises(ShardError):
            resolve_shard_mode("threads")


class TestInlineInvariance:
    @pytest.mark.parametrize("shards", (1, 2, 3, 7))
    def test_fingerprint_identical_any_shard_count(
        self, small_table, shards
    ):
        serial = serial_cube(small_table, ["a", "b"], AGGS)
        session = ShardedCubeSession(
            small_table,
            ["a", "b"],
            shards=shards,
            driver_key="k",
            mode="inline",
        )
        assert _canon(session.cube(None, ["a", "b"], AGGS)) == _canon(serial)

    def test_predicate_pushed_to_shards(self, small_table):
        where = Comparison("!=", Col("b"), Const("b0"))
        serial = serial_cube(small_table.filter(where), ["a"], AGGS)
        session = ShardedCubeSession(
            small_table, ["a"], shards=3, driver_key="k", mode="inline"
        )
        assert _canon(session.cube(where, ["a"], AGGS)) == _canon(serial)

    def test_count_star_fast_path(self, small_table):
        aggs = (count_star(alias="n"),)
        serial = serial_cube(small_table, ["a", "b"], aggs)
        session = ShardedCubeSession(
            small_table, ["a", "b"], shards=4, driver_key="k", mode="inline"
        )
        assert _canon(session.cube(None, ["a", "b"], aggs)) == _canon(serial)

    def test_data_errors_still_raise(self, small_table):
        session = ShardedCubeSession(
            small_table, ["a"], shards=2, driver_key="k", mode="inline"
        )
        with pytest.raises(QueryError):
            session.cube(None, ["a", "nope"], AGGS)


class TestExplainerInvariance:
    @pytest.mark.parametrize("shards", (2, 3))
    def test_natality_pipeline(self, monkeypatch, shards):
        monkeypatch.setenv("REPRO_SHARD_MODE", "inline")
        db = natality.generate(rows=600, seed=5)
        question = natality.q_race_question()
        attrs = natality.default_attributes("race")
        serial = Explainer(db, question, attrs, shards=1)
        sharded = Explainer(db, question, attrs, shards=shards)
        assert (
            sharded.explanation_table("cube").content_fingerprint()
            == serial.explanation_table("cube").content_fingerprint()
        )

    def test_indexed_method_ignores_shards(self, monkeypatch):
        # Non-cube methods run per-candidate program P; the shards knob
        # must be inert (and harmless) there.
        monkeypatch.setenv("REPRO_SHARD_MODE", "inline")
        from repro.cli import _demo_setup

        db, question, attrs = _demo_setup("running-example", 0, 0.0, 0)
        serial = Explainer(db, question, attrs, shards=1)
        sharded = Explainer(db, question, attrs, shards=3)
        assert (
            sharded.explanation_table("indexed").content_fingerprint()
            == serial.explanation_table("indexed").content_fingerprint()
        )


class TestMergeTreeChecks:
    def test_merges_counts_exactly(self):
        merged = merge_shard_states(
            [{("x",): 3, ("y",): 2}, {("x",): 1}, {("z",): 5}], (), True
        )
        assert merged == {("x",): 4, ("y",): 2, ("z",): 5}

    def test_empty_input(self):
        assert merge_shard_states([], (), True) == {}

    def test_detects_lossy_merge(self, monkeypatch):
        """A merge that drops a group must trip the conservation check
        and raise ShardError rather than emit a silently wrong cube."""
        from repro.parallel import executor

        def lossy_merge(dst, src, aggregates, count_only):
            src.pop(("y",), None)
            for key, count in src.items():
                dst[key] = dst.get(key, 0) + count

        monkeypatch.setattr(executor, "merge_states", lossy_merge)
        with pytest.raises(ShardError, match="lost or invented groups"):
            merge_shard_states(
                [{("x",): 3}, {("y",): 2}], (), True
            )


class TestProcessPool:
    """Real spawn-pool round trips.  Kept to one small table and a
    handful of calls: each worker is a fresh interpreter."""

    @pytest.fixture(autouse=True)
    def _teardown_pools(self):
        yield
        shutdown_pools()

    def test_process_matches_serial_and_reuses_scatter(self, small_table):
        serial = serial_cube(small_table, ["a"], AGGS)
        session = ShardedCubeSession(
            small_table, ["a"], shards=2, driver_key="k", mode="process"
        )
        assert _canon(session.cube(None, ["a"], AGGS)) == _canon(serial)
        assert session._scattered
        # Second call ships only predicates (scatter-once protocol).
        where = Comparison("=", Col("b"), Const("b1"))
        expected = serial_cube(small_table.filter(where), ["a"], AGGS)
        assert _canon(session.cube(where, ["a"], AGGS)) == _canon(expected)

    def test_worker_crash_degrades_to_serial(self, small_table):
        """Kill one shard worker mid-run: the build must fall back to
        serial execution with a RuntimeWarning, increment the fallback
        counter, and produce a fingerprint-identical table."""
        registry = get_registry()
        counter = registry.counter(
            "repro_shard_fallbacks_total",
            labels={"reason": "BrokenProcessPool"},
        )
        before = counter.value
        serial = serial_cube(small_table, ["a"], AGGS)
        session = ShardedCubeSession(
            small_table, ["a"], shards=2, driver_key="k", mode="process"
        )
        session._crash_shards = {1}
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = session.cube(None, ["a"], AGGS)
        assert _canon(result) == _canon(serial)
        assert counter.value == before + 1
        # The discarded pool is rebuilt transparently on the next call.
        assert _canon(session.cube(None, ["a"], AGGS)) == _canon(serial)


class TestPickleContract:
    def test_sentinels_survive_round_trip(self):
        assert pickle.loads(pickle.dumps(NULL)) is NULL
        assert pickle.loads(pickle.dumps(DUMMY)) is DUMMY

    def test_cube_task_round_trips(self):
        task = CubeTask(
            token="t-1",
            shard=0,
            dimensions=("a",),
            aggregates=AGGS,
            where=Comparison("=", Col("b"), Const(NULL)),
            columns=("a", "b"),
            data=((1, NULL), ("x", DUMMY)),
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone.dimensions == ("a",)
        assert clone.data[0][1] is NULL
        assert clone.data[1][1] is DUMMY
        assert clone.aggregates[0].kind == "count_distinct"
