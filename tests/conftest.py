"""Shared pytest/hypothesis configuration for the whole test tree.

Two registered hypothesis profiles replace the per-file ad-hoc
``settings(...)`` blocks (individual suites now tune only
``max_examples``; everything else inherits from the loaded profile):

* ``ci`` (the default) — **derandomized** so a red CI run is exactly
  reproducible from the log, with the per-example ``deadline``
  explicitly disabled: several suites drive full fixpoint/cube runs
  whose duration varies by an order of magnitude across CI machines,
  so any wall-clock deadline would flake.  ``HealthCheck.too_slow``
  is suppressed for the same reason.
* ``dev`` — random exploration (fresh examples every run, the point
  of running locally) at verbose verbosity so shrinking progress is
  visible; same deadline policy.

Select with ``HYPOTHESIS_PROFILE=dev pytest tests/property``.
"""

import os

from hypothesis import HealthCheck, Verbosity, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    verbosity=Verbosity.verbose,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
