"""Tests for μ_aggr and μ_interv on the running example."""

import pytest

from repro.core.degrees import DegreeEvaluator, hybrid_degree
from repro.core.numquery import AggregateQuery, ratio_query, single_query
from repro.core.predicates import parse_explanation
from repro.core.question import UserQuestion
from repro.datasets import running_example as rex
from repro.engine.aggregates import count_distinct, count_star
from repro.engine.expressions import Col, Comparison, Const
from repro.engine.types import is_null


def sigmod_query():
    """count(distinct pubid) where venue = SIGMOD."""
    return single_query(
        AggregateQuery(
            "q",
            count_distinct("Publication.pubid", "q"),
            Comparison("=", Col("Publication.venue"), Const("SIGMOD")),
        )
    )


class TestAggravation:
    def test_high_direction_positive_sign(self):
        db = rex.database()
        question = UserQuestion.high(sigmod_query())
        ev = DegreeEvaluator(db, question)
        phi = parse_explanation("Author.dom = 'com'")
        # Both SIGMOD papers have a com author: Q(D_phi) = 2.
        assert ev.aggravation(phi) == 2

    def test_low_direction_flips_sign(self):
        db = rex.database()
        question = UserQuestion.low(sigmod_query())
        ev = DegreeEvaluator(db, question)
        phi = parse_explanation("Author.dom = 'com'")
        assert ev.aggravation(phi) == -2

    def test_aggravation_of_nonmatching_phi(self):
        db = rex.database()
        question = UserQuestion.high(sigmod_query())
        ev = DegreeEvaluator(db, question)
        phi = parse_explanation("Author.name = 'NOBODY'")
        assert ev.aggravation(phi) == 0

    def test_aggravation_values(self):
        db = rex.database()
        question = UserQuestion.high(sigmod_query())
        ev = DegreeEvaluator(db, question)
        phi = parse_explanation("Publication.year = 2001")
        assert ev.aggravation_values(phi) == {"q": 2}


class TestIntervention:
    def test_high_direction_negative_sign(self):
        db = rex.database()
        question = UserQuestion.high(sigmod_query())
        ev = DegreeEvaluator(db, question)
        phi = parse_explanation("Author.name = 'RR'")
        # Removing RR kills P1 and P3 (back-and-forth): Q(D-Δ)=0.
        assert ev.intervention(phi) == 0

    def test_partial_intervention(self):
        db = rex.database()
        question = UserQuestion.high(sigmod_query())
        ev = DegreeEvaluator(db, question)
        phi = parse_explanation(
            "Author.name = 'JG' AND Publication.year = 2001"
        )
        # Only P1 dies; P3 remains: Q(D-Δ) = 1, sign -1.
        assert ev.intervention(phi) == -1

    def test_low_direction(self):
        db = rex.database()
        question = UserQuestion.low(sigmod_query())
        ev = DegreeEvaluator(db, question)
        phi = parse_explanation(
            "Author.name = 'JG' AND Publication.year = 2001"
        )
        assert ev.intervention(phi) == 1

    def test_q_on_d(self):
        db = rex.database()
        ev = DegreeEvaluator(db, UserQuestion.high(sigmod_query()))
        assert ev.q_on_d == 2


class TestScore:
    def test_score_bundle(self):
        db = rex.database()
        question = UserQuestion.high(sigmod_query())
        ev = DegreeEvaluator(db, question)
        phi = parse_explanation(
            "Author.name = 'JG' AND Publication.year = 2001"
        )
        score = ev.score(phi)
        assert score.mu_aggr == 1  # only P1 satisfies phi among SIGMOD
        assert score.mu_interv == -1
        assert score.q_original == {"q": 2}
        assert score.delta_size == 3  # s1, s2, t1

    def test_intervention_result_embedded(self):
        db = rex.database()
        ev = DegreeEvaluator(db, UserQuestion.high(sigmod_query()))
        score = ev.score(parse_explanation("Author.name = 'RR'"))
        assert score.intervention.iterations >= 1
        assert score.intervention.size == score.delta_size


class TestHybridDegree:
    def test_mixes_the_two_degrees(self):
        db = rex.database()
        ev = DegreeEvaluator(db, UserQuestion.high(sigmod_query()))
        score = ev.score(parse_explanation("Author.name = 'RR'"))
        mid = hybrid_degree(score, weight=0.5)
        assert mid == pytest.approx(0.5 * score.mu_interv + 0.5 * score.mu_aggr)

    def test_weight_extremes(self):
        db = rex.database()
        ev = DegreeEvaluator(db, UserQuestion.high(sigmod_query()))
        score = ev.score(parse_explanation("Author.name = 'RR'"))
        assert hybrid_degree(score, weight=1.0) == score.mu_interv
        assert hybrid_degree(score, weight=0.0) == score.mu_aggr

    def test_null_propagates(self):
        db = rex.database()
        # ratio with zero denominator on aggravation side -> inf, not
        # NULL; construct a NULL via 0/0 (no epsilon).
        q1 = AggregateQuery(
            "q1", count_star("q1"),
            Comparison("=", Col("Author.name"), Const("NOBODY")),
        )
        q2 = AggregateQuery(
            "q2", count_star("q2"),
            Comparison("=", Col("Author.name"), Const("NOBODY")),
        )
        question = UserQuestion.high(ratio_query(q1, q2))
        ev = DegreeEvaluator(db, question)
        score = ev.score(parse_explanation("Author.name = 'JG'"))
        assert is_null(score.mu_aggr)
        assert is_null(hybrid_degree(score))
