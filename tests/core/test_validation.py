"""Tests for the pre-flight validation module."""


from repro.core import AggregateQuery, UserQuestion, single_query
from repro.core.validation import validate_database, validate_question
from repro.datasets import chains, natality
from repro.datasets import running_example as rex
from repro.engine.aggregates import count_distinct, count_star
from repro.engine.expressions import Col, Comparison, Const


def sigmod_question():
    return UserQuestion.high(
        single_query(
            AggregateQuery(
                "q",
                count_distinct("Publication.pubid", "q"),
                Comparison("=", Col("Publication.venue"), Const("SIGMOD")),
            )
        )
    )


class TestValidateDatabase:
    def test_clean_database_passes(self):
        report = validate_database(rex.database())
        assert report.ok
        names = [c.name for c in report.checks]
        assert "referential integrity" in names
        assert "semijoin-reduced" in names

    def test_dangling_fk_fails(self):
        db = rex.database()
        db.relation("Authored").insert(("GHOST", "P1"))
        report = validate_database(db)
        assert not report.ok
        failing = [c for c in report.checks if not c.passed]
        assert any("integrity" in c.name for c in failing)

    def test_unreduced_database_fails(self):
        db = rex.database()
        db.relation("Author").insert(("A9", "XX", "Y.edu", "edu"))
        report = validate_database(db)
        assert not report.ok
        failing = [c for c in report.checks if not c.passed]
        assert any("semijoin" in c.name for c in failing)
        assert any("dangling" in c.detail for c in failing)

    def test_prop_311_bound_reported(self):
        report = validate_database(rex.database())
        bound = next(c for c in report.checks if c.name == "convergence bound")
        assert "Prop 3.11" in bound.detail
        assert "4" in bound.detail  # 2*1 + 2

    def test_chain_schema_bound_degrades(self):
        db = chains.example_37_database(2)
        report = validate_database(db)
        bound = next(c for c in report.checks if c.name == "convergence bound")
        assert "Prop 3.4" in bound.detail

    def test_render(self):
        text = validate_database(rex.database()).render()
        assert "validation: OK" in text
        assert "[PASS]" in text


class TestValidateQuestion:
    def test_good_question(self):
        report = validate_question(
            rex.database(),
            sigmod_question(),
            ["Author.name", "Publication.year"],
        )
        assert report.ok
        query = next(c for c in report.checks if c.name == "query")
        assert "Q(D) = 2" in query.detail

    def test_additive_recommends_cube(self):
        report = validate_question(rex.database(), sigmod_question())
        additivity = next(c for c in report.checks if c.name == "additivity")
        assert "cube" in additivity.detail

    def test_non_additive_recommends_indexed(self):
        question = UserQuestion.high(
            single_query(AggregateQuery("q", count_star("q")))
        )
        report = validate_question(rex.database(), question)
        additivity = next(c for c in report.checks if c.name == "additivity")
        assert "indexed" in additivity.detail
        assert report.ok  # non-additivity is advice, not failure

    def test_unknown_attribute_fails(self):
        report = validate_question(
            rex.database(), sigmod_question(), ["Author.zzz"]
        )
        assert not report.ok
        attrs = next(c for c in report.checks if c.name == "attributes")
        assert "unknown" in attrs.detail

    def test_natality_question(self):
        db = natality.generate(rows=300, seed=1)
        report = validate_question(
            db,
            natality.q_race_question(),
            natality.default_attributes("race"),
        )
        assert report.ok


class TestCliCheck:
    def test_check_command(self, capsys):
        from repro.cli import main

        assert main(["check", "running-example"]) == 0
        out = capsys.readouterr().out
        assert "validation: OK" in out
        assert "Q(D)" in out
