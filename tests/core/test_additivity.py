"""Tests for intervention-additivity analysis (Definition 4.2)."""

import pytest

from repro.core.additivity import analyze_additivity
from repro.core.numquery import AggregateQuery, ratio_query, single_query
from repro.datasets import chains
from repro.datasets import natality
from repro.datasets import running_example as rex
from repro.engine.aggregates import (
    agg_avg,
    agg_max,
    agg_sum,
    count_distinct,
    count_star,
)
from repro.errors import NotAdditiveError


def single(spec, where=None):
    return single_query(AggregateQuery("q", spec, where))


class TestNoBackAndForth:
    def test_count_star_additive(self):
        db = rex.database(back_and_forth=False)
        assert analyze_additivity(db, single(count_star("q"))).additive

    def test_count_additive(self):
        from repro.engine.aggregates import AggregateSpec

        db = rex.database(back_and_forth=False)
        q = single(AggregateSpec("count", "Publication.year", "q"))
        assert analyze_additivity(db, q).additive

    def test_sum_additive(self):
        db = rex.database(back_and_forth=False)
        q = single(agg_sum("Publication.year", "q"))
        assert analyze_additivity(db, q).additive

    def test_avg_never_additive(self):
        db = rex.database(back_and_forth=False)
        q = single(agg_avg("Publication.year", "q"))
        assert not analyze_additivity(db, q).additive

    def test_max_never_additive(self):
        db = rex.database(back_and_forth=False)
        q = single(agg_max("Publication.year", "q"))
        assert not analyze_additivity(db, q).additive

    def test_single_table_count_star(self):
        db = natality.generate(rows=100, seed=1)
        assert analyze_additivity(db, single(count_star("q"))).additive

    def test_count_distinct_own_pk_single_table(self):
        db = natality.generate(rows=100, seed=1)
        q = single(count_distinct("Birth.bid", "q"))
        assert analyze_additivity(db, q).additive

    def test_count_distinct_non_pk_not_additive(self):
        db = natality.generate(rows=100, seed=1)
        q = single(count_distinct("Birth.race", "q"))
        assert not analyze_additivity(db, q).additive


class TestWithBackAndForth:
    def test_count_star_not_additive(self):
        db = rex.database()
        assert not analyze_additivity(db, single(count_star("q"))).additive

    def test_count_distinct_pubid_additive(self):
        """Footnote 11: the b&f key + unique Authored per U row."""
        db = rex.database()
        q = single(count_distinct("Publication.pubid", "q"))
        report = analyze_additivity(db, q)
        assert report.additive
        assert "footnote 11" in report.per_aggregate[0].reason

    def test_count_distinct_author_id_not_additive(self):
        """No b&f key points at Author and authors repeat across rows."""
        db = rex.database()
        q = single(count_distinct("Author.id", "q"))
        assert not analyze_additivity(db, q).additive

    def test_unqualified_argument_not_additive(self):
        db = rex.database()
        q = single(count_distinct("pubid", "q"))
        assert not analyze_additivity(db, q).additive

    def test_chain_schema_count_distinct(self):
        """Two b&f keys into R1/R2; R3 unique per row -> additive for
        count(distinct R1.a)."""
        db, _ = chains.example_37(2)
        q = single(count_distinct("R1.a", "q"))
        report = analyze_additivity(db, q)
        assert report.additive

    def test_sum_with_back_and_forth_not_additive(self):
        db = rex.database()
        q = single(agg_sum("Publication.year", "q"))
        assert not analyze_additivity(db, q).additive


class TestReportMechanics:
    def test_mixed_query_not_additive(self):
        db = rex.database()
        q1 = AggregateQuery("q1", count_distinct("Publication.pubid", "q1"))
        q2 = AggregateQuery("q2", count_star("q2"))
        query = ratio_query(q1, q2)
        report = analyze_additivity(db, query)
        assert not report.additive
        verdicts = {a.name: a.additive for a in report.per_aggregate}
        assert verdicts == {"q1": True, "q2": False}

    def test_explain_text(self):
        db = rex.database()
        report = analyze_additivity(db, single(count_star("q")))
        text = report.explain()
        assert "NOT" in text and "q" in text

    def test_raise_if_not_additive(self):
        db = rex.database()
        report = analyze_additivity(db, single(count_star("q")))
        with pytest.raises(NotAdditiveError):
            report.raise_if_not_additive()

    def test_no_raise_when_additive(self):
        db = rex.database()
        q = single(count_distinct("Publication.pubid", "q"))
        analyze_additivity(db, q).raise_if_not_additive()

    def test_repeated_source_rows_break_footnote11(self):
        """If Authored tuples repeated across universal rows, footnote
        11 would not apply.  Construct such a schema: the geo-dblp
        shape where Authored joins a chain below it keeps uniqueness,
        so instead check the negative branch directly on a 2-relation
        schema where the b&f *source* is the joined-many side."""
        from repro.engine.database import Database
        from repro.engine.schema import DatabaseSchema, foreign_key, make_schema

        schema = DatabaseSchema(
            (
                make_schema("Item", ["iid", "oid"], ["iid"]),
                make_schema("Order_", ["oid"], ["oid"]),
                make_schema("Part", ["pid", "iid"], ["pid"]),
            ),
            (
                foreign_key("Item", "oid", "Order_", "oid", back_and_forth=True),
                foreign_key("Part", "iid", "Item", "iid"),
            ),
        )
        db = Database(
            schema,
            {
                "Order_": [("o1",)],
                "Item": [("i1", "o1")],
                "Part": [("p1", "i1"), ("p2", "i1")],  # i1 occurs twice in U
            },
        )
        q = single(count_distinct("Order_.oid", "q"))
        report = analyze_additivity(db, q)
        assert not report.additive
        assert "repeat" in report.per_aggregate[0].reason
