"""Tests for the hybrid degree column and hybrid ranking."""

import pytest

from repro.core.cube_algorithm import (
    MU_AGGR,
    MU_HYBRID,
    MU_INTERV,
    ExplanationTable,
    add_hybrid_column,
)
from repro.core.explainer import Explainer
from repro.datasets import natality
from repro.engine.table import Table
from repro.engine.types import NULL, is_null
from repro.errors import ExplanationError


def make_m(rows):
    table = Table(
        ["R.a", "v_q", MU_INTERV, MU_AGGR],
        [(a, 0, mi, ma) for a, mi, ma in rows],
    )
    return ExplanationTable(
        table=table,
        attributes=("R.a",),
        aggregate_names=("q",),
        q_original={"q": 0},
    )


class TestAddHybridColumn:
    def test_column_added(self):
        m = add_hybrid_column(make_m([("x", 1.0, 10.0), ("y", 2.0, 5.0)]))
        assert m.table.has_column(MU_HYBRID)

    def test_rank_combination(self):
        # x: interv rank 2, aggr rank 1; y: interv rank 1, aggr rank 2.
        m = add_hybrid_column(
            make_m([("x", 1.0, 10.0), ("y", 2.0, 5.0)]), weight=0.5
        )
        rows = {r[0]: r[m.table.position(MU_HYBRID)] for r in m.table.rows()}
        assert rows["x"] == rows["y"] == -1.5

    def test_weight_one_is_intervention_order(self):
        m = add_hybrid_column(
            make_m([("x", 1.0, 10.0), ("y", 2.0, 5.0)]), weight=1.0
        )
        rows = {r[0]: r[m.table.position(MU_HYBRID)] for r in m.table.rows()}
        assert rows["y"] > rows["x"]  # y has the better intervention rank

    def test_weight_zero_is_aggravation_order(self):
        m = add_hybrid_column(
            make_m([("x", 1.0, 10.0), ("y", 2.0, 5.0)]), weight=0.0
        )
        rows = {r[0]: r[m.table.position(MU_HYBRID)] for r in m.table.rows()}
        assert rows["x"] > rows["y"]

    def test_missing_degree_gives_null(self):
        m = add_hybrid_column(make_m([("x", NULL, 10.0), ("y", 2.0, 5.0)]))
        rows = {r[0]: r[m.table.position(MU_HYBRID)] for r in m.table.rows()}
        assert is_null(rows["x"])
        assert not is_null(rows["y"])

    def test_invalid_weight(self):
        with pytest.raises(ExplanationError):
            add_hybrid_column(make_m([("x", 1.0, 1.0)]), weight=1.5)

    def test_idempotent(self):
        m = add_hybrid_column(make_m([("x", 1.0, 1.0)]))
        assert add_hybrid_column(m) is m

    def test_scale_invariance(self):
        """The rank hybrid ignores the raw magnitudes — the reason it
        exists (aggravation ratios can be 10^6 while intervention
        degrees are ~10^2)."""
        small = add_hybrid_column(
            make_m([("x", 1.0, 10.0), ("y", 2.0, 5.0)])
        )
        big = add_hybrid_column(
            make_m([("x", 1.0, 10.0e6), ("y", 2.0, 5.0e6)])
        )
        pos = small.table.position(MU_HYBRID)
        small_rows = {r[0]: r[pos] for r in small.table.rows()}
        big_rows = {r[0]: r[pos] for r in big.table.rows()}
        assert small_rows == big_rows


class TestExplainerHybrid:
    def test_top_by_hybrid(self):
        db = natality.generate(rows=2000, seed=4)
        explainer = Explainer(
            db,
            natality.q_race_question(),
            ["Birth.marital", "Birth.tobacco"],
        )
        top = explainer.top(3, by="hybrid")
        assert len(top) == 3
        degrees = [r.degree for r in top]
        assert degrees == sorted(degrees, reverse=True)

    def test_hybrid_weight_extremes_match_components(self):
        """weight=1 ranks purely by intervention rank; equal-degree
        ties may break differently than the intervention ranking's
        generality tie-break, so compare the underlying μ_interv
        values rather than explanation identities."""
        db = natality.generate(rows=2000, seed=4)
        explainer = Explainer(
            db,
            natality.q_race_question(),
            ["Birth.marital", "Birth.tobacco"],
        )
        m = explainer.explanation_table("cube")
        interv_pos = m.table.position(MU_INTERV)
        hybrid_1 = explainer.top(3, by="hybrid", hybrid_weight=1.0)
        interv = explainer.top(3, by="intervention", strategy="no_minimal")
        hybrid_degrees = sorted(r.row[interv_pos] for r in hybrid_1)
        interv_degrees = sorted(r.degree for r in interv)
        assert hybrid_degrees == pytest.approx(interv_degrees)
