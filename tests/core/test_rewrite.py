"""Tests for the Section 4.1 back-and-forth elimination rewrite."""

import pytest

from repro.core.numquery import AggregateQuery, single_query
from repro.core.predicates import (
    AtomicPredicate,
    DisjunctivePredicate,
    Explanation,
    parse_explanation,
)
from repro.core.rewrite import PAD, rewrite_back_and_forth
from repro.datasets import running_example as rex
from repro.engine.aggregates import count_star
from repro.engine.universal import universal_table
from repro.errors import ExplanationError


@pytest.fixture
def rewritten():
    return rewrite_back_and_forth(rex.database())


class TestSchemaShape:
    def test_copies_created(self, rewritten):
        names = rewritten.database.schema.relation_names
        assert "Author__1" in names and "Authored__1" in names
        assert "Author" not in names
        assert "Publication" in names

    def test_fanout_observed(self, rewritten):
        # Every publication in Figure 3 has exactly 2 authors.
        assert rewritten.fanout == 2

    def test_no_back_and_forth_left(self, rewritten):
        assert not rewritten.database.schema.has_back_and_forth

    def test_publication_gains_kad_columns(self, rewritten):
        pub = rewritten.database.schema.relation("Publication")
        assert "kad_1" in pub.attribute_names
        assert "kad_2" in pub.attribute_names

    def test_integrity_holds(self, rewritten):
        rewritten.database.check_integrity()

    def test_copies_of(self, rewritten):
        assert rewritten.copies_of("Author") == ["Author__1", "Author__2"]
        with pytest.raises(ExplanationError):
            rewritten.copies_of("Publication")


class TestUniversalShape:
    def test_one_universal_row_per_publication(self, rewritten):
        """The rewrite's purpose: count(*) = count(distinct pubid)."""
        u = universal_table(rewritten.database)
        assert len(u) == 3  # P1, P2, P3

    def test_count_star_becomes_additive(self, rewritten):
        from repro.core.additivity import analyze_additivity

        q = single_query(AggregateQuery("q", count_star("q")))
        report = analyze_additivity(rewritten.database, q)
        assert report.additive

    def test_each_row_carries_both_authors(self, rewritten):
        u = universal_table(rewritten.database)
        name1 = u.position("Author__1.name")
        name2 = u.position("Author__2.name")
        names_by_pub = {}
        pub = u.position("Publication.pubid")
        for row in u.rows():
            names_by_pub[row[pub]] = {row[name1], row[name2]}
        assert names_by_pub["P1"] == {"JG", "RR"}
        assert names_by_pub["P2"] == {"JG", "CM"}
        assert names_by_pub["P3"] == {"RR", "CM"}


class TestPredicateTranslation:
    def test_atom_on_copied_relation_becomes_disjunction(self, rewritten):
        atom = AtomicPredicate("Author", "name", "=", "JG")
        translated = rewritten.rewrite_atom(atom)
        assert isinstance(translated, DisjunctivePredicate)
        assert len(translated.disjuncts) == 2

    def test_atom_on_uncopied_relation_passes_through(self, rewritten):
        atom = AtomicPredicate("Publication", "year", "=", 2001)
        translated = rewritten.rewrite_atom(atom)
        assert isinstance(translated, Explanation)

    def test_translated_predicate_selects_same_publications(self, rewritten):
        """σ_φ' over the rewritten universal table finds exactly the
        publications whose original universal rows satisfied φ."""
        original_u = universal_table(rex.database())
        rewritten_u = universal_table(rewritten.database)
        phi = parse_explanation("Author.name = 'JG'")
        translated = rewritten.rewrite_explanation(phi)

        pub_pos = original_u.position("Publication.pubid")
        original_pubs = {
            row[pub_pos]
            for row in original_u.rows()
            if phi.evaluate(original_u.environment(row))
        }
        pub_pos2 = rewritten_u.position("Publication.pubid")
        expr = translated.to_expression()
        rewritten_pubs = {
            row[pub_pos2]
            for row in rewritten_u.rows()
            if expr.evaluate(rewritten_u.environment(row))
        }
        assert rewritten_pubs == original_pubs == {"P1", "P2"}

    def test_conjunction_mixing_copied_and_fixed(self, rewritten):
        phi = parse_explanation(
            "Author.name = 'JG' AND Publication.year = 2001"
        )
        translated = rewritten.rewrite_explanation(phi)
        assert isinstance(translated, DisjunctivePredicate)
        rewritten_u = universal_table(rewritten.database)
        pub_pos = rewritten_u.position("Publication.pubid")
        expr = translated.to_expression()
        pubs = {
            row[pub_pos]
            for row in rewritten_u.rows()
            if expr.evaluate(rewritten_u.environment(row))
        }
        assert pubs == {"P1"}

    def test_fixed_only_conjunction_passthrough(self, rewritten):
        phi = parse_explanation("Publication.year = 2001")
        assert rewritten.rewrite_explanation(phi) is phi


class TestPadding:
    def test_uneven_fanout_padded(self):
        db = rex.database()
        # Give P1 a third author so fanout becomes 3 and other
        # publications need padding.
        db.relation("Author").insert(("A4", "ZZ", "Z.edu", "edu"))
        db.relation("Authored").insert(("A4", "P1"))
        rewritten = rewrite_back_and_forth(db)
        assert rewritten.fanout == 3
        u = universal_table(rewritten.database)
        assert len(u) == 3
        # P2's third slot is a pad row.
        name3 = u.position("Author__3.name")
        pub = u.position("Publication.pubid")
        by_pub = {row[pub]: row[name3] for row in u.rows()}
        assert by_pub["P2"] == PAD

    def test_pad_rows_never_satisfy_predicates(self):
        db = rex.database()
        db.relation("Author").insert(("A4", "ZZ", "Z.edu", "edu"))
        db.relation("Authored").insert(("A4", "P1"))
        rewritten = rewrite_back_and_forth(db)
        phi = parse_explanation("Author.name = 'ZZ'")
        translated = rewritten.rewrite_explanation(phi)
        u = universal_table(rewritten.database)
        expr = translated.to_expression()
        matches = [
            row
            for row in u.rows()
            if expr.evaluate(u.environment(row))
        ]
        assert len(matches) == 1  # only P1

    def test_explicit_fanout_too_small(self):
        with pytest.raises(ExplanationError, match="fanout"):
            rewrite_back_and_forth(rex.database(), fanout=1)

    def test_explicit_fanout_larger(self):
        rewritten = rewrite_back_and_forth(rex.database(), fanout=3)
        assert rewritten.fanout == 3
        u = universal_table(rewritten.database)
        assert len(u) == 3


class TestPreconditions:
    def test_requires_exactly_one_bf_key(self):
        from repro.datasets import chains

        db, _ = chains.example_37(1)
        with pytest.raises(ExplanationError, match="exactly one"):
            rewrite_back_and_forth(db)

    def test_no_bf_key_rejected(self):
        with pytest.raises(ExplanationError):
            rewrite_back_and_forth(rex.database(back_and_forth=False))


class TestUnreferencedTarget:
    def test_publication_without_authors_gets_pad_slots(self):
        """A target tuple with no referencing tuples (only possible on
        a non-semijoin-reduced input) is padded on every slot rather
        than dropped — matching the 'replace with projections' reading
        would drop it, but the rewrite keeps the data lossless and the
        pad rows never satisfy predicates."""
        db = rex.database()
        db.relation("Publication").insert(("P9", 1999, "PODS"))
        rewritten = rewrite_back_and_forth(db)
        rewritten.database.check_integrity()
        pubs = rewritten.database.relation("Publication")
        row = next(r for r in pubs if r[0] == "P9")
        assert row is not None
        from repro.engine.universal import universal_table

        u = universal_table(rewritten.database)
        pub_pos = u.position("Publication.pubid")
        p9_rows = [r for r in u.rows() if r[pub_pos] == "P9"]
        assert len(p9_rows) == 1  # padded, joins once
        name_pos = u.position("Author__1.name")
        assert p9_rows[0][name_pos] == PAD
