"""Every worked example in the paper, as an executable test.

* Example 2.8 — the asymmetric intervention on the running example,
  and its symmetric variant when the key is standard;
* Example 2.9 — semijoin-reduction forces a unique minimal
  intervention (= the whole database);
* Example 2.10 — non-monotonicity: inserting tuples *shrinks* Δ^φ;
* Example 3.7 / Figure 5 — the Θ(n) iteration chain;
* Example 4.1 — the cube table row for row (in tests/engine/test_cube);
* footnote 11 — count(distinct pubid) is intervention-additive on the
  running example.
"""

import pytest

from repro.core import (
    DegreeEvaluator,
    UserQuestion,
    analyze_additivity,
    compute_intervention,
    is_valid_intervention,
    parse_explanation,
    single_query,
)
from repro.core.numquery import AggregateQuery
from repro.engine.aggregates import count_distinct, count_star
from repro.engine.database import Delta
from repro.datasets import chains
from repro.datasets import running_example as rex

PHI_28 = parse_explanation("Author.name = 'JG' AND Publication.year = 2001")


class TestExample28:
    """Example 2.8: Δ_Author = ∅, Δ_Authored = {s1, s2}, Δ_Pub = {t1}."""

    def test_back_and_forth_intervention(self):
        db = rex.database()
        result = compute_intervention(db, PHI_28)
        assert result.delta.rows_for("Author") == frozenset()
        assert result.delta.rows_for("Authored") == {rex.S1, rex.S2}
        assert result.delta.rows_for("Publication") == {rex.T1}

    def test_standard_key_intervention_is_smaller(self):
        """With both keys standard, only s1 is deleted."""
        db = rex.database(back_and_forth=False)
        result = compute_intervention(db, PHI_28)
        assert result.delta.rows_for("Author") == frozenset()
        assert result.delta.rows_for("Authored") == {rex.S1}
        assert result.delta.rows_for("Publication") == frozenset()

    def test_intervention_is_valid(self):
        db = rex.database()
        result = compute_intervention(db, PHI_28)
        assert is_valid_intervention(db, PHI_28, result.delta)

    def test_intervention_is_minimal_exhaustively(self):
        """Δ^φ ⊆ Δ' for every valid Δ' (checked over singleton-removals).

        Removing any single tuple from Δ^φ must break validity.
        """
        db = rex.database()
        delta = compute_intervention(db, PHI_28).delta
        for name in db.schema.relation_names:
            for row in delta.rows_for(name):
                parts = delta.parts()
                parts[name] = parts[name] - {row}
                smaller = Delta(db.schema, parts)
                assert not is_valid_intervention(db, PHI_28, smaller)

    def test_author_jg_survives(self):
        """The causal asymmetry: the 2001 paper dies, its author lives."""
        db = rex.database()
        delta = compute_intervention(db, PHI_28).delta
        residual = db.subtract(delta)
        assert rex.R1 in residual.relation("Author")
        assert rex.T1 not in residual.relation("Publication")


class TestExample29:
    """Example 2.9: without semijoin reduction two minimal interventions
    would exist; with it, Δ^φ = D."""

    PHI = parse_explanation("R1.x = 'a' AND R2.y = 'b' AND R3.z = 'c'")

    def test_minimal_intervention_is_whole_database(self):
        db = rex.example_29_database()
        result = compute_intervention(db, self.PHI)
        assert result.size == db.total_rows()

    def test_partial_deletions_are_invalid(self):
        """Both 'competing' minimal candidates from the example fail
        the semijoin-reduction condition."""
        db = rex.example_29_database()
        for candidate in (
            Delta(db.schema, {"S1": [("a", "b")]}),
            Delta(db.schema, {"S2": [("b", "c")]}),
        ):
            assert not is_valid_intervention(db, self.PHI, candidate)


class TestExample210:
    """Example 2.10: Δ^φ is non-monotone in the input database."""

    PHI = TestExample29.PHI

    def test_delta_shrinks_when_database_grows(self):
        small = rex.example_29_database()
        big = rex.example_210_database()
        delta_small = compute_intervention(small, self.PHI).delta
        delta_big = compute_intervention(big, self.PHI).delta
        assert delta_small.size() == 5
        assert delta_big.size() == 3
        # The paper's exact delta: {S1(a,b), R2(b), S2(b,c)}.
        assert delta_big.rows_for("S1") == {("a", "b")}
        assert delta_big.rows_for("R2") == {("b",)}
        assert delta_big.rows_for("S2") == {("b", "c")}
        assert delta_big.rows_for("R1") == frozenset()
        assert delta_big.rows_for("R3") == frozenset()

    def test_r1a_and_r3c_survive(self):
        big = rex.example_210_database()
        delta = compute_intervention(big, self.PHI).delta
        residual = big.subtract(delta)
        assert ("a",) in residual.relation("R1")
        assert ("c",) in residual.relation("R3")

    def test_big_delta_is_valid(self):
        big = rex.example_210_database()
        delta = compute_intervention(big, self.PHI).delta
        assert is_valid_intervention(big, self.PHI, delta)


class TestExample37:
    """The Θ(n) chain (Figure 5)."""

    @pytest.mark.parametrize("p", [1, 2, 3, 5])
    def test_iteration_count(self, p):
        db, phi = chains.example_37(p)
        result = compute_intervention(db, phi)
        assert result.iterations == chains.expected_iterations(p)

    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_everything_deleted(self, p):
        db, phi = chains.example_37(p)
        result = compute_intervention(db, phi)
        assert result.size == db.total_rows() == 4 * p + 1

    def test_iterations_grow_linearly(self):
        counts = []
        for p in (1, 2, 4):
            db, phi = chains.example_37(p)
            counts.append(compute_intervention(db, phi).iterations)
        assert counts == [3, 7, 15]

    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_within_proposition_34_bound(self, p):
        db, phi = chains.example_37(p)
        result = compute_intervention(db, phi)
        assert result.iterations <= db.total_rows()


class TestFootnote11:
    """count(distinct pubid) is intervention-additive on the running
    example: q(D - Δ^φ) = q(D) - q(D_φ)."""

    def _query(self):
        return single_query(
            AggregateQuery("q", count_distinct("Publication.pubid", "q"))
        )

    def test_additivity_report(self):
        db = rex.database()
        report = analyze_additivity(db, self._query())
        assert report.additive

    @pytest.mark.parametrize(
        "phi_text",
        [
            "Author.name = 'JG' AND Publication.year = 2001",
            "Author.name = 'JG'",
            "Publication.year = 2001",
            "Author.dom = 'com'",
            "Author.inst = 'I.com'",
        ],
    )
    def test_additive_identity_holds(self, phi_text):
        db = rex.database()
        phi = parse_explanation(phi_text)
        question = UserQuestion.high(self._query())
        evaluator = DegreeEvaluator(db, question)
        q_d = evaluator.q_original["q"]
        q_phi = evaluator.aggravation_values(phi)["q"]
        q_residual = evaluator.intervention_values(phi)["q"]
        assert q_residual == q_d - q_phi

    def test_count_star_not_additive_here(self):
        """count(*) with a back-and-forth key is NOT additive (Sec 4.1)."""
        db = rex.database()
        query = single_query(AggregateQuery("q", count_star("q")))
        report = analyze_additivity(db, query)
        assert not report.additive

    def test_count_star_identity_actually_fails(self):
        """Concrete witness that the additive identity breaks for
        count(*): deleting P1 (via φ on JG∧2001) also removes RR's
        authorship row u5? No — u5 survives; but s2 is cascaded, so
        count(*) drops by 3 while σ_φ(U) has only 1 row."""
        db = rex.database()
        phi = PHI_28
        question = UserQuestion.high(
            single_query(AggregateQuery("q", count_star("q")))
        )
        evaluator = DegreeEvaluator(db, question)
        q_d = evaluator.q_original["q"]          # 6 universal rows
        q_phi = evaluator.aggravation_values(phi)["q"]   # 1 row satisfies φ
        q_residual = evaluator.intervention_values(phi)["q"]
        assert q_d == 6 and q_phi == 1
        assert q_residual == 4  # u1, u2 both die with P1
        assert q_residual != q_d - q_phi
