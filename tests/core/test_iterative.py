"""Tests for the indexed exact evaluator (Section 6(i) optimization)."""

import pytest

from repro.core.cube_algorithm import MU_AGGR, MU_INTERV
from repro.core.explainer import Explainer
from repro.core.iterative import IndexedInterventionEvaluator
from repro.core.numquery import AggregateQuery, single_query
from repro.core.question import UserQuestion
from repro.datasets import dblp, natality
from repro.datasets import running_example as rex
from repro.engine.aggregates import agg_sum, count_distinct, count_star
from repro.engine.expressions import Col, Comparison, Const
from repro.errors import QueryError


def sigmod_question():
    return UserQuestion.high(
        single_query(
            AggregateQuery(
                "q",
                count_distinct("Publication.pubid", "q"),
                Comparison("=", Col("Publication.venue"), Const("SIGMOD")),
            )
        )
    )


def count_star_question():
    return UserQuestion.high(
        single_query(AggregateQuery("q", count_star("q")))
    )


ATTRS = ("Author.name", "Publication.year")


def degree_map(m, column):
    return {
        str(m.explanation_of(row)): row[m.table.position(column)]
        for row in m.table.rows()
    }


class TestEquivalenceWithExact:
    def test_matches_exact_on_running_example(self):
        db = rex.database()
        question = sigmod_question()
        indexed = IndexedInterventionEvaluator(db, question, ATTRS)
        m_indexed = indexed.build_table()
        explainer = Explainer(db, question, ATTRS)
        m_exact = explainer.explanation_table("exact")
        for column in (MU_INTERV, MU_AGGR):
            fast = degree_map(m_indexed, column)
            slow = degree_map(m_exact, column)
            # Exact enumerates all domain combinations; indexed only
            # supported cells.  Compare on the intersection.
            shared = set(fast) & set(slow)
            assert len(shared) >= len(fast)  # fast ⊆ slow
            for key in fast:
                assert fast[key] == pytest.approx(slow[key]), (column, key)

    def test_handles_non_additive_count_star(self):
        """The whole point: count(*) with a back-and-forth key is not
        cube-eligible, and the indexed evaluator is exact there."""
        db = rex.database()
        question = count_star_question()
        indexed = IndexedInterventionEvaluator(db, question, ATTRS)
        m_indexed = indexed.build_table()
        explainer = Explainer(db, question, ATTRS)
        m_exact = explainer.explanation_table("exact")
        fast = degree_map(m_indexed, MU_INTERV)
        slow = degree_map(m_exact, MU_INTERV)
        for key in fast:
            assert fast[key] == pytest.approx(slow[key]), key

    def test_matches_exact_on_dblp(self):
        db = dblp.generate(scale=0.15, seed=8)
        question = count_star_question()
        attrs = ("Author.inst",)
        indexed = IndexedInterventionEvaluator(db, question, attrs)
        m_indexed = indexed.build_table()
        explainer = Explainer(db, question, list(attrs))
        m_exact = explainer.explanation_table("exact")
        fast = degree_map(m_indexed, MU_INTERV)
        slow = degree_map(m_exact, MU_INTERV)
        for key in fast:
            assert fast[key] == pytest.approx(slow[key]), key

    def test_matches_cube_on_additive_single_table(self):
        db = natality.generate(rows=600, seed=13)
        question = natality.q_race_question()
        attrs = ("Birth.marital", "Birth.tobacco")
        indexed = IndexedInterventionEvaluator(db, question, attrs)
        m_indexed = indexed.build_table()
        explainer = Explainer(db, question, list(attrs))
        m_cube = explainer.explanation_table("cube")
        fast = degree_map(m_indexed, MU_INTERV)
        cube = degree_map(m_cube, MU_INTERV)
        # The cube only materializes cells with support in the filtered
        # (Asian) sub-population; indexed covers all of U -> superset.
        assert set(cube) <= set(fast)
        for key in cube:
            assert fast[key] == pytest.approx(cube[key]), key


class TestInternals:
    def test_phi_row_ids_intersection(self):
        db = rex.database()
        ev = IndexedInterventionEvaluator(db, sigmod_question(), ATTRS)
        rows_jg = ev.phi_row_ids({"Author.name": "JG"})
        rows_2001 = ev.phi_row_ids({"Publication.year": 2001})
        both = ev.phi_row_ids(
            {"Author.name": "JG", "Publication.year": 2001}
        )
        assert both == rows_jg & rows_2001
        assert len(both) == 1  # only u1

    def test_empty_assignment_is_all_rows(self):
        db = rex.database()
        ev = IndexedInterventionEvaluator(db, sigmod_question(), ATTRS)
        assert len(ev.phi_row_ids({})) == 6

    def test_unsupported_value_yields_empty(self):
        db = rex.database()
        ev = IndexedInterventionEvaluator(db, sigmod_question(), ATTRS)
        assert ev.phi_row_ids({"Author.name": "NOBODY"}) == set()

    def test_seeds_match_engine_seeds(self):
        from repro.core import parse_explanation
        from repro.core.intervention import InterventionEngine

        db = rex.database()
        ev = IndexedInterventionEvaluator(db, sigmod_question(), ATTRS)
        engine = InterventionEngine(db)
        for assignment in (
            {"Author.name": "JG"},
            {"Author.name": "JG", "Publication.year": 2001},
            {"Publication.year": 2011},
        ):
            phi_text = " AND ".join(
                f"{a} = {v!r}" for a, v in assignment.items()
            )
            phi = parse_explanation(phi_text)
            expected = engine.seed_delta(phi)
            got = ev.seeds_from_rows(ev.phi_row_ids(assignment))
            assert got == expected, assignment

    def test_candidate_set_matches_cube_cells(self):
        db = rex.database()
        question = sigmod_question()
        ev = IndexedInterventionEvaluator(db, question, ATTRS)
        candidates = ev.candidate_assignments()
        # 6 (name,year) pairs -> 5 distinct; + 3 names + 2 years + trivial
        texts = {tuple(sorted(c.items())) for c in candidates}
        assert len(texts) == len(candidates)  # no duplicates
        assert {} in [c for c in candidates if not c]  # trivial present
        assert len(candidates) == 1 + 3 + 2 + 5

    def test_sum_aggregate_rejected(self):
        db = rex.database()
        question = UserQuestion.high(
            single_query(AggregateQuery("q", agg_sum("Publication.year", "q")))
        )
        ev = IndexedInterventionEvaluator(db, question, ATTRS)
        with pytest.raises(QueryError, match="count aggregates"):
            ev.build_table()

    def test_surviving_rows_empty_delta(self):
        from repro.engine.database import Delta

        db = rex.database()
        ev = IndexedInterventionEvaluator(db, sigmod_question(), ATTRS)
        assert len(ev.surviving_row_ids(Delta.empty(db.schema))) == 6
