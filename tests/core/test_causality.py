"""Tests for schema/data causal graphs (Definitions 3.8–3.9, Figure 6)."""

import pytest

from repro.core.causality import DataCausalGraph, SchemaCausalGraph, prop_310_bound
from repro.core.intervention import InterventionEngine, compute_intervention
from repro.core.predicates import parse_explanation
from repro.datasets import chains
from repro.datasets import running_example as rex


class TestSchemaCausalGraph:
    def test_running_example_edges(self):
        """Figure 6a: Author→Authored solid, Publication→Authored solid,
        Authored→Publication dotted."""
        g = SchemaCausalGraph.of(rex.schema())
        assert ("Author", "Authored") in g.solid
        assert ("Publication", "Authored") in g.solid
        assert ("Authored", "Publication") in g.dotted
        assert len(g.dotted) == 1

    def test_standard_variant_has_no_dotted(self):
        g = SchemaCausalGraph.of(rex.schema(back_and_forth=False))
        assert g.dotted == frozenset()

    def test_successors(self):
        g = SchemaCausalGraph.of(rex.schema())
        succ = dict.fromkeys([])
        successors = g.successors("Authored")
        assert ("Publication", True) in successors

    def test_simple(self):
        assert SchemaCausalGraph.of(rex.schema()).is_simple()

    def test_prop_311_applies_to_running_example(self):
        g = SchemaCausalGraph.of(rex.schema())
        assert g.prop_311_applies()
        assert g.prop_311_bound() == 4

    def test_prop_311_rejects_chain_schema(self):
        """R3 has two b&f keys — recursion required (Example 3.7)."""
        g = SchemaCausalGraph.of(chains.chain_schema())
        assert not g.prop_311_applies()
        assert g.max_back_and_forth_per_relation() == 2


class TestDataCausalGraph:
    def test_figure_6b_dotted_edges(self):
        """Each Authored tuple has a dotted edge to its publication."""
        db = rex.database()
        g = DataCausalGraph.of(db)
        assert ("Publication", rex.T1) in g.successors(("Authored", rex.S1))
        has_solid, has_dotted = g.successors(("Authored", rex.S1))[
            ("Publication", rex.T1)
        ]
        assert has_dotted

    def test_author_to_authored_solid(self):
        db = rex.database()
        g = DataCausalGraph.of(db)
        edge = g.successors(("Author", rex.R1)).get(("Authored", rex.S1))
        assert edge is not None and edge[0]  # solid

    def test_publication_to_authored_solid(self):
        db = rex.database()
        g = DataCausalGraph.of(db)
        edge = g.successors(("Publication", rex.T1)).get(("Authored", rex.S1))
        assert edge is not None and edge[0]

    def test_no_edge_between_unrelated_tuples(self):
        db = rex.database()
        g = DataCausalGraph.of(db)
        # JG (r1) is not a cause of RR's authorship of P3 (s5).
        assert ("Authored", rex.S5) not in g.successors(("Author", rex.R1))

    def test_semijoin_induced_solid_edge(self):
        """When t_j is the only tuple referencing t_i, deleting t_j
        deletes t_i at reduction time — Definition 3.8 adds the solid
        edge t_j → t_i.  In Figure 3, s3 is not P2's only author (s4
        exists), but s1 and s5 are RR-P cases... take P2: it has two
        authors, so no such edge; in Example 2.9's chain, S1(a,b) is
        the only tuple referencing R1(a)."""
        db = rex.example_29_database()
        g = DataCausalGraph.of(db)
        edge = g.successors(("S1", ("a", "b"))).get(("R1", ("a",)))
        assert edge is not None and edge[0]

    def test_causal_path_example(self):
        """Figure 6: P = r1 → s1 → t1 → s2 is a causal path of length 1."""
        db = rex.database()
        g = DataCausalGraph.of(db)
        # walk the path edge by edge
        assert ("Authored", rex.S1) in g.successors(("Author", rex.R1))
        assert ("Publication", rex.T1) in g.successors(("Authored", rex.S1))
        assert ("Authored", rex.S2) in g.successors(("Publication", rex.T1))

    def test_max_causal_length_from_seed(self):
        db = rex.database()
        g = DataCausalGraph.of(db)
        q = g.max_causal_length_from(("Authored", rex.S1))
        assert q >= 1


class TestProposition310:
    @pytest.mark.parametrize(
        "phi_text",
        [
            "Author.name = 'JG' AND Publication.year = 2001",
            "Author.dom = 'com'",
            "Publication.venue = 'VLDB'",
        ],
    )
    def test_bound_holds_on_running_example(self, phi_text):
        db = rex.database()
        phi = parse_explanation(phi_text)
        engine = InterventionEngine(db)
        result = engine.compute(phi)
        bound = prop_310_bound(db, result.seeds)
        assert result.iterations <= bound

    @pytest.mark.parametrize("p", [1, 2])
    def test_bound_holds_on_chain(self, p):
        db, phi = chains.example_37(p)
        result = compute_intervention(db, phi)
        bound = prop_310_bound(db, result.seeds)
        assert result.iterations <= bound

    def test_chain_causal_length_is_2p(self):
        """The paper: q = |R3|/1 = 2p on the chain (dotted edges
        alternate down the zig-zag)."""
        p = 2
        db, phi = chains.example_37(p)
        result = compute_intervention(db, phi)
        g = DataCausalGraph.of(db)
        q = g.max_causal_length_from_seeds(result.seeds)
        assert q >= 2 * p - 1  # at least almost the full zig-zag
        assert 2 * q + 2 >= result.iterations
