"""Tests for user questions and degree sign conventions."""

import pytest

from repro.core.numquery import AggregateQuery, single_query
from repro.core.question import Direction, UserQuestion
from repro.engine.aggregates import count_star
from repro.errors import ExplanationError


def q():
    return single_query(AggregateQuery("q", count_star("q")))


class TestDirection:
    def test_parse_strings(self):
        assert Direction.parse("high") is Direction.HIGH
        assert Direction.parse("LOW") is Direction.LOW

    def test_parse_passthrough(self):
        assert Direction.parse(Direction.HIGH) is Direction.HIGH

    def test_parse_invalid(self):
        with pytest.raises(ExplanationError):
            Direction.parse("sideways")
        with pytest.raises(ExplanationError):
            Direction.parse(None)


class TestUserQuestion:
    def test_high_signs(self):
        question = UserQuestion.high(q())
        # Definition 2.4: dir=high -> mu_aggr = +Q(D_phi)
        assert question.aggravation_sign == 1
        # Definition 2.7: dir=high -> mu_interv = -Q(D - delta)
        assert question.intervention_sign == -1

    def test_low_signs(self):
        question = UserQuestion.low(q())
        assert question.aggravation_sign == -1
        assert question.intervention_sign == 1

    def test_signs_always_opposite(self):
        for question in (UserQuestion.high(q()), UserQuestion.low(q())):
            assert question.aggravation_sign == -question.intervention_sign

    def test_str(self):
        assert "high" in str(UserQuestion.high(q()))
