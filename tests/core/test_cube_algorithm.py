"""Tests for Algorithm 1 — degrees via the data cube."""

import pytest

from repro.core.cube_algorithm import (
    MU_AGGR,
    MU_INTERV,
    build_explanation_table,
)
from repro.core.explainer import Explainer
from repro.core.numquery import AggregateQuery, ratio_query, single_query
from repro.core.question import UserQuestion
from repro.datasets import natality
from repro.datasets import running_example as rex
from repro.engine.aggregates import count_distinct, count_star
from repro.engine.expressions import Col, Comparison, Const
from repro.engine.types import is_dummy
from repro.errors import NotAdditiveError, QueryError


def sigmod_question(direction="high"):
    q = single_query(
        AggregateQuery(
            "q",
            count_distinct("Publication.pubid", "q"),
            Comparison("=", Col("Publication.venue"), Const("SIGMOD")),
        )
    )
    return UserQuestion.high(q) if direction == "high" else UserQuestion.low(q)


ATTRS = ["Author.name", "Publication.year"]


class TestBuildTable:
    def test_columns(self):
        db = rex.database()
        m = build_explanation_table(db, sigmod_question(), ATTRS)
        assert list(m.table.columns) == ATTRS + ["v_q", MU_INTERV, MU_AGGR]

    def test_row_count_matches_cube(self):
        db = rex.database()
        m = build_explanation_table(db, sigmod_question(), ATTRS)
        # name x year combos present in SIGMOD rows: (JG,2001),(RR,2001),
        # (CM,2001) + 3 name-only + 1 year-only + grand total = 8
        assert len(m) == 8

    def test_additivity_enforced(self):
        db = rex.database()
        question = UserQuestion.high(
            single_query(AggregateQuery("q", count_star("q")))
        )
        with pytest.raises(NotAdditiveError):
            build_explanation_table(db, question, ATTRS)

    def test_additivity_check_can_be_skipped(self):
        db = rex.database()
        question = UserQuestion.high(
            single_query(AggregateQuery("q", count_star("q")))
        )
        m = build_explanation_table(
            db, question, ATTRS, check_additivity=False
        )
        assert len(m) > 0

    def test_unknown_attribute_rejected(self):
        db = rex.database()
        with pytest.raises(QueryError):
            build_explanation_table(db, sigmod_question(), ["Author.zzz"])

    def test_explanation_of_row(self):
        db = rex.database()
        m = build_explanation_table(db, sigmod_question(), ATTRS)
        for row in m.table.rows():
            phi = m.explanation_of(row)
            dummies = sum(
                1 for i in m.table.positions(ATTRS) if is_dummy(row[i])
            )
            assert phi.size == len(ATTRS) - dummies

    def test_q_original_stored(self):
        db = rex.database()
        m = build_explanation_table(db, sigmod_question(), ATTRS)
        assert m.q_original == {"q": 2}


class TestDegreesMatchNaive:
    """The core soundness claim: on intervention-additive queries the
    cube degrees equal the ground-truth (program P) degrees."""

    @pytest.mark.parametrize("direction", ["high", "low"])
    def test_running_example_all_rows(self, direction):
        db = rex.database()
        question = sigmod_question(direction)
        explainer = Explainer(db, question, ATTRS)
        cube_m = explainer.explanation_table("cube")
        exact_m = explainer.explanation_table("exact")

        def degree_map(m, column):
            out = {}
            for row in m.table.rows():
                phi = m.explanation_of(row)
                out[str(phi)] = row[m.table.position(column)]
            return out

        cube_interv = degree_map(cube_m, MU_INTERV)
        exact_interv = degree_map(exact_m, MU_INTERV)
        for phi_text, degree in cube_interv.items():
            assert exact_interv[phi_text] == pytest.approx(degree), phi_text

    def test_natality_count_star(self):
        db = natality.generate(rows=400, seed=11)
        question = natality.q_race_question()
        attrs = ["Birth.marital", "Birth.tobacco"]
        explainer = Explainer(db, question, attrs)
        cube_m = explainer.explanation_table("cube")
        exact_m = explainer.explanation_table("exact")

        def degree_map(m):
            return {
                str(m.explanation_of(row)): row[m.table.position(MU_INTERV)]
                for row in m.table.rows()
            }

        cube_map, exact_map = degree_map(cube_m), degree_map(exact_m)
        # The cube only materializes explanations with support in the
        # filtered (Asian) sub-population; compare on the intersection.
        shared = set(cube_map) & set(exact_map)
        assert len(shared) >= 6
        for key in shared:
            assert cube_map[key] == pytest.approx(exact_map[key]), key

    def test_naive_equals_cube_on_additive(self):
        db = natality.generate(rows=300, seed=5)
        question = natality.q_marital_question()
        attrs = ["Birth.tobacco", "Birth.prenatal"]
        explainer = Explainer(db, question, attrs)
        cube_m = explainer.explanation_table("cube")
        naive_m = explainer.explanation_table("naive")

        def degree_map(m):
            return {
                str(m.explanation_of(row)): (
                    row[m.table.position(MU_INTERV)],
                    row[m.table.position(MU_AGGR)],
                )
                for row in m.table.rows()
            }

        cube_map, naive_map = degree_map(cube_m), degree_map(naive_m)
        assert set(cube_map) == set(naive_map)
        for key, (ci, ca) in cube_map.items():
            ni, na = naive_map[key]
            assert ci == pytest.approx(ni)
            assert ca == pytest.approx(na)


class TestOptions:
    def test_dummy_rewrite_ablation_same_result(self):
        db = natality.generate(rows=200, seed=3)
        question = natality.q_race_question()
        attrs = ["Birth.marital", "Birth.tobacco"]
        fast = build_explanation_table(db, question, attrs)
        slow = build_explanation_table(
            db, question, attrs, use_dummy_rewrite=False
        )
        # The null-aware variant leaves NULL markers; compare via
        # explanation identity and degrees.
        def norm(m):
            return {
                str(m.explanation_of(row)): row[m.table.position(MU_INTERV)]
                for row in m.table.rows()
            }

        fast_map, slow_map = norm(fast), norm(slow)
        assert set(fast_map) == set(slow_map)
        for key in fast_map:
            assert fast_map[key] == pytest.approx(slow_map[key])

    def test_brute_force_cube_same_result(self):
        # Inject the retained 2^d-group-bys oracle as the cube
        # implementation; production code never imports it.
        from repro.engine.cube import cube_bruteforce

        db = natality.generate(rows=200, seed=3)
        question = natality.q_race_question()
        attrs = ["Birth.marital", "Birth.prenatal"]
        fast = build_explanation_table(db, question, attrs)
        brute = build_explanation_table(
            db, question, attrs, cube_impl=cube_bruteforce
        )
        assert fast.table == brute.table

    def test_support_threshold_filters(self):
        db = natality.generate(rows=500, seed=3)
        question = natality.q_race_question()
        attrs = ["Birth.marital"]
        all_rows = build_explanation_table(db, question, attrs)
        filtered = build_explanation_table(
            db, question, attrs, support_threshold=10
        )
        assert len(filtered) <= len(all_rows)
        v_pos = filtered.table.positions(["v_q1", "v_q2"])
        for row in filtered.table.rows():
            assert any(row[i] >= 10 for i in v_pos)

    def test_missing_explanations_get_zero(self):
        """An explanation appearing in one cube but not another gets 0
        for the missing aggregate (Algorithm 1, full outer join)."""
        db = rex.database()
        q_sigmod = AggregateQuery(
            "qs",
            count_distinct("Publication.pubid", "qs"),
            Comparison("=", Col("Publication.venue"), Const("SIGMOD")),
        )
        q_vldb = AggregateQuery(
            "qv",
            count_distinct("Publication.pubid", "qv"),
            Comparison("=", Col("Publication.venue"), Const("VLDB")),
        )
        question = UserQuestion.high(ratio_query(q_sigmod, q_vldb, epsilon=0.5))
        m = build_explanation_table(db, question, ["Publication.year"])
        rows = {
            row[0]: (row[1], row[2])
            for row in m.table.rows()
        }
        # year=2001 appears only in the SIGMOD cube: v_qv filled with 0.
        assert rows[2001] == (2, 0)
        # year=2011 appears only in the VLDB cube: v_qs filled with 0.
        assert rows[2011] == (0, 1)
